"""Extension: double-buffered host<->PIM overlap + searched kernel schedules.

Acceptance bars (ISSUE 8):

* On a transfer-bound BERT-base layer mapping, the overlap pipeline must
  hide at least 50% of the exposed ``kernel_transfer`` time — in both the
  analytical model and the event-level simulator — while ``overlap=False``
  stays bit-identical to the sequential system.
* The measured kernel-schedule search must return a schedule at least as
  fast as the hand-tuned defaults on every tested shape, and a second
  search through the cache must evaluate zero candidates.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import LUTShape
from repro.kernels import KernelScheduleCache, search_kernel_schedule
from repro.mapping import Mapping, estimate_latency
from repro.pim import PIMSimulator

pytestmark = pytest.mark.slow

# BERT-base attention-output layer at the paper's host-eval token count,
# under a deliberately transfer-bound multi-tile mapping (the tuned
# mapping is single-tile and pipelines nothing; see tests/test_overlap.py).
SHAPE = LUTShape(n=128, h=768, f=768, v=4, ct=16)
MAPPING = Mapping(
    n_s_tile=64, f_s_tile=4, n_m_tile=4, f_m_tile=1, cb_m_tile=16,
    traversal=("n", "cb", "f"), load_scheme="coarse",
    cb_load_tile=8, f_load_tile=1,
)

SEARCH_SHAPES = [
    (128, 256, 256, 4, 16),
    (256, 768, 768, 4, 16),
    (512, 512, 1024, 4, 16),
]


def test_overlap_hides_transfer_bound_pipeline(upmem, report):
    lat_seq = estimate_latency(SHAPE, MAPPING, upmem)
    lat_ov = estimate_latency(SHAPE, MAPPING, upmem, overlap=True)
    sim = PIMSimulator(upmem)
    rep_seq = sim.run(SHAPE, MAPPING)
    rep_ov = sim.run(SHAPE, MAPPING, overlap=True)

    # Transfer-bound: the dma stream exceeds the reduce stream.
    assert lat_seq.kernel_transfer > lat_seq.kernel_reduce

    model_frac = lat_ov.overlap_hidden / lat_ov.kernel_transfer
    sim_dma_seq = rep_seq.profile.phase_seconds["dma"]
    sim_frac = rep_ov.overlap_hidden_s / sim_dma_seq

    rows = [
        ["analytical", f"{lat_seq.total * 1e3:.3f}", f"{lat_ov.total * 1e3:.3f}",
         f"{lat_ov.overlap_hidden * 1e3:.3f}", f"{model_frac:.1%}"],
        ["simulator", f"{rep_seq.total_s * 1e3:.3f}", f"{rep_ov.total_s * 1e3:.3f}",
         f"{rep_ov.overlap_hidden_s * 1e3:.3f}", f"{sim_frac:.1%}"],
    ]
    report("ext_overlap_pipeline", format_table(
        ["layer", "sequential_ms", "overlap_ms", "hidden_ms",
         "hidden/transfer"], rows,
    ))

    # Acceptance: >= 50% of the sequential transfer time is hidden.
    assert model_frac >= 0.5
    assert sim_frac >= 0.5

    # overlap=False is bit-identical to the sequential system.
    assert estimate_latency(SHAPE, MAPPING, upmem, overlap=False) == lat_seq
    rep_off = sim.run(SHAPE, MAPPING, overlap=False)
    assert rep_off.total_s == rep_seq.total_s
    assert rep_off.profile.phase_seconds == rep_seq.profile.phase_seconds

    # Phase accounting stays exact under overlap.
    assert sum(rep_ov.profile.phase_seconds.values()) == pytest.approx(
        rep_ov.total_s, abs=1e-9
    )


def test_schedule_search_beats_defaults_and_caches(tmp_path, report):
    cache = KernelScheduleCache(str(tmp_path))
    rows = []
    for n, h, f, v, ct in SEARCH_SHAPES:
        cold = search_kernel_schedule(
            n=n, h=h, f=f, v=v, ct=ct, repeats=3,
            rng=np.random.default_rng(0), cache=cache,
        )
        warm = search_kernel_schedule(
            n=n, h=h, f=f, v=v, ct=ct, repeats=3,
            rng=np.random.default_rng(0), cache=cache,
        )
        rows.append([
            f"{n}x{h}x{f}",
            cold.ccs_block_rows,
            f"{cold.gather_block_rows}/{cold.gather_strategy}",
            f"{cold.baseline_seconds * 1e3:.3f}",
            f"{cold.total_seconds * 1e3:.3f}",
            f"{cold.speedup_vs_default:.2f}x",
            cold.candidates_evaluated,
            warm.candidates_evaluated,
        ])
        # Acceptance: searched schedule is never slower than the
        # hand-tuned default, on every tested shape.
        assert cold.speedup_vs_default >= 1.0
        # Acceptance: the rerun is a pure cache hit.
        assert cold.candidates_evaluated > 0
        assert warm.candidates_evaluated == 0
        assert warm.total_seconds == cold.total_seconds
    report("ext_kernel_schedule_search", format_table(
        ["shape", "ccs blk", "gather blk/strategy", "default_ms",
         "searched_ms", "speedup", "cold cands", "warm cands"], rows,
    ))
