"""Table 5 — vision model accuracy: original vs baseline LUT-NN vs eLUT-NN.

Paper (ViT-base/huge on CIFAR-10/100, all linear layers replaced):
original 98.5/91.4 and 99.5/94.6; baseline LUT-NN collapses to chance
(10.1/1.07, 10.0/1.01); eLUT-NN recovers to 96.3/89.1 and 97.8/91.3.

Reproduction: two CIFAR-like synthetic patch-classification tasks on a
scaled-down ViT-style encoder; the asserted invariant is the ordering
(original >= eLUT-NN >= baseline) with eLUT-NN close to the original.
"""

import numpy as np

from repro.analysis import format_table
from repro.nn import PatchClassifier
from repro.workloads import SyntheticPatchTask

from _accuracy_common import run_accuracy_experiment, summarize

TASKS = [
    ("synth-cifar-a", dict(num_patches=9, patch_dim=12, num_classes=6, noise=0.45, seed=4)),
    ("synth-cifar-b", dict(num_patches=6, patch_dim=12, num_classes=8, noise=0.40, seed=5)),
]


def _model_factory(kwargs):
    def build():
        return PatchClassifier(
            num_patches=kwargs["num_patches"],
            patch_dim=kwargs["patch_dim"],
            num_classes=kwargs["num_classes"],
            dim=32,
            num_layers=6,
            num_heads=4,
            rng=np.random.default_rng(7),
        )

    return build


def test_tab05_cv_accuracy(benchmark, report):
    def run():
        rows = []
        for name, kwargs in TASKS:
            task = SyntheticPatchTask(**kwargs)
            rows.append(
                run_accuracy_experiment(
                    name, task, _model_factory(kwargs),
                    train_epochs=12, train_lr=3e-3,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    orig, base, elut = summarize(rows)

    table = format_table(
        ["task", "original", "baseline LUT-NN", "eLUT-NN"],
        [[r.task, f"{r.original:.3f}", f"{r.baseline_lut_nn:.3f}", f"{r.elut_nn:.3f}"]
         for r in rows]
        + [["avg", f"{orig:.3f}", f"{base:.3f}", f"{elut:.3f}"]],
    )
    report("tab05_cv_accuracy", table)

    assert orig > 0.90
    assert elut > orig - 0.10
    assert elut > base - 0.02
    chance = np.mean([1.0 / k["num_classes"] for _, k in TASKS])
    assert elut > chance + 0.4
