"""Extension experiment — multi-tenant PE space sharing on UPMEM.

Paper Fig. 12-(c) shows small batches underutilize the PIM system (host-PIM
transfers dominate small kernels).  Space-sharing the 1024 PEs between W
concurrent small-batch requests trades per-request latency for aggregate
throughput; this bench quantifies the trade and checks the crossover:
sharing helps at small batch and stops helping once a single request can
saturate the system.
"""


from repro.analysis import format_table
from repro.baselines import wimpy_host
from repro.engine import space_sharing_sweep
from repro.pim import get_platform
from repro.workloads import bert_base

WAYS = [1, 2, 4]


def test_ext_space_sharing(benchmark, report):
    platform = get_platform("upmem")
    host = wimpy_host()

    def run():
        return {
            batch: space_sharing_sweep(
                platform, host, bert_base(batch_size=batch), ways_options=WAYS
            )
            for batch in (8, 64)
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for batch, points in sweeps.items():
        base = points[0].throughput_rps
        for p in points:
            rows.append([
                f"batch={batch}", p.ways, p.pes_per_slice,
                f"{p.request_latency_s:.2f}",
                f"{p.throughput_rps / base:.2f}x",
            ])
    report(
        "ext_space_sharing",
        format_table(
            ["workload", "ways", "PEs/slice", "latency_s", "throughput vs 1-way"],
            rows,
        ),
    )

    small = {p.ways: p for p in sweeps[8]}
    large = {p.ways: p for p in sweeps[64]}
    # Sharing buys real aggregate throughput at small batch...
    assert small[4].throughput_rps > small[1].throughput_rps * 1.2
    # ...and never buys more at large batch than at small (a single large
    # request utilizes the PEs at least as well).
    small_gain = small[4].throughput_rps / small[1].throughput_rps
    large_gain = large[4].throughput_rps / large[1].throughput_rps
    assert small_gain >= large_gain - 0.05
    # Latency always degrades with sharing — the trade is real.
    for points in sweeps.values():
        latencies = [p.request_latency_s for p in points]
        assert latencies == sorted(latencies)
