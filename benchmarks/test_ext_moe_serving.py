"""Extension experiment — MoE experts as LUTs under rank contention.

Each expert's LUT tables live on one PIM rank, so skewed token-to-expert
routing turns into load imbalance across ranks and the MoE layer finishes
at the most-loaded rank's makespan.  This benchmark sweeps the two
routing regimes (uniform vs Zipf) crossed with the two expert placers
(round-robin vs greedy LPT "balanced") on a BERT-base-shaped MoE layer
and pins the headline claim: under Zipf-skewed routing the balanced
placer beats round-robin on LUT makespan by a solid margin, while under
uniform routing the two match within noise — the placer wins exactly
when there is skew to absorb, and never loses.

Results are recorded through the persistent ``BaselineStore`` (bench id
``engine.moe-placement-bert-base``) so the placement speedup has history
and regressions in routing, placement, or the per-rank pricing surface
as baseline deviations.

Marked ``slow``: the sweep tunes per-expert LUT shapes on a single-rank
platform slice for 64 experts x 2 routings x 2 placers, so it lands in
the nightly job with the other sweeps.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import wimpy_host
from repro.engine import PIMDLEngine
from repro.obs import BaselineStore
from repro.pim import get_platform
from repro.workloads import MoEConfig, bert_base

pytestmark = pytest.mark.slow

#: Balanced placement must beat round-robin on LUT makespan by at least
#: this factor under the Zipf-routed regime below (verified ~1.47x).
SKEW_GATE = 1.1
#: Under uniform routing the placers must agree within this tolerance.
UNIFORM_TOLERANCE = 0.05

EXPERTS = 64
TOP_K = 2
ZIPF_S = 0.6  # mild skew: several warm experts, none fully dominant


def test_ext_moe_serving(benchmark, report, tmp_path):
    config = bert_base().with_(num_layers=2)
    engine = PIMDLEngine(get_platform("upmem"), wimpy_host())

    def run():
        costs = {}
        for routing in ("uniform", "zipf"):
            for placement in ("round-robin", "balanced"):
                moe = MoEConfig(
                    num_experts=EXPERTS, top_k=TOP_K, routing=routing,
                    zipf_s=ZIPF_S, seed=0, placement=placement,
                )
                costs[(routing, placement)] = engine.moe_layer_cost(config, moe)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for (routing, placement), cost in costs.items():
        table.append([
            routing, placement,
            f"{max(cost.expert_tokens)}/{sum(cost.expert_tokens) // EXPERTS}",
            f"{cost.imbalance_index:.1%}",
            f"{cost.lut_makespan_s * 1e3:.3f}",
            f"{cost.lut_serial_s * 1e3:.3f}",
            f"{cost.total_s * 1e3:.3f}",
        ])
    report(
        "ext_moe_serving",
        format_table(
            ["routing", "placer", "tok max/mean", "rank imb",
             "lut makespan ms", "lut serial ms", "layer ms"],
            table,
        ),
    )

    # Every cell's phase attribution partitions its layer total exactly,
    # and the makespan is exactly the critical rank's load.
    for cost in costs.values():
        assert sum(cost.phases.values()) == pytest.approx(cost.total_s, rel=1e-12)
        assert cost.lut_makespan_s == pytest.approx(max(cost.rank_seconds))
        assert 0.0 <= cost.imbalance_index < 1.0

    # Placement redistributes work, it never changes it: for a fixed
    # routing trace the serial LUT seconds are placement-invariant.
    for routing in ("uniform", "zipf"):
        rr = costs[(routing, "round-robin")]
        bal = costs[(routing, "balanced")]
        assert bal.lut_serial_s == pytest.approx(rr.lut_serial_s)
        assert bal.lut_makespan_s <= rr.lut_makespan_s + 1e-15

    # The gate: under Zipf skew, balanced beats round-robin by a solid
    # margin and flattens the rank-load profile.
    zipf_rr = costs[("zipf", "round-robin")]
    zipf_bal = costs[("zipf", "balanced")]
    skew_ratio = zipf_rr.lut_makespan_s / zipf_bal.lut_makespan_s
    assert skew_ratio >= SKEW_GATE, (
        f"balanced placement only {skew_ratio:.3f}x over round-robin "
        f"under zipf(s={ZIPF_S}); gate is {SKEW_GATE}x"
    )
    assert zipf_bal.imbalance_index < zipf_rr.imbalance_index

    # Under uniform routing there is no skew to absorb: the placers must
    # match within noise (balanced still never worse, by construction).
    uni_rr = costs[("uniform", "round-robin")]
    uni_bal = costs[("uniform", "balanced")]
    uniform_ratio = uni_rr.lut_makespan_s / uni_bal.lut_makespan_s
    assert 1.0 - 1e-12 <= uniform_ratio <= 1.0 + UNIFORM_TOLERANCE

    # The whole-model report stays self-consistent with MoE layers in it.
    model_report = engine.run(
        config,
        moe=MoEConfig(num_experts=EXPERTS, top_k=TOP_K, routing="zipf",
                      zipf_s=ZIPF_S, seed=0, placement="balanced"),
    )
    assert sum(model_report.phase_seconds.values()) == pytest.approx(
        model_report.total_s, rel=1e-9
    )

    # Record the placement speedup through the baseline store.
    store = BaselineStore(".bench-store")
    store.record(
        "engine.moe-placement-bert-base", skew_ratio, unit="x",
        meta={
            "experts": EXPERTS,
            "top_k": TOP_K,
            "zipf_s": ZIPF_S,
            "uniform_ratio": uniform_ratio,
            "makespan_rr_ms": zipf_rr.lut_makespan_s * 1e3,
            "makespan_balanced_ms": zipf_bal.lut_makespan_s * 1e3,
            "imbalance_rr": zipf_rr.imbalance_index,
            "imbalance_balanced": zipf_bal.imbalance_index,
        },
    )
