"""Fig. 4 — roofline analysis of LUT kernels on the host CPU.

Paper: converting the FC layers of BERT-base/large and ViT-huge to LUT-NN
(fused QKV, INT8 LUTs, batch 64, seq 512) yields arithmetic intensities of
0.204-0.288 ops/byte — every operator deep in the memory-bound region of a
CPU with 795.11 GOPS peak.
"""

from repro.analysis import CPU_PEAK_GOPS, format_table, lut_roofline_points
from repro.workloads import bert_base, bert_large, vit_huge


def test_fig04_roofline(benchmark, report):
    configs = [bert_base(), bert_large(), vit_huge(seq_len=264, batch_size=64)]

    def run():
        return [p for cfg in configs for p in lut_roofline_points(cfg, v=2, ct=16)]

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [p.model, p.operator, round(p.arithmetic_intensity, 3),
         round(p.attainable_gops, 1), p.memory_bound]
        for p in points
    ]
    report(
        "fig04_roofline",
        format_table(["model", "op", "ops_per_byte", "attainable_GOPS", "mem_bound"], rows),
    )

    intensities = [p.arithmetic_intensity for p in points]
    # Paper band: 0.204-0.288 ops/byte for every LUT operator.
    assert min(intensities) > 0.19
    assert max(intensities) < 0.30
    assert all(p.memory_bound for p in points)
    assert all(p.attainable_gops < 0.05 * CPU_PEAK_GOPS for p in points)
