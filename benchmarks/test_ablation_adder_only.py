"""§7 ablation — adder-only PIM design.

Paper (Discussion): LUT-NN removes all multiplications from the PIM-side
operators, so DRAM-PIMs could ship adder-only PEs; since adders cost far
less area/power than multipliers, "much more adders" fit the same budget
and PIM-DL's performance scales accordingly.

Reproduction: model an adder-only UPMEM variant that spends the multiplier
area on 3x the effective accumulation throughput, and compare the LUT
kernel (benefits fully) with the GEMM baseline (cannot run: no multipliers;
shown at software-emulated multiply cost for reference).
"""

from dataclasses import replace


from repro.analysis import format_table, geomean
from repro.baselines import wimpy_host
from repro.engine import GEMMPIMEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import bert_base, bert_large

#: Adders are ~5-10x cheaper than multipliers in area; reinvesting the
#: multiplier budget triples effective reduce throughput (conservative).
ADDER_ONLY_SPEEDUP = 3.0


def adder_only_upmem():
    base = get_platform("upmem")
    compute = replace(
        base.compute,
        add_cycles=base.compute.add_cycles / ADDER_ONLY_SPEEDUP,
        # No hardware multiplier at all: integer multiply is pure software.
        mult_cycles=60.0,
    )
    return replace(base, name="UPMEM (adder-only PE)", compute=compute)


def test_ablation_adder_only_pim(benchmark, report):
    host = wimpy_host()
    stock = get_platform("upmem")
    adder = adder_only_upmem()
    models = [bert_base(), bert_large()]

    def run():
        out = {}
        for cfg in models:
            out[cfg.name] = {
                "pim-dl stock": PIMDLEngine(stock, host, v=4, ct=16).run(cfg).total_s,
                "pim-dl adder-only": PIMDLEngine(adder, host, v=4, ct=16).run(cfg).total_s,
                "gemm stock": GEMMPIMEngine(stock, host).run(cfg).total_s,
                "gemm adder-only": GEMMPIMEngine(adder, host).run(cfg).total_s,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[m] + [f"{v:.2f}" for v in r.values()] for m, r in results.items()]
    report(
        "ablation_adder_only",
        format_table(
            ["model", "pimdl_stock_s", "pimdl_adder_s", "gemm_stock_s", "gemm_adder_s"],
            rows,
        ),
    )

    gains = [results[m]["pim-dl stock"] / results[m]["pim-dl adder-only"]
             for m in results]
    # LUT kernels benefit substantially from cheaper adders...
    assert geomean(gains) > 1.3
    # ...while GEMM gets no benefit (it needs the multipliers LUT-NN removed).
    for m in results:
        assert results[m]["gemm adder-only"] >= results[m]["gemm stock"] * 0.99
    # The PIM-DL advantage over GEMM therefore widens on adder-only parts.
    for m in results:
        stock_ratio = results[m]["gemm stock"] / results[m]["pim-dl stock"]
        adder_ratio = results[m]["gemm adder-only"] / results[m]["pim-dl adder-only"]
        assert adder_ratio > stock_ratio
