"""Extension experiment — cluster goodput scaling and shard tradeoff.

The replication-vs-shard sweep the cluster ROADMAP item asks for: the
same seeded Poisson stream is served by 1/2/4 replicas, unsharded and
layer-sharded, from comfortable load to past one replica's capacity.
Replication must recover SLO goodput at overload — the nightly gate
pins >= 1.8x goodput at 2 replicas vs 1 — while sharding charges the
inter-node activation transfers and trades per-request latency.

Results are recorded through the persistent ``BaselineStore`` (same
store the ``repro bench`` CLI uses) so the scaling ratio has history and
regressions in the cluster layer surface as baseline deviations.

Marked ``slow``: the sweep simulates thousands of requests across 18
cluster cells, so it lands in the nightly job with the other sweeps.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import wimpy_host
from repro.cluster import cluster_load_sweep
from repro.engine import (GenerationServer, Request, RequestScheduler,
                          SchedulerPolicy)
from repro.obs import BaselineStore
from repro.pim import get_platform
from repro.workloads import opt_style

pytestmark = pytest.mark.slow

#: Goodput at 2 replicas must be at least this multiple of 1 replica's
#: at overload; queue overflow and SLO misses crush the single replica.
SCALING_GATE = 1.8


def test_ext_cluster_scaling(benchmark, report, tmp_path):
    config = opt_style(256, seq_len=64, batch_size=1).with_(num_layers=4)
    server = GenerationServer(get_platform("upmem"), wimpy_host())
    probe = Request(request_id=-1, arrival_s=0.0, prompt_len=64,
                    generate_len=16)
    service_s = RequestScheduler(server, config).fifo_service_time(probe)
    policy = SchedulerPolicy(
        max_batch_size=4,
        max_queue_len=16,
        slo_ttft_s=3 * service_s,
        slo_e2e_s=3 * service_s,
    )

    def run():
        return cluster_load_sweep(
            server, config,
            replica_counts=(1, 2, 4),
            shard_counts=(1, 2),
            routers=("round-robin",),
            utilizations=(0.8, 1.5, 3.0),
            num_requests=200,
            prompt_len=64,
            generate_len=16,
            policy=policy,
            seed=7,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for p in points:
        r = p.result
        table.append([
            f"{p.target_utilization:.1f}", p.replicas, p.shards,
            r.completed, r.rejected,
            f"{r.e2e_p50_s * 1e3:.0f}/{r.e2e_p95_s * 1e3:.0f}",
            f"{r.throughput_rps:.2f}", f"{r.goodput_rps:.2f}",
        ])
    report(
        "ext_cluster_scaling",
        format_table(
            ["rho(1 replica)", "replicas", "shards", "done", "rej",
             "e2e ms p50/p95", "req/s", "goodput"],
            table,
        ),
    )

    def goodput(rho, replicas, shards):
        for p in points:
            if (p.target_utilization == rho and p.replicas == replicas
                    and p.shards == shards):
                return p.result.goodput_rps
        raise AssertionError(f"missing cell rho={rho} n={replicas}")

    # The gate: at overload, doubling replicas at least 1.8x's goodput.
    ratio = goodput(3.0, 2, 1) / goodput(3.0, 1, 1)
    assert ratio >= SCALING_GATE, (
        f"2-replica goodput scaling {ratio:.2f}x below the "
        f"{SCALING_GATE}x gate at overload"
    )
    # Goodput is monotone in replication at every load and shard count.
    for rho in (0.8, 1.5, 3.0):
        for shards in (1, 2):
            series = [goodput(rho, n, shards) for n in (1, 2, 4)]
            assert series == sorted(series), (rho, shards, series)
    # Sharding charges real transfer time: never faster end-to-end than
    # the unsharded replica on the same stream at comfortable load.
    p50_unsharded = next(
        p.result.e2e_p50_s for p in points
        if p.target_utilization == 0.8 and p.replicas == 1 and p.shards == 1)
    p50_sharded = next(
        p.result.e2e_p50_s for p in points
        if p.target_utilization == 0.8 and p.replicas == 1 and p.shards == 2)
    assert p50_sharded >= p50_unsharded

    # Record the scaling history through the baseline store.
    store = BaselineStore(".bench-store")
    store.record(
        "cluster.goodput_scaling_2v1", ratio, unit="x",
        meta={
            "rho": 3.0,
            "goodput_1": goodput(3.0, 1, 1),
            "goodput_2": goodput(3.0, 2, 1),
            "goodput_4": goodput(3.0, 4, 1),
            "requests": 200,
        },
    )
