"""Fig. 13 — LUT-NN mapping-space exploration on UPMEM (BERT-large FFN1).

Paper, for workload (N, CB, CT, F) = (32768, 256, 16, 4096):
* sub-LUT tiling factors span up to a 1.91x performance gap;
* micro-kernel tile sizes matter most under the static load scheme (1.74x);
* tile traversal order barely matters on UPMEM (accumulation-bound PEs);
* the auto-tuner's pick is within 6% of the best mapping found;
* the analytical model's error vs measurement: 3.44% avg, 13.73% max.

"Measured" latency here is the event-level simulator of repro.pim.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import LUTShape
from repro.mapping import (
    AutoTuner,
    Mapping,
    TRAVERSALS,
    enumerate_micro_kernels,
    estimate_latency,
    is_legal,
)
from repro.pim import PIMSimulator, get_platform

#: The paper's Fig. 13 workload: BERT-large FFN1 at V=4 (CB = 1024/4 = 256).
SHAPE = LUTShape(n=32768, h=1024, f=4096, v=4, ct=16)


@pytest.fixture(scope="module")
def platform():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def simulator(platform):
    return PIMSimulator(platform)


def _sample_mappings(platform, rng, best_per_bucket=6, random_per_bucket=2):
    """Mappings around the best point of each (tiling, scheme) bucket.

    Fig. 13 visualizes the *neighborhood of the best mapping parameters*
    under each LUT load scheme plus the sub-LUT tiling axis; sampling the
    cheapest mappings per bucket (with a couple of random outliers for
    spread) reproduces that region.
    """
    samples = {scheme: [] for scheme in ("static", "coarse", "fine")}
    tilings = [(16384, 8), (2048, 64), (512, 256), (1024, 128), (4096, 32)]
    for n_s, f_s in tilings:
        buckets = {scheme: [] for scheme in samples}
        for mapping in enumerate_micro_kernels(SHAPE, n_s, f_s, platform,
                                               max_points=4000):
            est = estimate_latency(SHAPE, mapping, platform).total
            buckets[mapping.load_scheme].append((est, mapping))
        for scheme, pool in buckets.items():
            if not pool:
                continue
            pool.sort(key=lambda pair: pair[0])
            chosen = [m for _, m in pool[:best_per_bucket]]
            tail = [m for _, m in pool[best_per_bucket:]]
            if tail:
                extras = rng.choice(len(tail), size=min(random_per_bucket, len(tail)),
                                    replace=False)
                chosen.extend(tail[i] for i in extras)
            samples[scheme].extend(chosen)
    return samples


def test_fig13_mapping_space(benchmark, report, platform, simulator):
    rng = np.random.default_rng(0)

    def run():
        samples = _sample_mappings(platform, rng)
        measured = {}
        estimated = {}
        for scheme, mappings in samples.items():
            for mapping in mappings[:24]:
                est = estimate_latency(SHAPE, mapping, platform).total
                sim = simulator.run(SHAPE, mapping).total_s
                measured[mapping] = sim
                estimated[mapping] = est
        tuned = AutoTuner(platform).tune(SHAPE)
        tuned_sim = simulator.run(SHAPE, tuned.mapping).total_s
        return samples, measured, estimated, tuned, tuned_sim

    samples, measured, estimated, tuned, tuned_sim = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    errors = [
        abs(estimated[m] - measured[m]) / measured[m] for m in measured
    ]
    avg_err, max_err = float(np.mean(errors)), float(np.max(errors))

    per_scheme_gap = {}
    for scheme in ("static", "coarse", "fine"):
        vals = [measured[m] for m in measured if m.load_scheme == scheme]
        if len(vals) >= 2:
            per_scheme_gap[scheme] = max(vals) / min(vals)

    best_sampled = min(measured.values())
    tuner_gap = tuned_sim / best_sampled

    rows = [["model error avg", f"{avg_err:.2%}", "3.44% (paper)"],
            ["model error max", f"{max_err:.2%}", "13.73% (paper)"],
            ["tuner vs best sampled", f"{tuner_gap:.3f}", "<= 1.06 (paper)"],
            ["global gap (all samples)", f"{max(measured.values()) / best_sampled:.2f}x",
             "1.91x (paper, sub-LUT axis)"]]
    for scheme, gap in per_scheme_gap.items():
        rows.append([f"gap within {scheme}", f"{gap:.2f}x", "--"])
    report("fig13_mapping_space", format_table(["metric", "measured", "paper"], rows))

    # The analytical model tracks the simulator closely (paper: 3.44%/13.7%).
    assert avg_err < 0.10
    assert max_err < 0.40
    # The auto-tuner lands within a small factor of the best sampled point.
    assert tuner_gap < 1.10
    # The space is worth tuning: >= 1.5x spread across mappings (paper shows
    # up to 1.91x from sub-LUT tiling alone and 1.74x within static).
    assert max(measured.values()) / best_sampled > 1.5


def test_fig13_traversal_order_insensitive(benchmark, report, platform, simulator):
    """Paper: permuting the traversal order brings little divergence on
    UPMEM because the wimpy PEs are accumulation-bound."""

    base = Mapping(
        n_s_tile=512, f_s_tile=256, n_m_tile=64, f_m_tile=64, cb_m_tile=64,
        load_scheme="coarse", cb_load_tile=4, f_load_tile=16,
    )

    def run():
        times = {}
        for traversal in TRAVERSALS:
            mapping = base.with_(traversal=traversal)
            assert is_legal(SHAPE, mapping, platform)
            times[traversal] = simulator.run(SHAPE, mapping).total_s
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig13_traversal_order",
        format_table(
            ["traversal", "latency_s"],
            [["->".join(t), f"{v:.4f}"] for t, v in times.items()],
        ),
    )
    spread = max(times.values()) / min(times.values())
    assert spread < 1.5, "traversal order should not dominate on UPMEM"
