"""Extension experiment — disaggregated vs colocated serving goodput.

The prefill/decode pool split the PIM-DL placement argument implies:
bandwidth-bound decode stays on the PIM engine while prompt prefill runs
on a separate pool, joined by an explicit KV-cache migration.  The same
seeded decode-heavy Poisson stream is served under every placement
policy from comfortable load to past the colocated engine's capacity.
The nightly gate pins the headline claim: at overload (rho >= 1.2) the
disaggregated pool retains at least as much SLO goodput as the colocated
baseline — whole-prompt prefills stall every decoding sequence on the
single engine, and the split removes exactly that stall — while the
hybrid policy never loses to either pure policy on the same streams.

Results are recorded through the persistent ``BaselineStore`` (bench id
``sched.disagg-bert-base``) so the overload goodput ratio has history
and regressions in the disaggregation layer surface as baseline
deviations.

Marked ``slow``: the sweep simulates placement x load cells on the
BERT-base cost model, so it lands in the nightly job with the other
sweeps.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import wimpy_host
from repro.engine import (DisaggScheduler, GenerationServer, Request,
                          SchedulerPolicy, disagg_load_sweep)
from repro.obs import BaselineStore
from repro.pim import get_platform
from repro.workloads import bert_base

pytestmark = pytest.mark.slow

#: Disaggregated goodput at overload must be at least this multiple of
#: colocated goodput on the identical decode-heavy stream.
OVERLOAD_GATE = 1.0


def test_ext_disagg_serving(benchmark, report, tmp_path):
    config = bert_base().with_(num_layers=2)
    server = GenerationServer(get_platform("upmem"), wimpy_host())
    probe = Request(request_id=-1, arrival_s=0.0, prompt_len=128,
                    generate_len=64)
    shared = DisaggScheduler(server, config, placement="colocated")
    service_s = shared.fifo_service_time(probe)
    policy = SchedulerPolicy(
        slo_ttft_s=2.5 * shared.cost.prefill_s(128, 1),
        slo_e2e_s=2.5 * service_s,
    )

    def run():
        return disagg_load_sweep(
            server, config,
            placements=("colocated", "disaggregated", "hybrid"),
            utilizations=(0.8, 1.2, 1.6),
            num_requests=96,
            prompt_len=128,
            generate_len=64,  # decode-heavy: 64 decode steps per prompt
            policy=policy,
            seed=0,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for p in points:
        r = p.result
        table.append([
            f"{p.target_utilization:.1f}", p.placement,
            r.completed, r.rejected, r.kv_transfers,
            f"{r.ttft_p50_s * 1e3:.0f}/{r.ttft_p95_s * 1e3:.0f}",
            f"{r.e2e_p50_s * 1e3:.0f}/{r.e2e_p95_s * 1e3:.0f}",
            f"{r.throughput_rps:.2f}", f"{r.goodput_rps:.2f}",
        ])
    report(
        "ext_disagg_serving",
        format_table(
            ["rho(colocated)", "placement", "done", "rej", "kv xfer",
             "ttft ms p50/p95", "e2e ms p50/p95", "req/s", "goodput"],
            table,
        ),
    )

    def cell(rho, placement):
        for p in points:
            if p.target_utilization == rho and p.placement == placement:
                return p.result
        raise AssertionError(f"missing cell rho={rho} placement={placement}")

    # Every cell's phase attribution partitions its busy seconds exactly.
    for p in points:
        assert sum(p.result.phase_seconds.values()) == pytest.approx(
            p.result.busy_s, abs=1e-9
        )

    # The gate: at overload, disaggregation retains at least colocated
    # goodput on the identical decode-heavy stream.
    for rho in (1.2, 1.6):
        co = cell(rho, "colocated").goodput_rps
        dis = cell(rho, "disaggregated").goodput_rps
        assert dis >= co * OVERLOAD_GATE, (
            f"disaggregated goodput {dis:.3f} below colocated {co:.3f} "
            f"at rho={rho}"
        )
    # And strictly better at the deepest overload: the whole point.
    assert cell(1.6, "disaggregated").goodput_rps > \
        cell(1.6, "colocated").goodput_rps
    # Hybrid never loses to either pure policy on the same streams.
    for rho in (0.8, 1.2, 1.6):
        hy = cell(rho, "hybrid").goodput_rps
        assert hy >= cell(rho, "colocated").goodput_rps - 1e-9, rho
        assert hy >= cell(rho, "disaggregated").goodput_rps - 1e-9, rho

    # Record the overload ratio through the baseline store.
    ratio = (
        cell(1.6, "disaggregated").goodput_rps
        / cell(1.6, "colocated").goodput_rps
    )
    store = BaselineStore(".bench-store")
    store.record(
        "sched.disagg-bert-base", ratio, unit="x",
        meta={
            "rho": 1.6,
            "goodput_colocated": cell(1.6, "colocated").goodput_rps,
            "goodput_disaggregated": cell(1.6, "disaggregated").goodput_rps,
            "goodput_hybrid": cell(1.6, "hybrid").goodput_rps,
            "kv_transfers": cell(1.6, "disaggregated").kv_transfers,
            "requests": 96,
        },
    )
