"""Fig. 10 — end-to-end throughput and energy efficiency on DDR4-PIM.

Paper (BERT-base/large seq 512 batch 64; ViT-huge 224^2 batch 128):

* Throughput (geomean): PIM-DL vs CPU FP32/INT8 = 2.05x/1.14x at V=2 and
  3.07x/1.71x at V=4; vs GEMM-on-PIM = 12.61x/18.91x.
* GEMM-on-PIM latency/layer: 38.47 s / 68.04 s / 105.88 s.
* Energy efficiency (geomean): 2.95x/1.65x (V=2), 4.42x/2.46x (V=4) vs
  CPU FP32/INT8; 11.16x/16.74x vs GEMM-on-PIM.
"""

import pytest

from repro.analysis import format_table, geomean
from repro.baselines import cpu_server_fp32, cpu_server_int8
from repro.engine import GEMMPIMEngine, HostEngine, PIMDLEngine
from repro.workloads import bert_base, bert_large, vit_huge

MODELS = [bert_base(), bert_large(), vit_huge()]
PAPER_LATENCY_PER_LAYER = {"BERT-base": 38.47, "BERT-large": 68.04, "ViT-huge": 105.88}


@pytest.fixture(scope="module")
def reports(upmem_module, wimpy_module):
    out = {}
    for cfg in MODELS:
        out[cfg.name] = {
            "cpu-fp32": HostEngine(cpu_server_fp32()).run(cfg),
            "cpu-int8": HostEngine(cpu_server_int8()).run(cfg),
            "pim-gemm": GEMMPIMEngine(upmem_module, wimpy_module).run(cfg),
            "pim-dl-v2": PIMDLEngine(upmem_module, wimpy_module, v=2, ct=16).run(cfg),
            "pim-dl-v4": PIMDLEngine(upmem_module, wimpy_module, v=4, ct=16).run(cfg),
        }
    return out


@pytest.fixture(scope="module")
def upmem_module():
    from repro.pim import get_platform

    return get_platform("upmem")


@pytest.fixture(scope="module")
def wimpy_module():
    from repro.baselines import wimpy_host

    return wimpy_host()


def _geomean_speedup(reports, base_key, target_key):
    return geomean(
        reports[m][base_key].total_s / reports[m][target_key].total_s
        for m in reports
    )


def test_fig10a_throughput(benchmark, report, reports):
    result = benchmark.pedantic(
        lambda: {
            ("v2", "fp32"): _geomean_speedup(reports, "cpu-fp32", "pim-dl-v2"),
            ("v2", "int8"): _geomean_speedup(reports, "cpu-int8", "pim-dl-v2"),
            ("v2", "pim"): _geomean_speedup(reports, "pim-gemm", "pim-dl-v2"),
            ("v4", "fp32"): _geomean_speedup(reports, "cpu-fp32", "pim-dl-v4"),
            ("v4", "int8"): _geomean_speedup(reports, "cpu-int8", "pim-dl-v4"),
            ("v4", "pim"): _geomean_speedup(reports, "pim-gemm", "pim-dl-v4"),
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        [m] + [f"{reports[m][k].total_s:.2f}"
               for k in ("cpu-fp32", "cpu-int8", "pim-gemm", "pim-dl-v2", "pim-dl-v4")]
        for m in reports
    ]
    paper = {("v2", "fp32"): 2.05, ("v2", "int8"): 1.14, ("v2", "pim"): 12.61,
             ("v4", "fp32"): 3.07, ("v4", "int8"): 1.71, ("v4", "pim"): 18.91}
    summary = format_table(
        ["setting", "baseline", "measured_geomean", "paper"],
        [[v, b, f"{result[(v, b)]:.2f}", paper[(v, b)]] for v, b in result],
    )
    report(
        "fig10a_throughput",
        format_table(
            ["model", "cpu_fp32_s", "cpu_int8_s", "pim_gemm_s", "pimdl_v2_s", "pimdl_v4_s"],
            rows,
        )
        + "\n\n"
        + summary,
    )

    # Shape: PIM-DL (V=4) clearly beats every baseline; V=2 beats FP32 and
    # lands near parity with INT8; both crush GEMM-on-PIM by >= order of mag.
    assert 1.5 < result[("v2", "fp32")] < 2.6
    assert 0.9 < result[("v2", "int8")] < 1.5
    assert 9.0 < result[("v2", "pim")] < 16.0
    assert 2.5 < result[("v4", "fp32")] < 3.8
    assert 1.4 < result[("v4", "int8")] < 2.1
    assert 15.0 < result[("v4", "pim")] < 24.0


def test_fig10a_pim_gemm_latency_per_layer(benchmark, report, reports):
    per_layer = benchmark.pedantic(
        lambda: {
            cfg.name: reports[cfg.name]["pim-gemm"].total_s / cfg.num_layers
            for cfg in MODELS
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for cfg in MODELS:
        measured = per_layer[cfg.name]
        expected = PAPER_LATENCY_PER_LAYER[cfg.name]
        rows.append([cfg.name, f"{measured:.1f}", expected])
        # Within 2x of the paper's measured per-layer GEMM-on-PIM latency.
        assert expected / 2 < measured < expected * 2
    report(
        "fig10a_pim_latency_line",
        format_table(["model", "measured_s_per_layer", "paper_s_per_layer"], rows),
    )


def test_fig10b_energy_efficiency(benchmark, report, reports):
    def efficiency(base_key, target_key):
        return geomean(
            reports[m][base_key].energy.total_j / reports[m][target_key].energy.total_j
            for m in reports
        )

    result = benchmark.pedantic(
        lambda: {
            ("v2", "fp32"): efficiency("cpu-fp32", "pim-dl-v2"),
            ("v2", "int8"): efficiency("cpu-int8", "pim-dl-v2"),
            ("v2", "pim"): efficiency("pim-gemm", "pim-dl-v2"),
            ("v4", "fp32"): efficiency("cpu-fp32", "pim-dl-v4"),
            ("v4", "int8"): efficiency("cpu-int8", "pim-dl-v4"),
            ("v4", "pim"): efficiency("pim-gemm", "pim-dl-v4"),
        },
        rounds=1,
        iterations=1,
    )

    paper = {("v2", "fp32"): 2.95, ("v2", "int8"): 1.65, ("v2", "pim"): 11.16,
             ("v4", "fp32"): 4.42, ("v4", "int8"): 2.46, ("v4", "pim"): 16.74}
    report(
        "fig10b_energy",
        format_table(
            ["setting", "baseline", "measured_geomean", "paper"],
            [[v, b, f"{result[(v, b)]:.2f}", paper[(v, b)]] for v, b in result],
        ),
    )

    # Ordering and rough magnitudes: PIM-DL is the most energy-efficient
    # configuration everywhere, with V=4 ahead of V=2.
    for key, expected in paper.items():
        measured = result[key]
        assert measured > 1.0
        assert expected / 2 < measured < expected * 2
    assert result[("v4", "fp32")] > result[("v2", "fp32")]
