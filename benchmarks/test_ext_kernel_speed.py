"""Host kernel layer speedups vs the frozen pre-kernel references.

Measures the :mod:`repro.kernels` fast paths on the BERT-base evaluation
shape the paper uses for host-side CCS cost (N=128 tokens, H=768, V=4,
CT=16 -> CB=192 codebooks) against the reference implementations frozen
in :mod:`repro.kernels.reference`.

The acceptance bar: the combined CCS + LUT-lookup pipeline must be at
least 3x faster than the references in float32.  float64, INT8, and the
vectorized Lloyd update are reported as informational rows.
"""

import time

import numpy as np
import pytest

from repro.core import quantize_lut
from repro.kernels import (
    CCSKernel,
    lloyd_update,
    lut_gather_reduce,
    lut_gather_reduce_quantized,
)
from repro.kernels.reference import (
    ccs_reference,
    lloyd_update_reference,
    lut_lookup_reference,
)

pytestmark = pytest.mark.slow

N, H, F, V, CT = 128, 768, 768, 4, 16
CB = H // V
REPEATS = 5


def best_of(fn, repeats=REPEATS):
    """Best wall-clock of ``repeats`` runs (first call may warm caches)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_kernel_speed_bert_base(report):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(N, H))
    centroids = rng.normal(size=(CB, CT, V))
    lut = rng.normal(size=(CB, CT, F))
    qlut = quantize_lut(lut)

    rows = []

    # --- CCS: reference vs cached float32 kernel -------------------------
    ref_ccs_s, ref_idx = best_of(lambda: ccs_reference(x, centroids))
    kernel32 = CCSKernel(dtype="float32")
    kernel32.prepare(centroids, version=0)  # warm the constant cache
    f32_ccs_s, idx32 = best_of(
        lambda: kernel32.search(x, centroids, version=0)
    )
    kernel64 = CCSKernel(dtype="float64")
    kernel64.prepare(centroids, version=0)
    f64_ccs_s, idx64 = best_of(
        lambda: kernel64.search(x, centroids, version=0)
    )
    assert np.array_equal(idx64, ref_idx)
    idx_match = float(np.mean(idx32 == ref_idx))
    assert idx_match > 0.999
    rows.append(("ccs float32", ref_ccs_s, f32_ccs_s))
    rows.append(("ccs float64", ref_ccs_s, f64_ccs_s))

    # --- LUT lookup: reference vs fused gather-reduce --------------------
    ref_lut_s, ref_out = best_of(lambda: lut_lookup_reference(ref_idx, lut))
    ker_lut_s, ker_out = best_of(lambda: lut_gather_reduce(ref_idx, lut))
    np.testing.assert_allclose(ker_out, ref_out, atol=1e-10)
    rows.append(("lut lookup", ref_lut_s, ker_lut_s))

    # --- INT8: dequantize-then-lookup vs fused int8 kernel ---------------
    ref_q_s, ref_q = best_of(
        lambda: lut_lookup_reference(ref_idx, qlut.dequantize())
    )
    ker_q_s, ker_q = best_of(lambda: lut_gather_reduce_quantized(ref_idx, qlut))
    np.testing.assert_allclose(ker_q, ref_q, atol=1e-9)
    rows.append(("lut lookup int8", ref_q_s, ker_q_s))

    # --- Lloyd update: per-cluster loop vs vectorized bincount -----------
    points = rng.normal(size=(8192, V))
    cents = rng.normal(size=(CT, V))
    labels = np.argmin(
        ((points[:, None, :] - cents[None]) ** 2).sum(axis=2), axis=1
    )
    ref_km_s, ref_cents = best_of(
        lambda: lloyd_update_reference(points, labels, CT, cents)
    )
    ker_km_s, ker_pair = best_of(lambda: lloyd_update(points, labels, CT, cents))
    np.testing.assert_allclose(ker_pair[0], ref_cents, atol=1e-10)
    rows.append(("lloyd update", ref_km_s, ker_km_s))

    lines = [
        f"shape: N={N} H={H} F={F} V={V} CT={CT} (CB={CB}), best of {REPEATS}",
        f"{'kernel':<16} {'reference_ms':>13} {'kernel_ms':>10} {'speedup':>8}",
    ]
    for name, ref_s, ker_s in rows:
        lines.append(
            f"{name:<16} {ref_s * 1e3:>13.3f} {ker_s * 1e3:>10.3f}"
            f" {ref_s / ker_s:>7.2f}x"
        )

    combined_ref = ref_ccs_s + ref_lut_s
    combined_ker = f32_ccs_s + ker_lut_s
    combined = combined_ref / combined_ker
    lines.append(
        f"{'ccs+lookup f32':<16} {combined_ref * 1e3:>13.3f}"
        f" {combined_ker * 1e3:>10.3f} {combined:>7.2f}x"
    )
    lines.append(f"float32 index agreement with float64 reference: {idx_match:.4%}")
    report("kernel_speed", "\n".join(lines))

    # Acceptance: >= 3x on the combined CCS + lookup pipeline (float32).
    assert combined >= 3.0, f"combined speedup {combined:.2f}x < 3x"
