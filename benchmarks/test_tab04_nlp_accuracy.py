"""Table 4 — NLP model accuracy: original vs baseline LUT-NN vs eLUT-NN.

Paper (BERT-base/large on GLUE, all linear layers replaced):
original avg 79.0/81.5, baseline LUT-NN collapses to 35.5/36.8, eLUT-NN
recovers to 76.9/79.3 (within ~2.2 points of the original).

Reproduction: three GLUE-like synthetic text-classification tasks on a
scaled-down deep encoder (paper-scale BERT training does not fit this
substrate; see DESIGN.md).  What must hold is the *ordering*:
original >= eLUT-NN > baseline LUT-NN, with eLUT-NN close to the original.
The catastrophic baseline collapse is implementation-regime dependent and
is not asserted (documented in EXPERIMENTS.md).
"""

import numpy as np

from repro.analysis import format_table
from repro.nn import TextClassifier
from repro.workloads import SyntheticTextTask

from _accuracy_common import run_accuracy_experiment, summarize

TASKS = [
    ("synth-glue-a", dict(vocab_size=64, seq_len=16, num_classes=8, peak_mass=0.55, seed=1)),
    ("synth-glue-b", dict(vocab_size=48, seq_len=16, num_classes=6, peak_mass=0.55, seed=2)),
    ("synth-glue-c", dict(vocab_size=64, seq_len=12, num_classes=4, peak_mass=0.50, seed=3)),
]


def _model_factory(task_kwargs):
    def build():
        return TextClassifier(
            vocab_size=task_kwargs["vocab_size"],
            max_seq_len=task_kwargs["seq_len"],
            num_classes=task_kwargs["num_classes"],
            dim=32,
            num_layers=6,
            num_heads=4,
            rng=np.random.default_rng(3),
        )

    return build


def test_tab04_nlp_accuracy(benchmark, report):
    def run():
        rows = []
        for name, kwargs in TASKS:
            task = SyntheticTextTask(**kwargs)
            rows.append(run_accuracy_experiment(name, task, _model_factory(kwargs)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    orig, base, elut = summarize(rows)

    table = format_table(
        ["task", "original", "baseline LUT-NN", "eLUT-NN"],
        [[r.task, f"{r.original:.3f}", f"{r.baseline_lut_nn:.3f}", f"{r.elut_nn:.3f}"]
         for r in rows]
        + [["avg", f"{orig:.3f}", f"{base:.3f}", f"{elut:.3f}"]],
    )
    report("tab04_nlp_accuracy", table)

    assert orig > 0.90, "substrate models must learn their tasks"
    # eLUT-NN close to original (paper: -2.2 points avg; allow small scale).
    assert elut > orig - 0.10
    # eLUT-NN beats the baseline under the matched calibration budget.
    assert elut > base - 0.02
    # Both calibrators must beat chance by a wide margin.
    chance = np.mean([1.0 / k["num_classes"] for _, k in TASKS])
    assert base > chance + 0.2
