"""Fig. 12 — sensitivity of PIM-DL's speedup to V, CT, batch, and hidden dim.

Paper (all normalized to CPU INT8 inference, defaults V=4/CT=16/seq 512/
batch 64):
(a) larger sub-vector length V -> higher speedup, converging;
(b) smaller centroid count CT -> higher speedup, converging;
(c) larger batch -> higher speedup (CPU wins at small batch in the paper's
    measurements; our tuner re-partitions small workloads so the crossover
    is weaker — see EXPERIMENTS.md);
(d) across OPT-family hidden dims, ~2.44x geomean with a peak at 4096.
"""

import pytest

from repro.analysis import format_table, geomean
from repro.baselines import cpu_server_int8, wimpy_host
from repro.engine import HostEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import OPT_HIDDEN_DIMS, bert_base, bert_large, opt_style, vit_huge

MODELS = [bert_base(), bert_large(), vit_huge()]


@pytest.fixture(scope="module")
def env():
    return get_platform("upmem"), wimpy_host(), HostEngine(cpu_server_int8())


def _speedup(platform, host, cpu, cfg, v=4, ct=16):
    pimdl = PIMDLEngine(platform, host, v=v, ct=ct).run(cfg)
    return cpu.run(cfg).total_s / pimdl.total_s


def test_fig12a_sub_vector_length(benchmark, report, env):
    platform, host, cpu = env

    def run():
        return {
            cfg.name: [_speedup(platform, host, cpu, cfg, v=v) for v in (2, 4, 8, 16, 32)]
            for cfg in MODELS
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig12a_sub_vector",
        format_table(
            ["model", "V=2", "V=4", "V=8", "V=16", "V=32"],
            [[m] + [f"{s:.2f}" for s in curve] for m, curve in curves.items()],
        ),
    )
    for name, curve in curves.items():
        assert curve == sorted(curve), f"{name}: speedup must rise with V"
        # Convergence: each doubling of V multiplies the speedup by less.
        assert curve[-1] / curve[-2] < curve[1] / curve[0]


def test_fig12b_centroid_number(benchmark, report, env):
    platform, host, cpu = env

    def run():
        return {
            cfg.name: [_speedup(platform, host, cpu, cfg, ct=ct) for ct in (128, 64, 32, 16, 8)]
            for cfg in MODELS
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig12b_centroids",
        format_table(
            ["model", "CT=128", "CT=64", "CT=32", "CT=16", "CT=8"],
            [[m] + [f"{s:.2f}" for s in curve] for m, curve in curves.items()],
        ),
    )
    for name, curve in curves.items():
        assert curve == sorted(curve), f"{name}: speedup must rise as CT shrinks"


def test_fig12c_batch_size(benchmark, report, env):
    platform, host, cpu = env

    def run():
        return {
            cfg.name: [
                _speedup(platform, host, cpu, cfg.with_(batch_size=b))
                for b in (8, 16, 32, 64, 128)
            ]
            for cfg in [bert_base(), bert_large()]
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig12c_batch",
        format_table(
            ["model", "b=8", "b=16", "b=32", "b=64", "b=128"],
            [[m] + [f"{s:.2f}" for s in curve] for m, curve in curves.items()],
        ),
    )
    for name, curve in curves.items():
        assert curve == sorted(curve), f"{name}: speedup must rise with batch"
        # Small batches are least favourable to PIM-DL (paper's direction).
        assert curve[0] < curve[-1] * 0.95


def test_fig12d_hidden_dim(benchmark, report, env):
    platform, host, cpu = env

    def run():
        return {h: _speedup(platform, host, cpu, opt_style(h)) for h in OPT_HIDDEN_DIMS}

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig12d_hidden",
        format_table(["hidden", "speedup"], [[h, f"{s:.2f}"] for h, s in curve.items()]),
    )
    gm = geomean(curve.values())
    # Paper: 2.44x geomean against the CPU server across these dims.
    assert 1.8 < gm < 3.2
    assert all(s > 1.0 for s in curve.values())
    # 4096 is the sweet spot in the paper (CPU scales worst there).
    assert curve[4096] == max(curve.values())
