"""Extension experiment — continuous batching vs single-server FIFO.

The utilization sweep the serving ROADMAP asks for: the same Poisson
request stream is scheduled (a) into a continuous batch with iteration-
level admission and (b) through the batch-1 FIFO discipline, across
offered loads from comfortable to past the FIFO capacity knee.  The
batching curve should dominate: equal-or-better P95 end-to-end latency at
every load, and strictly higher sustainable goodput once the FIFO server
saturates (rho >= 1 against its own service rate).

Marked ``slow``: the sweep re-costs decode steps across many (batch,
context) points, so it lands in the nightly job with the other sweeps.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import wimpy_host
from repro.engine import (GenerationServer, RequestScheduler,
                          SchedulerPolicy, scheduler_load_sweep)
from repro.pim import get_platform
from repro.workloads import opt_style

pytestmark = pytest.mark.slow


def test_ext_scheduler_batching(benchmark, report):
    config = opt_style(1024, seq_len=128, batch_size=1)
    server = GenerationServer(get_platform("upmem"), wimpy_host())
    scheduler = RequestScheduler(
        server, config, policy=SchedulerPolicy(max_batch_size=8)
    )

    def run():
        return scheduler_load_sweep(
            scheduler,
            utilizations=(0.3, 0.6, 0.9, 1.2, 1.5),
            num_requests=120,
            prompt_len=128,
            generate_len=32,
            seed=0,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    for p in points:
        table.append([
            f"{p.target_utilization:.1f}",
            f"{p.arrival_rate_rps:.2f}",
            f"{p.batched.e2e_p95_s * 1e3:.0f} / {p.fifo.e2e_p95_s * 1e3:.0f}",
            f"{p.batched.ttft_p95_s * 1e3:.0f} / {p.fifo.ttft_p95_s * 1e3:.0f}",
            f"{p.batched.throughput_rps:.2f} / {p.fifo.throughput_rps:.2f}",
            f"{p.batched.mean_batch_occupancy:.2f}",
        ])
    report(
        "ext_scheduler_batching",
        format_table(
            ["rho(FIFO)", "req/s",
             "P95 e2e ms (batch/fifo)", "P95 ttft ms (batch/fifo)",
             "req/s done (batch/fifo)", "batch occupancy"],
            table,
        ),
    )

    for p in points:
        # Batching never loses on tail latency on the shared stream...
        assert p.batched.e2e_p95_s <= p.fifo.e2e_p95_s * 1.02
    overloaded = [p for p in points if p.target_utilization > 1.0]
    assert overloaded, "sweep must cross the FIFO capacity knee"
    for p in overloaded:
        # ...and wins capacity outright past the FIFO knee: strictly more
        # completed work at a strictly better P95.
        assert p.batched.e2e_p95_s < p.fifo.e2e_p95_s
        assert p.batched.throughput_rps > p.fifo.throughput_rps
