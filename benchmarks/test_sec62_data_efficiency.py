"""§6.2 — data efficiency and convergence speed of eLUT-NN (claim A1).

Paper: the baseline method demands the full training set, while eLUT-NN
calibrates with <1% of the pre-training tokens and "the model converges
more quickly" (reaching convergence in <100k iterations).

Reproduction: sweep the calibration budget (fraction of the training set)
and compare deployed accuracy of eLUT-NN vs the baseline calibrator under
identical budgets.  eLUT-NN must (a) approach the original accuracy with a
small fraction of the data, and (b) dominate the baseline at small budgets.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import (
    BaselineLUTNNCalibrator,
    ELUTNNCalibrator,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    set_lut_mode,
)
from repro.nn import TextClassifier
from repro.workloads import SyntheticTextTask, sample_batches, train_classifier

TRAIN_SAMPLES = 1024
BUDGETS = (32, 64, 128, 256)  # calibration samples (3%-25% of training set)


@pytest.fixture(scope="module")
def trained_model():
    task = SyntheticTextTask(vocab_size=64, seq_len=16, num_classes=8,
                             peak_mass=0.55, seed=1)
    train = sample_batches(task, TRAIN_SAMPLES, 32)
    test = sample_batches(task, 512, 64)

    def factory():
        return TextClassifier(vocab_size=64, max_seq_len=16, num_classes=8,
                              dim=32, num_layers=6, num_heads=4,
                              rng=np.random.default_rng(3))

    model = factory()
    train_classifier(model, train, epochs=8, lr=2e-3)
    return task, factory, model.state_dict(), test, evaluate_accuracy(model, test)


def _calibrated_accuracy(task, factory, state, test, calibrator, samples):
    calib = sample_batches(task, samples, 32)
    model = factory()
    model.load_state_dict(state)
    convert_to_lut_nn(model, [b[0] for b in calib], v=4, ct=4,
                      rng=np.random.default_rng(11), centroid_init="random")
    calibrator.calibrate(model, calib, epochs=8)
    set_lut_mode(model, "lut")
    freeze_all_luts(model, quantize_int8=True)
    return evaluate_accuracy(model, test)


def test_sec62_data_efficiency(benchmark, report, trained_model):
    task, factory, state, test, original = trained_model

    def run():
        rows = []
        for samples in BUDGETS:
            elut = _calibrated_accuracy(
                task, factory, state, test, ELUTNNCalibrator(beta=10.0, lr=1e-3), samples
            )
            base = _calibrated_accuracy(
                task, factory, state, test, BaselineLUTNNCalibrator(lr=1e-3), samples
            )
            rows.append((samples, elut, base))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "sec62_data_efficiency",
        format_table(
            ["calib samples", "% of train", "eLUT-NN", "baseline", "original"],
            [[s, f"{s / TRAIN_SAMPLES:.0%}", f"{e:.3f}", f"{b:.3f}", f"{original:.3f}"]
             for s, e, b in rows],
        ),
    )

    accs_elut = [e for _, e, _ in rows]
    accs_base = [b for _, _, b in rows]
    # A small calibration budget already brings eLUT-NN near the original.
    assert accs_elut[-1] > original - 0.12
    assert accs_elut[1] > original - 0.16  # 6% of the training set
    # eLUT-NN converges at least as well as the baseline at every budget.
    assert np.mean(accs_elut) >= np.mean(accs_base) - 0.02
    # More data never catastrophically hurts (stability of calibration).
    assert min(accs_elut) > 0.5


def test_sec62_convergence_speed(benchmark, report, trained_model):
    """eLUT-NN's loss drops faster per step than the baseline's (A1)."""
    task, factory, state, test, _ = trained_model
    calib = sample_batches(task, 128, 32)

    def run_one(calibrator):
        model = factory()
        model.load_state_dict(state)
        convert_to_lut_nn(model, [b[0] for b in calib], v=4, ct=4,
                          rng=np.random.default_rng(11), centroid_init="random")
        result = calibrator.calibrate(model, calib, epochs=4)
        return result.model_loss_history

    losses = benchmark.pedantic(
        lambda: {
            "elut": run_one(ELUTNNCalibrator(beta=10.0, lr=1e-3)),
            "baseline": run_one(BaselineLUTNNCalibrator(lr=1e-3)),
        },
        rounds=1,
        iterations=1,
    )

    halfway = len(losses["elut"]) // 2
    report(
        "sec62_convergence",
        format_table(
            ["calibrator", "loss@start", "loss@half", "loss@end"],
            [[k, f"{v[0]:.3f}", f"{v[halfway]:.3f}", f"{v[-1]:.3f}"]
             for k, v in losses.items()],
        ),
    )
    # Both should improve; eLUT-NN ends at or below the baseline's loss.
    assert losses["elut"][-1] < losses["elut"][0]
    assert losses["elut"][-1] <= losses["baseline"][-1] * 1.2
