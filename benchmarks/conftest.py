"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 6).  Results are printed as plain-text tables and archived under
``benchmarks/results/`` so paper-vs-measured comparisons (EXPERIMENTS.md)
can be refreshed from a single run of::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Write a named result table to disk and echo it to stdout."""

    def _report(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _report


@pytest.fixture(scope="session")
def upmem():
    from repro.pim import get_platform

    return get_platform("upmem")


@pytest.fixture(scope="session")
def wimpy():
    from repro.baselines import wimpy_host

    return wimpy_host()
