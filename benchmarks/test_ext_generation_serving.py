"""Extension experiment — full generation requests (prefill + decode).

Combines the paper's two regimes into one serving metric: time-to-first-
token (batched prefill, PIM-DL's target workload) plus per-token decode
latency (the GEMV regime existing DRAM-PIM deployments target).  LUT-NN
serving should win the full request on both the prefill-heavy and the
decode-heavy side of the sweep.
"""


from repro.analysis import format_table, geomean
from repro.baselines import a2_gpu
from repro.engine import GenerationServer
from repro.pim import get_platform
from repro.workloads import opt_style


def test_ext_generation_serving(benchmark, report):
    platform = get_platform("aim")
    host = a2_gpu()
    lut_server = GenerationServer(platform, host, v=4, ct=16, lut_nn=True)
    native_server = GenerationServer(platform, host, lut_nn=False)
    scenarios = [
        ("chat (short prompt, long gen)", 128, 256, 4),
        ("summarize (long prompt, short gen)", 1024, 64, 4),
        ("batch offline", 512, 128, 8),
    ]

    def run():
        rows = []
        for name, prompt, gen, batch in scenarios:
            config = opt_style(2048, seq_len=prompt, batch_size=batch)
            lut = lut_server.run(config, prompt_len=prompt, generate_len=gen,
                                 batch_size=batch)
            native = native_server.run(config, prompt_len=prompt, generate_len=gen,
                                       batch_size=batch)
            rows.append((name, lut, native))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for name, lut, native in rows:
        table.append([
            name,
            f"{lut.time_to_first_token_s * 1e3:.0f} / {native.time_to_first_token_s * 1e3:.0f}",
            f"{lut.per_token_decode_s * 1e6:.0f} / {native.per_token_decode_s * 1e6:.0f}",
            f"{native.request_latency_s / lut.request_latency_s:.2f}x",
        ])
    report(
        "ext_generation_serving",
        format_table(
            ["scenario", "TTFT ms (lut/native)", "decode us/tok (lut/native)",
             "request speedup"],
            table,
        ),
    )

    gains = [native.request_latency_s / lut.request_latency_s
             for _, lut, native in rows]
    assert all(g > 1.0 for g in gains), "LUT-NN serving must win every scenario"
    assert geomean(gains) > 2.0
    # Prefill (batched GEMM) is where LUT-NN helps most (the paper's thesis).
    for _, lut, native in rows:
        prefill_gain = native.prefill_s / lut.prefill_s
        decode_gain = native.per_token_decode_s / lut.per_token_decode_s
        assert prefill_gain > decode_gain
