"""Design-choice ablations called out in DESIGN.md.

1. Load schemes (Fig. 9 / P4): across workload shapes, no single LUT load
   scheme dominates — the scheme the tuner picks depends on whether the
   sub-LUT fits the 64 KB WRAM and how many rows amortize the gather.
2. Auto-tuner value: tuned mappings vs a fixed "reasonable default"
   mapping, quantifying what Algorithm 1 buys end to end.
3. eLUT-NN loss terms: calibrating with and without the reconstruction
   loss (beta = 0 ablation) on a converted model.
"""

import numpy as np

from repro.analysis import format_table, geomean
from repro.core import (
    ELUTNNCalibrator,
    LUTShape,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    set_lut_mode,
)
from repro.mapping import AutoTuner, Mapping, estimate_latency, is_legal
from repro.nn import TextClassifier
from repro.pim import get_platform
from repro.workloads import SyntheticTextTask, sample_batches, train_classifier


def test_ablation_load_scheme_choice(benchmark, report):
    """The tuner's preferred load scheme varies with workload shape."""
    platform = get_platform("upmem")
    shapes = [
        LUTShape(n=32768, h=1024, f=4096, v=4, ct=16),  # BERT-large FFN1
        LUTShape(n=32768, h=768, f=768, v=4, ct=16),  # BERT-base O
        LUTShape(n=4096, h=768, f=3072, v=8, ct=8),  # small batch, coarse V
        LUTShape(n=1024, h=256, f=256, v=4, ct=64),  # many centroids
        LUTShape(n=65536, h=1280, f=5120, v=4, ct=16),  # ViT-huge FFN1
    ]

    def run():
        tuner = AutoTuner(platform)
        return {s: tuner.tune(s) for s in shapes}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"N={s.n},H={s.h},F={s.f},CT={s.ct}", r.mapping.load_scheme,
         "->".join(r.mapping.traversal), f"{r.cost:.3f}"]
        for s, r in results.items()
    ]
    report("ablation_load_scheme", format_table(
        ["workload", "scheme", "traversal", "latency_s"], rows))

    # Every result is legal and finite; the tuner is not degenerate (it
    # must not pick the same micro-kernel tile sizes for every workload).
    for s, r in results.items():
        assert is_legal(s, r.mapping, platform)
    distinct_kernels = {
        (r.mapping.n_m_tile, r.mapping.f_m_tile, r.mapping.cb_m_tile,
         r.mapping.load_scheme)
        for r in results.values()
    }
    assert len(distinct_kernels) >= 3


def test_ablation_tuner_vs_default_mapping(benchmark, report):
    """Quantify Algorithm 1's benefit over a fixed sensible mapping."""
    platform = get_platform("upmem")
    shapes = [
        LUTShape(n=32768, h=768, f=2304, v=4, ct=16),
        LUTShape(n=32768, h=768, f=3072, v=4, ct=16),
        LUTShape(n=32768, h=3072, f=768, v=4, ct=16),
        LUTShape(n=16384, h=1024, f=4096, v=4, ct=16),
    ]

    def default_mapping(shape):
        # A plausible hand-written default: use all PEs via 32 groups,
        # fine-grain loads, medium tiles.
        n_s = max(shape.n // 32, 1)
        f_s = max(shape.f // (platform.num_pes // 32), 1)
        return Mapping(
            n_s_tile=n_s, f_s_tile=f_s,
            n_m_tile=min(32, n_s), f_m_tile=min(8, f_s),
            cb_m_tile=min(32, shape.cb),
            load_scheme="fine", f_load_tile=min(8, f_s),
        )

    def run():
        tuner = AutoTuner(platform)
        out = []
        for shape in shapes:
            tuned = tuner.tune(shape)
            default = default_mapping(shape)
            assert is_legal(shape, default, platform)
            t_default = estimate_latency(shape, default, platform).total
            out.append((shape, tuned.cost, t_default))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [d / t for _, t, d in rows]
    report(
        "ablation_tuner_value",
        format_table(
            ["workload", "tuned_s", "default_s", "gain"],
            [[f"N={s.n},H={s.h},F={s.f}", f"{t:.3f}", f"{d:.3f}", f"{d / t:.2f}x"]
             for (s, t, d), g in zip(rows, gains)],
        ),
    )
    assert all(g >= 1.0 for g in gains)
    assert geomean(gains) > 1.2  # tuning buys a real improvement


def test_ablation_reconstruction_loss(benchmark, report):
    """eLUT-NN minus the reconstruction loss (beta=0) calibrates worse or
    equal — the loss term is load-bearing (paper §4.2)."""
    task = SyntheticTextTask(vocab_size=64, seq_len=16, num_classes=8,
                             peak_mass=0.55, seed=9)
    train = sample_batches(task, 768, 32)
    test = sample_batches(task, 384, 64)
    calib = sample_batches(task, 96, 32)

    def factory():
        return TextClassifier(vocab_size=64, max_seq_len=16, num_classes=8,
                              dim=32, num_layers=4, num_heads=4,
                              rng=np.random.default_rng(5))

    def run():
        model = factory()
        train_classifier(model, train, epochs=8, lr=2e-3)
        state = model.state_dict()
        original = evaluate_accuracy(model, test)

        def calibrated(beta):
            m = factory()
            m.load_state_dict(state)
            convert_to_lut_nn(m, [b[0] for b in calib], v=4, ct=4,
                              rng=np.random.default_rng(11), centroid_init="random")
            ELUTNNCalibrator(beta=beta, lr=1e-3).calibrate(m, calib, epochs=8)
            set_lut_mode(m, "lut")
            freeze_all_luts(m, quantize_int8=True)
            return evaluate_accuracy(m, test)

        return original, calibrated(10.0), calibrated(0.0)

    original, with_recon, without_recon = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_reconstruction_loss",
        format_table(
            ["setting", "accuracy"],
            [["original", f"{original:.3f}"],
             ["eLUT-NN (beta=10)", f"{with_recon:.3f}"],
             ["eLUT-NN (beta=0, no recon loss)", f"{without_recon:.3f}"]],
        ),
    )
    assert with_recon >= without_recon - 0.03
    assert with_recon > original - 0.12
