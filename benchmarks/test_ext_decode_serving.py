"""Extension experiment — LUT-NN applied to the decode (generation) phase.

The paper positions existing DRAM-PIM deployments as GEMV accelerators for
single-batch GPT inference (§1-2) and targets the batched-GEMM regime with
PIM-DL.  This extension closes the loop: it applies PIM-DL's LUT kernels to
the decode phase itself and measures per-token throughput against the
products' native GEMV mode across batch sizes and hidden dims.

Expected shape: LUT decode matches GEMV at batch 1 on small models (both
weight-streaming bound, LUT has CCS overhead) and pulls ahead as the batch
or hidden dim grows, because the tables are read per *selected centroid*
(H/V entries per row) instead of streaming the full weight matrix per row.
"""

import numpy as np

from repro.analysis import format_table, geomean
from repro.baselines import a2_gpu
from repro.engine import GEMVDecodeEngine, LUTDecodeEngine
from repro.pim import get_platform
from repro.workloads import opt_style

BATCHES = (1, 2, 4, 8)
HIDDEN_DIMS = (1024, 2048, 4096)


def test_ext_decode_serving(benchmark, report):
    platform = get_platform("aim")
    host = a2_gpu()

    def run():
        grid = np.empty((len(BATCHES), len(HIDDEN_DIMS)))
        for i, b in enumerate(BATCHES):
            for j, h in enumerate(HIDDEN_DIMS):
                cfg = opt_style(h, seq_len=128, batch_size=b)
                gemv = GEMVDecodeEngine(platform, host).run(
                    cfg, batch_size=b, context_len=512
                )
                lut = LUTDecodeEngine(platform, host, v=4, ct=16).run(
                    cfg, batch_size=b, context_len=512
                )
                grid[i, j] = gemv.token_latency_s / lut.token_latency_s
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"batch={b}"] + [f"{grid[i, j]:.2f}" for j in range(len(HIDDEN_DIMS))]
            for i, b in enumerate(BATCHES)]
    rows.append(["geomean", f"{geomean(grid.ravel()):.2f}", "", ""])
    report("ext_decode_serving",
           format_table(["", *(f"h={h}" for h in HIDDEN_DIMS)], rows))

    # LUT decode never loses badly and wins clearly at batch >= 4.
    assert grid.min() > 0.8
    assert grid[BATCHES.index(8)].min() > 1.5
    # The gain grows with batch size at every hidden dim.
    assert np.all(np.diff(grid, axis=0) > -1e-9)
