"""Extension experiments — host/PIM pipelining and LUT memory overhead.

1. **Pipeline overlap (what-if):** the paper's measured system runs CCS,
   attention, and LUT kernels sequentially; Fig. 11-(a) shows host operators
   at ~25-30% of total latency.  Double-buffering host work against PIM
   kernels bounds the achievable gain by exactly that share — this bench
   quantifies it per model.

2. **Memory overhead:** the price of LUT-NN is table storage — CT/V x the
   weight element count.  The bench tabulates bytes per layer for the
   paper's (V, CT) settings, confirming INT8 tables at V=4/CT=16 cost 2x
   the FP16 weights they replace (and 4x at V=2).
"""

import pytest

from repro.analysis import format_table, geomean
from repro.baselines import wimpy_host
from repro.core import LUTShape, lut_memory_overhead
from repro.engine import PIMDLEngine
from repro.pim import get_platform
from repro.workloads import bert_base, bert_large, vit_huge

MODELS = [bert_base(), bert_large(), vit_huge()]


def test_ext_pipeline_overlap(benchmark, report):
    platform = get_platform("upmem")
    host = wimpy_host()

    def run():
        out = {}
        for cfg in MODELS:
            engine = PIMDLEngine(platform, host, v=4, ct=16)
            sequential = engine.run(cfg)
            pipelined = engine.run(cfg, pipeline_overlap=True)
            out[cfg.name] = (sequential, pipelined)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (seq, pipe) in results.items():
        gain = seq.total_s / pipe.total_s
        rows.append([name, f"{seq.total_s:.2f}", f"{pipe.total_s:.2f}",
                     f"{gain:.2f}x", f"{seq.host_s / seq.total_s:.0%}"])
    report("ext_pipeline_overlap",
           format_table(["model", "sequential_s", "pipelined_s", "gain",
                         "host share"], rows))

    for name, (seq, pipe) in results.items():
        # Overlap hides exactly min(host, pim): total = max(host, pim).
        assert pipe.total_s == pytest.approx(max(seq.host_s, seq.pim_s))
        # The gain is bounded by (and tracks) the host share of Fig. 11-(a).
        gain = seq.total_s / pipe.total_s
        assert 1.0 < gain < 2.0
    gains = [seq.total_s / pipe.total_s for seq, pipe in results.values()]
    assert geomean(gains) > 1.15  # a real, but bounded, opportunity


def test_ext_lut_memory_overhead(benchmark, report):
    n = 64 * 512

    def run():
        rows = []
        for v, ct in [(2, 16), (4, 16), (4, 8), (8, 16)]:
            shape = LUTShape(n=n, h=768, f=3072, v=v, ct=ct)
            rows.append((v, ct, lut_memory_overhead(shape)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ext_lut_memory_overhead",
        format_table(
            ["V", "CT", "INT8 table bytes / FP16 weight bytes"],
            [[v, ct, f"{ratio:.2f}x"] for v, ct, ratio in rows],
        ),
    )
    by_setting = {(v, ct): ratio for v, ct, ratio in rows}
    # Element ratio CT/V at byte ratio (CT/V) * (1/2) for INT8-vs-FP16.
    assert by_setting[(2, 16)] == pytest.approx(4.0, rel=0.05)
    assert by_setting[(4, 16)] == pytest.approx(2.0, rel=0.05)
    assert by_setting[(4, 8)] == pytest.approx(1.0, rel=0.05)
    assert by_setting[(8, 16)] == pytest.approx(1.0, rel=0.05)
