"""Shared experiment harness for the accuracy tables (Tables 4 and 5).

Implements the paper's §6.2 protocol at reproduction scale: start from a
trained model, initialize centroids randomly, replace *all* encoder linear
layers, then calibrate with (a) eLUT-NN and (b) the baseline LUT-NN
algorithm under identical small calibration budgets, and evaluate the
deployed (hard-assignment, INT8-LUT) models.
"""

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core import (
    BaselineLUTNNCalibrator,
    ELUTNNCalibrator,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    set_lut_mode,
)
from repro.workloads import sample_batches, train_classifier

#: Quantization severity used by the accuracy experiments.  The paper uses
#: V=2/CT=16 on hidden dims of 768-1280; at our hidden dim of 32 the
#: matched relative severity is V=4/CT=4 (same codebook-to-dim ratio class).
ACCURACY_V = 4
ACCURACY_CT = 4


@dataclass
class AccuracyRow:
    task: str
    original: float
    baseline_lut_nn: float
    elut_nn: float


def run_accuracy_experiment(
    task_name: str,
    task,
    model_factory: Callable[[], object],
    train_samples: int = 1024,
    calib_samples: int = 128,
    test_samples: int = 512,
    train_epochs: int = 8,
    calib_epochs: int = 8,
    train_lr: float = 2e-3,
) -> AccuracyRow:
    """One row of Table 4/5: original vs baseline LUT-NN vs eLUT-NN."""
    train = sample_batches(task, train_samples, 32)
    test = sample_batches(task, test_samples, 64)
    calib = sample_batches(task, calib_samples, 32)

    model = model_factory()
    train_classifier(model, train, epochs=train_epochs, lr=train_lr)
    original = evaluate_accuracy(model, test)
    state = model.state_dict()

    def convert_and_calibrate(calibrator) -> float:
        candidate = model_factory()
        candidate.load_state_dict(state)
        convert_to_lut_nn(
            candidate,
            [b[0] for b in calib],
            v=ACCURACY_V,
            ct=ACCURACY_CT,
            rng=np.random.default_rng(11),
            centroid_init="random",  # paper §6.2 calibration setup
        )
        calibrator.calibrate(candidate, calib, epochs=calib_epochs)
        set_lut_mode(candidate, "lut")
        freeze_all_luts(candidate, quantize_int8=True)
        return evaluate_accuracy(candidate, test)

    elut = convert_and_calibrate(ELUTNNCalibrator(beta=10.0, lr=1e-3))
    baseline = convert_and_calibrate(BaselineLUTNNCalibrator(lr=1e-3))
    return AccuracyRow(task=task_name, original=original,
                       baseline_lut_nn=baseline, elut_nn=elut)


def summarize(rows: List[AccuracyRow]):
    orig = np.mean([r.original for r in rows])
    base = np.mean([r.baseline_lut_nn for r in rows])
    elut = np.mean([r.elut_nn for r in rows])
    return orig, base, elut
