"""Extension experiment — Auto-Tuner scaling: serial vs parallel vs cache.

The paper reports Algorithm 1 takes ~1 s per model on a CPU (§5.3); ATiM
(PAPERS.md) shows search-based PIM tuning benefits from parallel candidate
evaluation.  This bench measures, for every distinct BERT-base linear
shape, (1) the serial search, (2) the process-pool search at increasing
job counts — asserting the results stay bit-identical — and (3) the
warm-start path from a persistent :class:`~repro.mapping.MappingCache`,
which must evaluate zero candidates.

Speedup on a given machine depends on its core count (on a single-core
runner the pool only adds overhead), so the assertion is on determinism
and cache behaviour; the wall-clock table is recorded for inspection.
"""

import time

import pytest

from repro import obs
from repro.analysis import format_table
from repro.mapping import AutoTuner, MappingCache, model_lut_shapes
from repro.pim import get_platform
from repro.workloads import bert_base

JOB_COUNTS = [1, 2, 4]

pytestmark = pytest.mark.slow


def test_ext_tuner_scaling(report, tmp_path):
    platform = get_platform("upmem")
    shapes = model_lut_shapes(bert_base())

    timings = {}
    results = {}
    for jobs in JOB_COUNTS:
        tuner = AutoTuner(platform, jobs=jobs)
        start = time.perf_counter()
        results[jobs] = {shape: tuner.tune(shape) for shape in shapes}
        timings[jobs] = time.perf_counter() - start

    # Determinism: every job count returns the serial winner, bit-identical.
    for jobs in JOB_COUNTS[1:]:
        for shape in shapes:
            assert results[jobs][shape].mapping == results[1][shape].mapping
            assert results[jobs][shape].cost == results[1][shape].cost

    # Cold cache fill, then warm-start: zero candidates evaluated.
    cache = MappingCache(str(tmp_path / "cache"))
    fill = AutoTuner(platform, jobs=JOB_COUNTS[-1], cache=cache)
    start = time.perf_counter()
    for shape in shapes:
        fill.tune(shape)
    cold_s = time.perf_counter() - start

    counter = obs.get_registry().counter("tuner.candidates_evaluated")
    before = counter.value
    warm_tuner = AutoTuner(platform, cache=cache)
    start = time.perf_counter()
    for shape in shapes:
        warm = warm_tuner.tune(shape)
        assert warm.mapping == results[1][shape].mapping
    warm_s = time.perf_counter() - start
    assert counter.value == before, "warm cache must evaluate zero candidates"

    rows = [
        [f"jobs={jobs}", f"{timings[jobs]:.3f}",
         f"{timings[1] / timings[jobs]:.2f}x"]
        for jobs in JOB_COUNTS
    ]
    rows.append(["cold cache fill", f"{cold_s:.3f}", "-"])
    rows.append(["warm cache", f"{warm_s:.3f}",
                 f"{timings[1] / max(warm_s, 1e-9):.0f}x"])
    report(
        "ext_tuner_scaling",
        format_table(["configuration", "wall_s", "speedup vs serial"], rows),
    )

    # The warm path has to beat even the serial search by a wide margin —
    # it does no enumeration at all.
    assert warm_s < timings[1] / 2
