"""Fig. 15 — PIM-DL on HBM-PIM/AiM vs FP32 inference on an NVIDIA V100.

Paper (same sweep as Fig. 14): AiM-based PIM-DL outperforms the V100 by up
to 1.20x, while HBM-PIM-based PIM-DL reaches only ~39% of the V100's
performance (geomean) — the gap tracks the platforms' compute capacity
(4.8 vs 16 TFLOPS vs the GPU's 130 TFLOPS).
"""

import numpy as np
import pytest

from repro.analysis import format_table, geomean
from repro.baselines import a2_gpu, v100_gpu
from repro.engine import HostEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import opt_style

BATCHES = (1, 2, 4, 8)
HIDDEN_DIMS = (1024, 2048, 2560, 4096)


@pytest.fixture(scope="module")
def grids():
    gpu = HostEngine(v100_gpu())
    out = {}
    for name in ("hbm-pim", "aim"):
        platform = get_platform(name)
        host = a2_gpu()
        grid = np.empty((len(BATCHES), len(HIDDEN_DIMS)))
        for i, b in enumerate(BATCHES):
            for j, h in enumerate(HIDDEN_DIMS):
                cfg = opt_style(h, seq_len=128, batch_size=b)
                grid[i, j] = (
                    gpu.run(cfg).total_s
                    / PIMDLEngine(platform, host, v=4, ct=16).run(cfg).total_s
                )
        out[name] = grid
    return out


def test_fig15_gpu_comparison(benchmark, report, grids):
    result = benchmark.pedantic(
        lambda: {name: (geomean(g.ravel()), float(g.max())) for name, g in grids.items()},
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, grid in grids.items():
        for i, b in enumerate(BATCHES):
            rows.append([name, f"batch={b}"]
                        + [f"{grid[i, j]:.2f}" for j in range(len(HIDDEN_DIMS))])
    gm_hbm, max_hbm = result["hbm-pim"]
    gm_aim, max_aim = result["aim"]
    rows.append(["hbm-pim", "geomean/max", f"{gm_hbm:.2f}", f"{max_hbm:.2f}",
                 "paper: 0.39 geomean", ""])
    rows.append(["aim", "geomean/max", f"{gm_aim:.2f}", f"{max_aim:.2f}",
                 "paper: up to 1.20", ""])
    report(
        "fig15_gpu_comparison",
        format_table(["platform", "", *(f"h={h}" for h in HIDDEN_DIMS)], rows),
    )

    # HBM-PIM clearly loses to the V100 (paper: 0.39x geomean).
    assert 0.25 < gm_hbm < 0.60
    assert max_hbm < 1.0
    # AiM is competitive and wins on some configurations (paper: up to 1.20x).
    assert max_aim > 0.95
    assert max_aim < 1.5
    # AiM beats HBM-PIM everywhere (it has ~3.3x the compute).
    assert np.all(grids["aim"] >= grids["hbm-pim"] * 0.99)
