"""Fig. 3 — computation-reduction analysis of LUT-NN vs GEMM.

Paper: at N=H=F=1024, LUT-NN reduces FLOPs by 3.66x-18.29x over GEMM and
multiplications make up only 2.9%-14.3% of LUT-NN's total operations.
"""

from repro.analysis import format_table, sweep_centroid_count, sweep_sub_vector_length


def test_fig03_flop_reduction(benchmark, report):
    def run():
        return (
            sweep_sub_vector_length(vs=(2, 4, 8, 16), ct=16),
            sweep_centroid_count(cts=(64, 32, 16, 8), v=4),
        )

    v_sweep, ct_sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for p in v_sweep:
        rows.append(
            [f"V={p.v}/CT={p.ct}", p.additions, p.multiplications,
             round(p.reduction_over_gemm, 2), f"{p.multiplication_fraction:.1%}"]
        )
    for p in ct_sweep:
        rows.append(
            [f"V={p.v}/CT={p.ct}", p.additions, p.multiplications,
             round(p.reduction_over_gemm, 2), f"{p.multiplication_fraction:.1%}"]
        )
    report(
        "fig03_flop_reduction",
        format_table(["config", "adds", "mults", "reduction_vs_gemm", "mult_frac"], rows),
    )

    # Shape checks against the paper's reported ranges.
    reductions = [p.reduction_over_gemm for p in v_sweep]
    assert reductions == sorted(reductions)
    assert 3.3 < reductions[0] < 4.0  # paper: 3.66x at V=2
    assert 17.0 < reductions[-1] < 19.5  # paper: 18.29x at V=16
    fractions = [p.multiplication_fraction for p in v_sweep + ct_sweep]
    assert all(0.02 < f < 0.16 for f in fractions)  # paper: 2.9%-14.3%
    ct_reductions = [p.reduction_over_gemm for p in ct_sweep]
    assert ct_reductions == sorted(ct_reductions)  # improves as CT shrinks
