"""Fig. 14 — PIM-DL vs normal (GEMM/GEMV) DNN inference on HBM-PIM and AiM.

Paper (seq 128, batch 1-8, hidden dims from the OPT family):
PIM-DL achieves 23.94x / 19.06x geomean speedup on HBM-PIM / AiM over the
products' native GEMV-sequence inference; the gain grows with batch size
(up to 2.23x across the sweep) and shrinks slightly with hidden dim.
"""

import numpy as np
import pytest

from repro.analysis import format_table, geomean
from repro.baselines import a2_gpu
from repro.engine import GEMMPIMEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import opt_style

BATCHES = (1, 2, 4, 8)
HIDDEN_DIMS = (1024, 2048, 2560, 4096)
PAPER_GEOMEAN = {"hbm-pim": 23.94, "aim": 19.06}


@pytest.fixture(scope="module", params=["hbm-pim", "aim"])
def platform_name(request):
    return request.param


def test_fig14_pim_dl_vs_native_inference(benchmark, report, platform_name):
    platform = get_platform(platform_name)
    host = a2_gpu()

    def run():
        grid = np.empty((len(BATCHES), len(HIDDEN_DIMS)))
        for i, b in enumerate(BATCHES):
            for j, h in enumerate(HIDDEN_DIMS):
                cfg = opt_style(h, seq_len=128, batch_size=b)
                native = GEMMPIMEngine(platform, host).run(cfg).total_s
                pimdl = PIMDLEngine(platform, host, v=4, ct=16).run(cfg).total_s
                grid[i, j] = native / pimdl
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    gm = geomean(grid.ravel())

    rows = [[f"batch={b}"] + [f"{grid[i, j]:.1f}" for j in range(len(HIDDEN_DIMS))]
            for i, b in enumerate(BATCHES)]
    rows.append(["geomean", f"{gm:.1f}", f"paper {PAPER_GEOMEAN[platform_name]}", "", ""])
    report(
        f"fig14_{platform_name}",
        format_table(["", *(f"h={h}" for h in HIDDEN_DIMS)], rows),
    )

    # Order-of-magnitude speedup over native GEMV-sequence inference.
    assert gm > 8.0
    assert gm < PAPER_GEOMEAN[platform_name] * 2
    # Gain grows with batch size at every hidden dim (paper's trend)...
    per_batch = grid.mean(axis=1)
    assert all(np.diff(per_batch) > 0)
    # ...by a meaningful factor across the sweep (paper: up to 2.23x).
    assert per_batch[-1] / per_batch[0] > 1.15
    # ...and shrinks from the smallest to the largest hidden dim.
    per_hidden = grid.mean(axis=0)
    assert per_hidden[0] > per_hidden[-1]
