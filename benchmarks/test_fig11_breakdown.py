"""Fig. 11 — latency breakdown and layer-wise speedup of PIM-DL.

Paper:
(a) LUT-NN inference (CCS + LUT) is 73.7%-79.4% of total latency; the LUT
    operator alone is 51.5%-60.4% of total.
(b) Per-layer speedup vs CPU INT8 (V=4/CT=16): QKV 1.61x, O 0.99x,
    FFN1 1.78x, FFN2 2.38x; 1.81x geomean overall, O the smallest.
"""

import pytest

from repro.analysis import format_table, geomean
from repro.baselines import cpu_server_int8, wimpy_host
from repro.engine import HostEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import bert_base, bert_large, vit_huge

MODELS = [bert_base(), bert_large(), vit_huge()]


@pytest.fixture(scope="module")
def pimdl_reports():
    platform = get_platform("upmem")
    host = wimpy_host()
    return {
        cfg.name: PIMDLEngine(platform, host, v=4, ct=16).run(cfg) for cfg in MODELS
    }


def test_fig11a_latency_breakdown(benchmark, report, pimdl_reports):
    def run():
        out = {}
        for name, rep in pimdl_reports.items():
            shares = rep.category_shares()
            lut = shares.get("lut", 0.0)
            ccs = shares.get("ccs", 0.0)
            out[name] = {"lut": lut, "ccs": ccs, "other": 1.0 - lut - ccs}
        return out

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig11a_breakdown",
        format_table(
            ["model", "LUT", "CCS", "LUT-NN total", "other"],
            [[m, f"{s['lut']:.1%}", f"{s['ccs']:.1%}",
              f"{s['lut'] + s['ccs']:.1%}", f"{s['other']:.1%}"]
             for m, s in shares.items()],
        ),
    )

    for name, s in shares.items():
        lutnn = s["lut"] + s["ccs"]
        # Paper: 73.7%-79.4% LUT-NN share; allow a band around it.
        assert 0.6 < lutnn < 0.95, name
        # LUT operator dominates the LUT-NN portion (paper: 69.9%-76.1%).
        assert s["lut"] / lutnn > 0.6, name
        # Paper: LUT op alone is 51.5%-60.4% of total; allow scale drift.
        assert 0.45 < s["lut"] < 0.80, name


def test_fig11b_layer_wise_speedup(benchmark, report, pimdl_reports):
    cpu = HostEngine(cpu_server_int8())

    def run():
        out = {}
        for cfg in MODELS:
            cpu_ops = cpu.run(cfg).per_operator()
            pd_ops = pimdl_reports[cfg.name].per_operator()
            out[cfg.name] = {
                layer: cpu_ops[layer]
                / (pd_ops[f"{layer}/CCS"] + pd_ops[f"{layer}/LUT"])
                for layer in ("QKV", "O", "FFN1", "FFN2")
            }
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {"QKV": 1.61, "O": 0.99, "FFN1": 1.78, "FFN2": 2.38}
    rows = []
    for layer in ("QKV", "O", "FFN1", "FFN2"):
        gm = geomean(speedups[m][layer] for m in speedups)
        rows.append([layer, f"{gm:.2f}", paper[layer]])
    report("fig11b_layerwise", format_table(["layer", "measured_geomean", "paper"], rows))

    geomeans = {layer: geomean(speedups[m][layer] for m in speedups)
                for layer in paper}
    # O projection (smallest layer) gains the least — the paper's key
    # qualitative finding for Fig. 11-(b).
    assert geomeans["O"] == min(geomeans.values())
    # Overall geomean near the paper's 1.81x.
    overall = geomean(v for m in speedups for v in speedups[m].values())
    assert 1.2 < overall < 2.6
    # Every layer within 2x of the paper's per-layer number.
    for layer, expected in paper.items():
        assert expected / 2 < geomeans[layer] < expected * 2
