#!/usr/bin/env python
"""Serve transformers on every platform: PIM-DL vs CPU/GPU/PIM-GEMM.

Regenerates the headline comparison of the paper on all three DRAM-PIM
products at once:

* UPMEM DDR4-PIM vs the CPU server (FP32/INT8) and GEMM-on-PIM (Fig. 10);
* HBM-PIM / AiM vs their native GEMV-sequence inference (Fig. 14) and an
  NVIDIA V100 (Fig. 15).

Run:  python examples/platform_comparison.py
"""

from repro.analysis import format_table, geomean
from repro.baselines import (
    a2_gpu,
    cpu_server_fp32,
    cpu_server_int8,
    v100_gpu,
    wimpy_host,
)
from repro.engine import GEMMPIMEngine, HostEngine, PIMDLEngine
from repro.pim import get_platform
from repro.workloads import bert_base, bert_large, opt_style, vit_huge


def ddr4_pim_comparison() -> None:
    platform = get_platform("upmem")
    host = wimpy_host()
    rows = []
    for cfg in (bert_base(), bert_large(), vit_huge()):
        engines = {
            "CPU FP32": HostEngine(cpu_server_fp32()),
            "CPU INT8": HostEngine(cpu_server_int8()),
            "PIM GEMM": GEMMPIMEngine(platform, host),
            "PIM-DL V=2": PIMDLEngine(platform, host, v=2, ct=16),
            "PIM-DL V=4": PIMDLEngine(platform, host, v=4, ct=16),
        }
        reports = {name: engine.run(cfg) for name, engine in engines.items()}
        rows.append(
            [cfg.name]
            + [f"{reports[k].total_s:.1f}" for k in engines]
            + [f"{reports[k].energy.total_j / 1e3:.1f}" for k in engines]
        )
    headers = (
        ["model"]
        + [f"{k} (s)" for k in ("CPU FP32", "CPU INT8", "PIM GEMM", "PIM-DL V=2", "PIM-DL V=4")]
        + [f"{k} (kJ)" for k in ("CPU FP32", "CPU INT8", "PIM GEMM", "PIM-DL V=2", "PIM-DL V=4")]
    )
    print("UPMEM DDR4-PIM platform (batch 64 / seq 512; ViT-huge batch 128):")
    print(format_table(headers, rows))


def simulated_pim_comparison() -> None:
    gpu = HostEngine(v100_gpu())
    rows = []
    for name in ("hbm-pim", "aim"):
        platform = get_platform(name)
        host = a2_gpu()
        vs_native, vs_gpu = [], []
        for batch in (1, 2, 4, 8):
            for hidden in (1024, 2048, 2560, 4096):
                cfg = opt_style(hidden, seq_len=128, batch_size=batch)
                pimdl = PIMDLEngine(platform, host, v=4, ct=16).run(cfg).total_s
                native = GEMMPIMEngine(platform, host).run(cfg).total_s
                vs_native.append(native / pimdl)
                vs_gpu.append(gpu.run(cfg).total_s / pimdl)
        rows.append([
            platform.name,
            f"{geomean(vs_native):.1f}x",
            f"{geomean(vs_gpu):.2f}x",
            f"{max(vs_gpu):.2f}x",
        ])
    print("\nSimulated HBM-PIM / AiM platforms (seq 128, batch 1-8, OPT dims):")
    print(format_table(
        ["platform", "vs native PIM inference (geomean)",
         "vs V100 (geomean)", "vs V100 (best)"],
        rows,
    ))


def main() -> None:
    ddr4_pim_comparison()
    simulated_pim_comparison()


if __name__ == "__main__":
    main()
