#!/usr/bin/env python
"""Drive the DRAM-PIM simulator directly: one LUT kernel, end to end.

Shows the low-level hardware path without the engine layer: build real
codebooks and tables from data, run closest-centroid search on the "host",
partition the kernel across PEs with a tuned mapping, execute it on the
event-level simulator, and check the distributed result bit-for-bit against
the functional reference.

Run:  python examples/pim_simulation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    Codebooks,
    LUTShape,
    build_lut,
    closest_centroid_search,
    lut_lookup,
)
from repro.mapping import AutoTuner
from repro.pim import PIMSimulator, get_platform


def main() -> None:
    rng = np.random.default_rng(0)

    # A LUT workload: 4096 activation rows, H=256 at V=4, F=512, CT=16.
    shape = LUTShape(n=4096, h=256, f=512, v=4, ct=16)
    activations = rng.normal(size=(shape.n, shape.h))
    weight = rng.normal(size=(shape.h, shape.f))

    # Conversion: cluster sub-vectors, pre-compute the tables.
    codebooks = Codebooks.from_activations(activations, v=shape.v, ct=shape.ct,
                                           rng=rng)
    lut = build_lut(codebooks, weight)
    print(f"codebooks: {codebooks.centroids.shape}, LUT: {lut.shape} "
          f"({lut.nbytes / 1e6:.1f} MB fp64 reference)")

    # Host-side CCS -> index matrix.
    indices = closest_centroid_search(activations, codebooks)
    print(f"index matrix: {indices.shape} ({indices.nbytes / 1e3:.0f} KB)")

    # Tune and simulate on each platform.
    rows = []
    for name in ("upmem", "hbm-pim", "aim"):
        platform = get_platform(name)
        tuned = AutoTuner(platform).tune(shape)
        simulator = PIMSimulator(platform)
        rep = simulator.run(shape, tuned.mapping, indices=indices, lut=lut)

        reference = lut_lookup(indices, lut)
        exact = np.allclose(rep.output, reference)
        rows.append([
            platform.name,
            rep.num_pes,
            tuned.mapping.load_scheme,
            f"{rep.distribution_s * 1e6:.0f}",
            f"{rep.kernel_s * 1e6:.0f}",
            f"{rep.gather_s * 1e6:.0f}",
            f"{rep.total_s * 1e6:.0f}",
            "bit-exact" if exact else "MISMATCH",
        ])
        assert exact

    print()
    print(format_table(
        ["platform", "PEs", "scheme", "distribute_us", "kernel_us",
         "gather_us", "total_us", "vs reference"],
        rows,
    ))

    # How good is the approximation relative to the exact GEMM?
    approx = lut_lookup(indices, lut)
    exact = activations @ weight
    rel = np.linalg.norm(approx - exact) / np.linalg.norm(exact)
    print(f"\nLUT-NN approximation error vs exact GEMM: {rel:.3f} "
          "(random activations are the worst case; calibrated real "
          "activations cluster far better)")


if __name__ == "__main__":
    main()
