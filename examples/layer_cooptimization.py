#!/usr/bin/env python
"""Per-layer (V, CT) co-optimization: error-aware configuration planning.

The paper uses one (V, CT) pair for the whole model.  Layers tolerate
approximation very differently, though — this example measures each layer's
error/latency frontier, plans a mixed per-layer assignment under a latency
budget, converts the model with it, and compares deployed accuracy against
the uniform configurations at matched latency.

Run:  python examples/layer_cooptimization.py
"""

import numpy as np

from repro.analysis import ErrorProbe, format_table, worst_layers
from repro.baselines import wimpy_host
from repro.core import (
    ELUTNNCalibrator,
    convert_with_plan,
    evaluate_accuracy,
    freeze_all_luts,
    measure_candidates,
    plan_layer_configs,
    set_lut_mode,
    uniform_plan,
)
from repro.nn import TextClassifier
from repro.pim import get_platform
from repro.workloads import SyntheticTextTask, sample_batches, train_classifier

CANDIDATES = ((2, 8), (4, 8), (4, 4), (8, 4))


def build_model():
    return TextClassifier(vocab_size=64, max_seq_len=16, num_classes=8,
                          dim=32, num_layers=4, num_heads=4,
                          rng=np.random.default_rng(3))


def main() -> None:
    task = SyntheticTextTask(vocab_size=64, seq_len=16, num_classes=8,
                             peak_mass=0.55, seed=1)
    train = sample_batches(task, 768, 32)
    test = sample_batches(task, 384, 64)
    calib = sample_batches(task, 128, 32)
    calib_inputs = [x for x, _ in calib]

    print("training the substrate model ...")
    model = build_model()
    train_classifier(model, train, epochs=8, lr=2e-3)
    state = model.state_dict()
    original = evaluate_accuracy(model, test)
    print(f"original accuracy: {original:.3f}\n")

    # ------------------------------------------------------------------
    # Step 1: measure every layer's error/latency frontier.
    # ------------------------------------------------------------------
    platform = get_platform("upmem")
    host = wimpy_host()
    frontier = measure_candidates(
        model, calib_inputs, platform=platform, host=host,
        serving_rows=8192, candidates=CANDIDATES, rng=np.random.default_rng(5),
    )
    sample_name = sorted(frontier)[0]
    print(f"frontier of {sample_name}:")
    print(format_table(
        ["V", "CT", "rel. output error", "latency_ms"],
        [[p.v, p.ct, f"{p.error:.3f}", f"{p.latency_s * 1e3:.2f}"]
         for p in frontier[sample_name]],
    ))

    # ------------------------------------------------------------------
    # Step 2: plan a mixed assignment at the uniform V=4/CT=4 latency.
    # ------------------------------------------------------------------
    uniform = uniform_plan(frontier, v=4, ct=4)
    plan = plan_layer_configs(frontier, latency_budget_s=uniform.predicted_latency_s)
    mixed = sorted(set(plan.assignment.values()))
    print(f"\nplanned per-layer configs (budget = uniform V=4/CT=4 latency "
          f"{uniform.predicted_latency_s * 1e3:.1f} ms): {mixed}")
    print(f"predicted error: planned {plan.predicted_error:.3f} "
          f"vs uniform {uniform.predicted_error:.3f}")

    # ------------------------------------------------------------------
    # Step 3: convert + calibrate with each assignment, compare deployed.
    # ------------------------------------------------------------------
    def deploy(assignment, label):
        candidate = build_model()
        candidate.load_state_dict(state)
        convert_with_plan(candidate, calib_inputs, assignment,
                          rng=np.random.default_rng(7))
        ELUTNNCalibrator(beta=10.0, lr=1e-3).calibrate(candidate, calib, epochs=6)
        set_lut_mode(candidate, "lut")
        freeze_all_luts(candidate, quantize_int8=True)
        acc = evaluate_accuracy(candidate, test)
        print(f"  {label}: deployed accuracy {acc:.3f}")
        return candidate

    print("\ndeploying:")
    deploy(uniform.assignment, "uniform V=4/CT=4 ")
    planned_model = deploy(plan.assignment, "planned per-layer")

    # ------------------------------------------------------------------
    # Step 4: diagnose the deployed model's residual error per layer.
    # ------------------------------------------------------------------
    reports = ErrorProbe(planned_model).run(calib_inputs[:2])
    print("\nworst remaining layers by output error:")
    print(format_table(
        ["layer", "act err", "out err", "codebook util"],
        [[r.name, f"{r.activation_error:.3f}", f"{r.output_error:.3f}",
          f"{r.codebook_utilization:.0%}"] for r in worst_layers(reports, k=3)],
    ))


if __name__ == "__main__":
    main()
