#!/usr/bin/env python
"""Decode-phase (GPT-style) serving: where does LUT-NN help generation?

The paper's motivation (§1-2): HBM-PIM and AiM already accelerate
single-batch GPT inference because decode is GEMV-dominated; PIM-DL extends
DRAM-PIMs to the batched GEMM regime.  This example closes the loop by
applying LUT-NN *to the decode phase itself* and comparing per-token cost:

* GEMV decode on the PIM (the products' native mode);
* LUT-NN decode on the PIM (tables resident, per-token gathers);
* FP32 decode on a V100.

It also demonstrates a functional DecoderLM generating text before and
after LUT-NN conversion.

Run:  python examples/gpt_decode.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import a2_gpu, v100_gpu
from repro.core import convert_to_lut_nn, freeze_all_luts, set_lut_mode
from repro.engine import GEMVDecodeEngine, HostDecodeEngine, LUTDecodeEngine
from repro.nn import DecoderLM
from repro.pim import get_platform
from repro.workloads import opt_style


def serving_comparison() -> None:
    rows = []
    for hidden in (1024, 2048, 4096):
        config = opt_style(hidden, seq_len=128, batch_size=1)
        for batch in (1, 8):
            gemv = GEMVDecodeEngine(get_platform("aim"), a2_gpu()).run(
                config, batch_size=batch, context_len=512
            )
            lut = LUTDecodeEngine(get_platform("aim"), a2_gpu(), v=4, ct=16).run(
                config, batch_size=batch, context_len=512
            )
            gpu = HostDecodeEngine(v100_gpu()).run(
                config, batch_size=batch, context_len=512
            )
            rows.append([
                hidden, batch,
                f"{gemv.tokens_per_s:,.0f}",
                f"{lut.tokens_per_s:,.0f}",
                f"{gpu.tokens_per_s:,.0f}",
                f"{gemv.token_latency_s / lut.token_latency_s:.2f}x",
            ])
    print("Decode throughput on AiM (tokens/s) and LUT-NN gain over GEMV:")
    print(format_table(
        ["hidden", "batch", "GEMV-PIM", "LUT-PIM", "V100 FP32", "LUT vs GEMV"],
        rows,
    ))


def functional_generation() -> None:
    rng = np.random.default_rng(0)
    model = DecoderLM(vocab_size=32, max_seq_len=16, dim=32,
                      num_layers=2, num_heads=4, rng=rng)
    prompt = np.array([[3, 7, 11]])
    before = model.generate(prompt, new_tokens=6)

    # Convert the decoder's linear layers to LUT-NN (k-means codebooks —
    # a trained model would get an eLUT-NN calibration pass here).
    calib = rng.integers(0, 32, size=(64, 12))
    convert_to_lut_nn(model, [calib], v=4, ct=8, rng=rng)
    set_lut_mode(model, "lut")
    freeze_all_luts(model, quantize_int8=True)
    after = model.generate(prompt, new_tokens=6)

    print("\nFunctional generation (untrained 2-layer decoder, demo only):")
    print(f"  original model : {before[0].tolist()}")
    print(f"  LUT-NN model   : {after[0].tolist()}")
    match = int((before == after).sum() - prompt.size)
    print(f"  ({match}/6 continuation tokens identical after INT8 LUT conversion)")


def main() -> None:
    serving_comparison()
    functional_generation()


if __name__ == "__main__":
    main()
