#!/usr/bin/env python
"""Explore the LUT-NN hardware mapping space for one linear layer.

Uses the paper's Fig. 13 workload — BERT-large's FFN1 at V=4/CT=16, i.e.
(N, CB, CT, F) = (32768, 256, 16, 4096) — to show:

* what the PIM-DL Auto-Tuner (Algorithm 1) picks on each DRAM-PIM platform;
* how the three LUT load schemes of Fig. 9 compare at their best;
* how closely the analytical model (Eqs. 3-10) tracks the event-level
  simulator ("measured" latency).

Run:  python examples/autotune_mapping.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import LUTShape
from repro.mapping import AutoTuner, enumerate_micro_kernels, estimate_latency
from repro.pim import PIMSimulator, get_platform

SHAPE = LUTShape(n=32768, h=1024, f=4096, v=4, ct=16)


def tuner_on_every_platform() -> None:
    rows = []
    for name in ("upmem", "hbm-pim", "aim"):
        platform = get_platform(name)
        result = AutoTuner(platform).tune(SHAPE)
        m = result.mapping
        rows.append([
            platform.name,
            f"{m.n_s_tile}x{m.f_s_tile}",
            f"{m.n_m_tile}/{m.f_m_tile}/{m.cb_m_tile}",
            m.load_scheme,
            "->".join(m.traversal),
            f"{result.cost * 1e3:.2f}",
        ])
    print("Auto-tuner picks for BERT-large FFN1 (N=32768, CB=256, CT=16, F=4096):")
    print(format_table(
        ["platform", "sub-LUT tile", "m-tiles n/f/cb", "scheme", "traversal", "latency_ms"],
        rows,
    ))


def best_mapping_per_scheme(platform) -> None:
    best = {}
    for n_s, f_s in [(1024, 128), (2048, 64), (16384, 8), (512, 256)]:
        for mapping in enumerate_micro_kernels(SHAPE, n_s, f_s, platform,
                                               max_points=3000):
            cost = estimate_latency(SHAPE, mapping, platform).total
            if mapping.load_scheme not in best or cost < best[mapping.load_scheme][0]:
                best[mapping.load_scheme] = (cost, mapping)

    simulator = PIMSimulator(platform)
    rows = []
    for scheme, (cost, mapping) in sorted(best.items()):
        simulated = simulator.run(SHAPE, mapping).total_s
        error = abs(cost - simulated) / simulated
        rows.append([
            scheme,
            f"{mapping.n_s_tile}x{mapping.f_s_tile}",
            f"{cost * 1e3:.2f}",
            f"{simulated * 1e3:.2f}",
            f"{error:.1%}",
        ])
    print(f"\nBest mapping per LUT load scheme on {platform.name}"
          " (model vs simulator):")
    print(format_table(
        ["scheme", "sub-LUT tile", "model_ms", "simulated_ms", "model error"], rows,
    ))


def main() -> None:
    np.set_printoptions(precision=3)
    tuner_on_every_platform()
    best_mapping_per_scheme(get_platform("upmem"))


if __name__ == "__main__":
    main()
