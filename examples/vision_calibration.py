#!/usr/bin/env python
"""Calibrator shoot-out on a vision transformer (paper Table 5 scenario).

Trains a ViT-style patch classifier on a CIFAR-like synthetic task, replaces
all encoder linear layers with LUTs under the paper's §6.2 protocol (random
centroid initialization), and compares three calibration strategies:

* no calibration (k-means codebooks only — LUT-NN conversion without any
  fine-tuning);
* the baseline LUT-NN calibrator (Gumbel-softmax soft assignment, [84]);
* eLUT-NN (reconstruction loss + straight-through estimator, the paper).

Run:  python examples/vision_calibration.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    BaselineLUTNNCalibrator,
    ELUTNNCalibrator,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    set_lut_mode,
)
from repro.nn import PatchClassifier
from repro.workloads import SyntheticPatchTask, sample_batches, train_classifier


def build_model() -> PatchClassifier:
    return PatchClassifier(
        num_patches=9, patch_dim=12, num_classes=6,
        dim=32, num_layers=4, num_heads=4, rng=np.random.default_rng(7),
    )


def main() -> None:
    task = SyntheticPatchTask(num_patches=9, patch_dim=12, num_classes=6,
                              noise=0.45, seed=4)
    train = sample_batches(task, 1024, 32)
    test = sample_batches(task, 512, 64)
    calib = sample_batches(task, 128, 32)

    print("training the ViT-style substrate model ...")
    model = build_model()
    train_classifier(model, train, epochs=12, lr=3e-3)
    original = evaluate_accuracy(model, test)
    state = model.state_dict()
    print(f"original accuracy: {original:.3f}")

    def deploy(calibrator, centroid_init: str, label: str) -> float:
        candidate = build_model()
        candidate.load_state_dict(state)
        convert_to_lut_nn(candidate, [x for x, _ in calib], v=4, ct=4,
                          rng=np.random.default_rng(11), centroid_init=centroid_init)
        if calibrator is not None:
            print(f"calibrating: {label} ...")
            calibrator.calibrate(candidate, calib, epochs=8)
        set_lut_mode(candidate, "lut")
        freeze_all_luts(candidate, quantize_int8=True)
        return evaluate_accuracy(candidate, test)

    results = [
        ["original (no conversion)", f"{original:.3f}"],
        ["k-means conversion, no calibration",
         f"{deploy(None, 'kmeans', 'none'):.3f}"],
        ["baseline LUT-NN (Gumbel-softmax)",
         f"{deploy(BaselineLUTNNCalibrator(lr=1e-3), 'random', 'baseline'):.3f}"],
        ["eLUT-NN (recon loss + STE)",
         f"{deploy(ELUTNNCalibrator(beta=10.0, lr=1e-3), 'random', 'eLUT-NN'):.3f}"],
    ]
    print()
    print(format_table(["configuration", "deployed accuracy"], results))


if __name__ == "__main__":
    main()
