#!/usr/bin/env python
"""Quickstart: convert a transformer to LUT-NN and deploy it on a DRAM-PIM.

Walks the full PIM-DL pipeline of the paper's Fig. 5 in five steps:

1. Train a small transformer text classifier on a synthetic task
   (standing in for a pre-trained BERT checkpoint).
2. Convert every encoder linear layer to a ``LUTLinear`` (codebooks +
   pre-computable tables) using a small calibration sample.
3. Calibrate with the eLUT-NN algorithm (reconstruction loss + STE).
4. Freeze INT8 look-up tables and switch the model to deployment mode.
5. Auto-tune the LUT kernels for UPMEM PIM-DIMMs and estimate the
   end-to-end serving latency vs a GEMM-based PIM offload.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    ELUTNNCalibrator,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    lut_layers,
    set_lut_mode,
)
from repro.mapping import AutoTuner
from repro.nn import TextClassifier
from repro.pim import get_platform
from repro.workloads import SyntheticTextTask, sample_batches, train_classifier


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. A "pre-trained" model: train a small classifier from scratch.
    # ------------------------------------------------------------------
    task = SyntheticTextTask(vocab_size=64, seq_len=16, num_classes=6,
                             peak_mass=0.6, seed=1)
    train = sample_batches(task, 768, 32)
    test = sample_batches(task, 384, 64)
    model = TextClassifier(vocab_size=64, max_seq_len=16, num_classes=6,
                           dim=32, num_layers=4, num_heads=4, rng=rng)
    print("training the substrate model ...")
    train_classifier(model, train, epochs=8, lr=2e-3)
    original_acc = evaluate_accuracy(model, test)
    print(f"original model accuracy: {original_acc:.3f}")

    # ------------------------------------------------------------------
    # 2. LUT-NN conversion: replace all encoder linears with LUTLinear.
    # ------------------------------------------------------------------
    calib = sample_batches(task, 128, 32)
    replaced = convert_to_lut_nn(
        model, [tokens for tokens, _ in calib], v=4, ct=8, rng=rng
    )
    print(f"converted {len(replaced)} linear layers to LUT-NN:")
    for name, layer in replaced[:4]:
        print(f"  {name}: {layer}")

    # ------------------------------------------------------------------
    # 3. eLUT-NN calibration (paper Eq. 1: model loss + beta * recon loss).
    # ------------------------------------------------------------------
    print("calibrating with eLUT-NN ...")
    result = ELUTNNCalibrator(beta=10.0, lr=1e-3).calibrate(model, calib, epochs=6)
    print(f"calibration: {result.steps} steps, "
          f"final loss {result.final_loss:.4f}, "
          f"reconstruction {result.reconstruction_history[-1]:.5f}")

    # ------------------------------------------------------------------
    # 4. Deployment: freeze INT8 LUTs and evaluate the deployed model.
    # ------------------------------------------------------------------
    set_lut_mode(model, "lut")
    freeze_all_luts(model, quantize_int8=True)
    deployed_acc = evaluate_accuracy(model, test)
    print(f"deployed LUT-NN accuracy (INT8 tables): {deployed_acc:.3f} "
          f"(original {original_acc:.3f})")

    # ------------------------------------------------------------------
    # 5. Hardware mapping: tune each layer's LUT kernel for UPMEM.
    # ------------------------------------------------------------------
    platform = get_platform("upmem")
    tuner = AutoTuner(platform)
    serving_tokens = 8192  # batch 16 x seq 512, say
    rows = []
    for name, layer in lut_layers(model):
        shape = layer.lut_shape(n=serving_tokens)
        tuned = tuner.tune(shape)
        rows.append([
            name,
            f"({shape.n},{shape.cb},{shape.ct},{shape.f})",
            tuned.mapping.load_scheme,
            f"{tuned.mapping.n_s_tile}x{tuned.mapping.f_s_tile}",
            f"{tuned.cost * 1e3:.2f}",
        ])
    print("\nauto-tuned LUT kernel mappings on", platform.name)
    print(format_table(
        ["layer", "(N,CB,CT,F)", "scheme", "sub-LUT tile", "latency_ms"], rows
    ))


if __name__ == "__main__":
    main()
