"""Continuous-batching request scheduler over the generation cost model.

:mod:`repro.engine.queueing` answers "what happens under load" for a
single-server FIFO with one fixed service time.  Real LLM serving does not
work that way: requests with different prompt and generation lengths share
one engine, new arrivals are *admitted into the running batch* while
earlier requests are still decoding, and every decode step's cost depends
on the batch size and context lengths at that instant.  This module is a
discrete-event simulator of that discipline (iteration-level scheduling, as
in Orca/vLLM) driving the :class:`~repro.engine.serving.GenerationServer`
cost model:

* requests carry ``(arrival time, prompt_len, generate_len, batch hint)``;
* an admission policy caps the running batch by sequence count and total
  context tokens, with a bounded wait queue (overflow rejects);
* each scheduler step optionally prefills newly admitted prompts (whole
  prompts, or ``prefill_chunk``-token chunks interleaved with decoding)
  and runs one decode iteration for every in-flight sequence;
* decode iterations are re-costed through the server's
  :class:`~repro.engine.decode.LUTDecodeEngine` at the step's *actual*
  effective batch size and mean context length — not the single
  average-context approximation ``GenerationServer.run`` uses for a lone
  request;
* per-request TTFT / TPOT / end-to-end latencies, SLO goodput, and the
  batch-occupancy timeline come out the other end.

Everything is instrumented through :mod:`repro.obs` (``scheduler.*``
counters/histograms/series, a span per scheduler step) and is compatible
with :class:`~repro.resilience.recovery.RecoveryManager`: a resilient
server's engines run their recovery ladder inside the cost model, and the
run-level degradation is accounted through the ledger's exclusive request
scope (at the batch level — per-request slicing is unsound once requests
interleave, which the ledger itself enforces).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..obs.metrics import Histogram
from ..resilience.recovery import DegradationSummary
from ..workloads.configs import TransformerConfig
from .queueing import generate_arrivals
from .serving import GenerationServer


@dataclass(frozen=True)
class Request:
    """One generation request in the arrival stream.

    ``batch`` is the request's batch hint: the number of sequences it
    bundles (a client-side batched call).  It occupies ``batch`` slots of
    the running batch and generates ``batch * generate_len`` tokens.

    ``session`` is an optional client-session tag.  The single-node
    scheduler ignores it; the cluster router's session-affinity policy
    (:mod:`repro.cluster.routing`) keeps requests of one session on one
    replica.
    """

    request_id: int
    arrival_s: float
    prompt_len: int
    generate_len: int
    batch: int = 1
    session: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.prompt_len <= 0:
            raise ValueError(f"prompt_len must be positive, got {self.prompt_len}")
        if self.generate_len < 0:
            raise ValueError("generate_len must be non-negative")
        if self.batch <= 0:
            raise ValueError(f"batch must be positive, got {self.batch}")

    @property
    def total_context(self) -> int:
        """Peak KV-cache footprint in tokens (all sequences, full length)."""
        return self.batch * (self.prompt_len + self.generate_len)


@dataclass(frozen=True)
class SchedulerPolicy:
    """Admission + batching policy of the scheduler.

    max_batch_size:
        Sequences decoding concurrently (sum of admitted batch hints).
    max_context_tokens:
        Cap on the running batch's peak KV footprint
        (:attr:`Request.total_context` summed over admitted requests).
    max_queue_len:
        Bounded wait queue; arrivals beyond it are rejected.
    chunked_prefill:
        When True, prompts prefill ``prefill_chunk`` tokens per step,
        interleaved with decode iterations of in-flight requests; when
        False (default) an admitted prompt prefills in one step.
    slo_ttft_s / slo_e2e_s:
        Optional service-level objectives; completed requests meeting both
        count toward :attr:`ScheduleResult.goodput_rps`.
    """

    max_batch_size: int = 8
    max_context_tokens: int = 1 << 20
    max_queue_len: int = 1024
    chunked_prefill: bool = False
    prefill_chunk: int = 128
    slo_ttft_s: Optional[float] = None
    slo_e2e_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_context_tokens <= 0:
            raise ValueError("max_context_tokens must be positive")
        if self.max_queue_len <= 0:
            raise ValueError("max_queue_len must be positive")
        if self.prefill_chunk <= 0:
            raise ValueError("prefill_chunk must be positive")

    def fifo(self) -> "SchedulerPolicy":
        """This policy restricted to the single-server FIFO discipline."""
        return replace(self, max_batch_size=1, chunked_prefill=False)


@dataclass(frozen=True)
class RequestStats:
    """Per-request outcome of one scheduler run."""

    request_id: int
    arrival_s: float
    prompt_len: int
    generate_len: int
    batch: int
    rejected: bool = False
    admitted_s: float = 0.0
    prefill_done_s: float = 0.0
    first_token_s: float = 0.0
    finished_s: float = 0.0

    @property
    def queue_wait_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Arrival to first generated token (to prefill end when gen=0)."""
        first = self.first_token_s if self.generate_len else self.prefill_done_s
        return first - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token over the decode phase."""
        if self.generate_len == 0:
            return 0.0
        return (self.finished_s - self.prefill_done_s) / self.generate_len

    @property
    def e2e_s(self) -> float:
        return self.finished_s - self.arrival_s


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate outcome of one scheduler run over a request stream."""

    policy: SchedulerPolicy
    completed: int
    rejected: int
    steps: int
    makespan_s: float
    busy_s: float
    prefill_tokens: int
    generated_tokens: int
    ttft_p50_s: float
    ttft_p95_s: float
    ttft_p99_s: float
    tpot_p50_s: float
    tpot_p95_s: float
    tpot_p99_s: float
    e2e_p50_s: float
    e2e_p95_s: float
    e2e_p99_s: float
    mean_e2e_s: float
    mean_batch_occupancy: float
    peak_batch_occupancy: int
    #: (time, sequences in the running batch) after every step.
    occupancy_timeline: Tuple[Tuple[float, float], ...]
    requests: Tuple[RequestStats, ...]
    #: Run-level degradation slice when the server has an active
    #: RecoveryManager (batch-level accounting); None otherwise.
    degradation: Optional[DegradationSummary] = None
    #: Modeled phase attribution of the busy time, keyed
    #: ``"<request class>/<phase>"`` where the class is ``prefill`` or
    #: ``decode`` — e.g. ``"decode/reduce"``.  Sums to ``busy_s`` when
    #: the underlying engines report phases for every step.  Disaggregated
    #: runs (:mod:`repro.engine.disagg`) add a top-level ``kv_transfer``
    #: phase (sibling to the cluster's ``shard_transfer``) and guarantee
    #: the partition exactly.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Placement policy name when produced by the disaggregated pool
    #: scheduler (:class:`~repro.engine.disagg.DisaggScheduler`);
    #: ``None`` for single-pool runs.
    placement: Optional[str] = None
    #: KV-cache migrations charged (prefill pool -> decode pool).
    kv_transfers: int = 0
    #: Seconds spent migrating KV caches between pools; equals
    #: ``phase_seconds["kv_transfer"]`` when any migration happened.
    kv_transfer_s: float = 0.0
    #: Busy seconds per pool.  Zero for single-pool runs (``busy_s`` then
    #: carries the whole engine); for disaggregated runs
    #: ``prefill_pool_busy_s + decode_pool_busy_s + kv_transfer_s``
    #: equals ``busy_s``.
    prefill_pool_busy_s: float = 0.0
    decode_pool_busy_s: float = 0.0
    #: ``(lane, label, start_s, end_s)`` busy segments for the per-pool
    #: Chrome-trace lanes; lanes are ``prefill_pool`` / ``kv_transfer`` /
    #: ``decode_pool``.  Empty for single-pool runs.
    pool_timeline: Tuple[Tuple[str, str, float, float], ...] = ()

    @property
    def utilization(self) -> float:
        """Fraction of the makespan the engine was executing steps."""
        return self.busy_s / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def generated_tokens_per_s(self) -> float:
        if self.generated_tokens == 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def goodput_rps(self) -> float:
        """Completed requests meeting the policy's SLOs, per second.

        Without SLOs in the policy this equals :attr:`throughput_rps`;
        rejected requests never count.
        """
        if self.makespan_s <= 0:
            return 0.0
        return self.slo_attained / self.makespan_s

    @property
    def slo_attained(self) -> int:
        """Completed requests that met both SLOs (all, if none set)."""
        good = 0
        for r in self.requests:
            if r.rejected:
                continue
            if self.policy.slo_ttft_s is not None and r.ttft_s > self.policy.slo_ttft_s:
                continue
            if self.policy.slo_e2e_s is not None and r.e2e_s > self.policy.slo_e2e_s:
                continue
            good += 1
        return good

    def sojourn_times(self) -> List[float]:
        """End-to-end latencies of completed requests, in request order."""
        return [r.e2e_s for r in self.requests if not r.rejected]

    def phase_attribution(self, request_class: Optional[str] = None):
        """Bottleneck attribution of the busy time, per request class.

        ``request_class`` restricts to ``"prefill"`` or ``"decode"``
        (phase names lose their prefix); ``None`` aggregates both classes
        into plain phase names.  Returns a
        :class:`~repro.obs.profiler.BottleneckReport`.
        """
        from ..obs.profiler import BottleneckReport

        phases: Dict[str, float] = {}
        for key, seconds in self.phase_seconds.items():
            cls, _, phase = key.partition("/")
            if request_class is not None:
                if cls != request_class:
                    continue
            phase = phase or cls
            phases[phase] = phases.get(phase, 0.0) + seconds
        return BottleneckReport.from_phases(phases)

    def to_jsonable(self) -> dict:
        return {
            "completed": self.completed,
            "rejected": self.rejected,
            "steps": self.steps,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "prefill_tokens": self.prefill_tokens,
            "generated_tokens": self.generated_tokens,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "generated_tokens_per_s": self.generated_tokens_per_s,
            "ttft_s": {"p50": self.ttft_p50_s, "p95": self.ttft_p95_s,
                       "p99": self.ttft_p99_s},
            "tpot_s": {"p50": self.tpot_p50_s, "p95": self.tpot_p95_s,
                       "p99": self.tpot_p99_s},
            "e2e_s": {"p50": self.e2e_p50_s, "p95": self.e2e_p95_s,
                      "p99": self.e2e_p99_s, "mean": self.mean_e2e_s},
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "peak_batch_occupancy": self.peak_batch_occupancy,
            "phase_seconds": dict(self.phase_seconds),
            "policy": {
                "max_batch_size": self.policy.max_batch_size,
                "max_context_tokens": self.policy.max_context_tokens,
                "max_queue_len": self.policy.max_queue_len,
                "chunked_prefill": self.policy.chunked_prefill,
                "prefill_chunk": self.policy.prefill_chunk,
                "slo_ttft_s": self.policy.slo_ttft_s,
                "slo_e2e_s": self.policy.slo_e2e_s,
            },
            "degradation": (
                self.degradation.to_jsonable() if self.degradation else None
            ),
            "placement": self.placement,
            "disagg": (
                {
                    "kv_transfers": self.kv_transfers,
                    "kv_transfer_s": self.kv_transfer_s,
                    "prefill_pool_busy_s": self.prefill_pool_busy_s,
                    "decode_pool_busy_s": self.decode_pool_busy_s,
                }
                if self.placement is not None
                else None
            ),
        }


class EngineCostModel:
    """Memoized prefill/decode-step costing through a GenerationServer.

    Decode contexts are quantized up to ``context_bucket`` tokens so the
    number of distinct engine evaluations stays bounded while still
    tracking the growing KV cache step by step; prefill chunks are costed
    exactly (the set of distinct chunk sizes is small).
    """

    def __init__(
        self,
        server: GenerationServer,
        config: TransformerConfig,
        context_bucket: int = 32,
    ):
        if context_bucket <= 0:
            raise ValueError("context_bucket must be positive")
        self.server = server
        self.config = config
        self.context_bucket = context_bucket
        self._prefill_cache: Dict[Tuple[int, int], float] = {}
        self._decode_cache: Dict[Tuple[int, int], float] = {}
        self._prefill_phases: Dict[Tuple[int, int], Dict[str, float]] = {}
        self._decode_phases: Dict[Tuple[int, int], Dict[str, float]] = {}

    def prefill_s(self, tokens: int, batch: int = 1) -> float:
        """Cost of prefilling ``tokens`` prompt tokens of one request."""
        key = (tokens, batch)
        if key not in self._prefill_cache:
            shaped = self.config.with_(seq_len=tokens, batch_size=batch)
            report = self.server.prefill_engine.run(shaped)
            self._prefill_cache[key] = report.total_s
            self._prefill_phases[key] = dict(
                getattr(report, "phase_seconds", {}) or {}
            )
        return self._prefill_cache[key]

    def prefill_phases(self, tokens: int, batch: int = 1) -> Dict[str, float]:
        """Phase attribution of :meth:`prefill_s` for the same arguments."""
        key = (tokens, batch)
        if key not in self._prefill_phases:
            self.prefill_s(tokens, batch)
        return self._prefill_phases.get(key, {})

    def _decode_key(self, batch_seqs: int, context_len: float) -> Tuple[int, int]:
        bucket = int(np.ceil(max(context_len, 1.0) / self.context_bucket))
        return (batch_seqs, bucket * self.context_bucket)

    def decode_step_s(self, batch_seqs: int, context_len: float) -> float:
        """Cost of one decode iteration for ``batch_seqs`` sequences.

        ``context_len`` is the batch's mean KV-cache length at this step.
        """
        key = self._decode_key(batch_seqs, context_len)
        if key not in self._decode_cache:
            report = self.server.decode_engine.run(
                self.config, batch_size=key[0], context_len=key[1]
            )
            self._decode_cache[key] = report.token_latency_s
            self._decode_phases[key] = dict(
                getattr(report, "phase_seconds", {}) or {}
            )
        return self._decode_cache[key]

    def decode_step_phases(
        self, batch_seqs: int, context_len: float
    ) -> Dict[str, float]:
        """Phase attribution of :meth:`decode_step_s` for the same arguments."""
        key = self._decode_key(batch_seqs, context_len)
        if key not in self._decode_phases:
            self.decode_step_s(batch_seqs, context_len)
        return self._decode_phases.get(key, {})


@dataclass
class _InFlight:
    """Mutable bookkeeping for one admitted request."""

    request: Request
    admitted_s: float
    prefilled: int = 0
    generated: int = 0
    prefill_done_s: Optional[float] = None
    first_token_s: Optional[float] = None
    #: Set at the end of the step that finished prefill; the request
    #: starts decoding on the *next* step.
    decode_ready: bool = False

    @property
    def context_len(self) -> int:
        return self.request.prompt_len + self.generated

    @property
    def prefill_remaining(self) -> int:
        return self.request.prompt_len - self.prefilled

    @property
    def done(self) -> bool:
        return self.prefilled >= self.request.prompt_len and (
            self.generated >= self.request.generate_len
        )


class RequestScheduler:
    """Discrete-event continuous-batching scheduler over one server.

    One scheduler instance can :meth:`run` many independent streams; the
    engine cost caches (and the server's tuner memos) persist across runs,
    so sweeps amortize the Auto-Tuner searches.
    """

    def __init__(
        self,
        server: GenerationServer,
        config: TransformerConfig,
        policy: Optional[SchedulerPolicy] = None,
        context_bucket: int = 32,
        name: Optional[str] = None,
    ):
        self.server = server
        self.config = config
        self.policy = policy or SchedulerPolicy()
        self.cost = EngineCostModel(server, config, context_bucket=context_bucket)
        #: Distinguishes this scheduler's ledger scope (and spans) when
        #: several schedulers — e.g. cluster replicas — share one server.
        self.name = name

    # ------------------------------------------------------------------
    # Admission policy
    # ------------------------------------------------------------------
    def _feasible(self, request: Request) -> bool:
        """Could this request ever be admitted, even to an empty batch?"""
        return (
            request.batch <= self.policy.max_batch_size
            and request.total_context <= self.policy.max_context_tokens
        )

    def _fits(self, request: Request, running: List[_InFlight]) -> bool:
        seqs = sum(f.request.batch for f in running)
        tokens = sum(f.request.total_context for f in running)
        return (
            seqs + request.batch <= self.policy.max_batch_size
            and tokens + request.total_context <= self.policy.max_context_tokens
        )

    # ------------------------------------------------------------------
    # FIFO reference costing
    # ------------------------------------------------------------------
    def fifo_service_time(self, request: Request) -> float:
        """The request's service time when it runs alone, unbatched.

        Full prefill followed by ``generate_len`` decode steps at the
        request's own (growing) context — exactly what a batch-1,
        unchunked scheduler executes, and the service time to feed
        :func:`~repro.engine.queueing.simulate_queue` for a FIFO
        comparison on equal footing.
        """
        total = self.cost.prefill_s(request.prompt_len, request.batch)
        for step in range(request.generate_len):
            total += self.cost.decode_step_s(
                request.batch, request.prompt_len + step
            )
        return total

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ScheduleResult:
        """Simulate the stream and return per-request + aggregate stats."""
        policy = self.policy
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))

        ledger = None
        scope = None
        if self.server.resilience is not None and self.server.resilience.active:
            ledger = self.server.resilience.ledger
            owner = (
                f"scheduler.run[{self.name}]" if self.name else "scheduler.run"
            )
            scope = ledger.open_request_scope(owner)

        waiting: deque = deque()
        running: List[_InFlight] = []
        stats: Dict[int, RequestStats] = {}
        rejected = 0
        steps = 0
        busy_s = 0.0
        prefill_tokens = 0
        generated_tokens = 0
        occupancy: List[Tuple[float, float]] = []
        occupancy_weighted = 0.0
        peak_occupancy = 0
        now = 0.0
        idx = 0
        phase_totals: Dict[str, float] = {}

        def add_phases(request_class: str, phases: Dict[str, float]) -> None:
            for phase, seconds in phases.items():
                key = f"{request_class}/{phase}"
                phase_totals[key] = phase_totals.get(key, 0.0) + seconds

        def finish(flight: _InFlight, when: float) -> None:
            nonlocal generated_tokens
            r = flight.request
            stats[r.request_id] = RequestStats(
                request_id=r.request_id,
                arrival_s=r.arrival_s,
                prompt_len=r.prompt_len,
                generate_len=r.generate_len,
                batch=r.batch,
                admitted_s=flight.admitted_s,
                prefill_done_s=flight.prefill_done_s,
                first_token_s=(
                    flight.first_token_s
                    if flight.first_token_s is not None
                    else flight.prefill_done_s
                ),
                finished_s=when,
            )
            registry.counter("scheduler.requests_completed").inc()
            registry.histogram("scheduler.ttft_s").observe(
                stats[r.request_id].ttft_s
            )
            registry.histogram("scheduler.e2e_s").observe(
                stats[r.request_id].e2e_s
            )
            if r.generate_len:
                registry.histogram("scheduler.tpot_s").observe(
                    stats[r.request_id].tpot_s
                )

        def reject(r: Request) -> None:
            nonlocal rejected
            rejected += 1
            stats[r.request_id] = RequestStats(
                request_id=r.request_id,
                arrival_s=r.arrival_s,
                prompt_len=r.prompt_len,
                generate_len=r.generate_len,
                batch=r.batch,
                rejected=True,
            )
            registry.counter("scheduler.requests_rejected").inc()

        try:
            with tracer.span(
                "scheduler.run",
                model=self.config.name,
                engine=self.server.name,
                requests=len(ordered),
                max_batch_size=policy.max_batch_size,
                chunked_prefill=policy.chunked_prefill,
            ) as run_span:
                while idx < len(ordered) or waiting or running:
                    # 1. Move arrivals into the bounded wait queue.
                    while idx < len(ordered) and ordered[idx].arrival_s <= now:
                        r = ordered[idx]
                        idx += 1
                        if not self._feasible(r):
                            reject(r)
                        elif len(waiting) >= policy.max_queue_len:
                            reject(r)
                        else:
                            waiting.append(r)
                            registry.counter("scheduler.requests_queued").inc()

                    # 2. Admit from the queue head while the batch has room.
                    while waiting and self._fits(waiting[0], running):
                        r = waiting.popleft()
                        running.append(_InFlight(request=r, admitted_s=now))
                        registry.counter("scheduler.requests_admitted").inc()

                    # 3. Idle: jump to the next arrival.
                    if not running:
                        if idx < len(ordered):
                            now = max(now, ordered[idx].arrival_s)
                            continue
                        break  # waiting is necessarily empty here

                    # 4. Execute one scheduler step (serialized on the one
                    #    PIM system: prefill work, then a decode iteration).
                    step_s = 0.0
                    step_prefill = 0
                    decoding = [f for f in running if f.decode_ready]
                    budget = (
                        policy.prefill_chunk
                        if policy.chunked_prefill
                        else float("inf")
                    )
                    prefilling: List[_InFlight] = []
                    with tracer.span("scheduler.step") as sp:
                        for f in running:
                            if f.prefill_remaining <= 0 or budget <= 0:
                                continue
                            take = f.prefill_remaining
                            if policy.chunked_prefill:
                                take = min(take, int(budget))
                            step_s += self.cost.prefill_s(take, f.request.batch)
                            add_phases(
                                "prefill",
                                self.cost.prefill_phases(take, f.request.batch),
                            )
                            f.prefilled += take
                            budget -= take
                            step_prefill += take * f.request.batch
                            prefilling.append(f)

                        seqs = sum(f.request.batch for f in decoding)
                        if seqs:
                            total_ctx = sum(
                                f.context_len * f.request.batch for f in decoding
                            )
                            step_s += self.cost.decode_step_s(
                                seqs, total_ctx / seqs
                            )
                            add_phases(
                                "decode",
                                self.cost.decode_step_phases(seqs, total_ctx / seqs),
                            )
                        sp.set_attribute("batch_seqs", seqs)
                        sp.set_attribute("prefill_tokens", step_prefill)
                        sp.set_attribute("model_seconds", step_s)

                    if step_s <= 0.0:
                        # Nothing runnable this step (all admitted requests
                        # are freshly prefilled, none decode-ready yet).
                        for f in running:
                            f.decode_ready = f.prefilled >= f.request.prompt_len
                        continue

                    now += step_s
                    busy_s += step_s
                    steps += 1
                    prefill_tokens += step_prefill

                    registry.counter("scheduler.steps").inc()
                    registry.counter("scheduler.prefill_tokens").inc(step_prefill)
                    registry.counter("scheduler.decode_tokens").inc(seqs)
                    generated_tokens += seqs

                    # 5. Post-step bookkeeping: prefill completions, token
                    #    emissions, request completions.
                    for f in prefilling:
                        if f.prefill_remaining <= 0 and f.prefill_done_s is None:
                            f.prefill_done_s = now
                            f.decode_ready = True
                    for f in decoding:
                        f.generated += 1
                        if f.first_token_s is None:
                            f.first_token_s = now
                    for f in list(running):
                        if f.done:
                            if f.prefill_done_s is None:
                                f.prefill_done_s = now
                            finish(f, now)
                            running.remove(f)

                    occ = float(sum(f.request.batch for f in running))
                    occupancy.append((now, occ))
                    occupancy_weighted += occ * step_s
                    peak_occupancy = max(peak_occupancy, int(occ))
                    registry.series("scheduler.batch_occupancy").append(occ)

                run_span.set_attribute("completed", len(stats) - rejected)
                run_span.set_attribute("rejected", rejected)
                run_span.set_attribute("model_makespan_s", now)
        except BaseException:
            if scope is not None:
                ledger.close_request_scope(scope)
            raise

        degradation = None
        if scope is not None:
            degradation = ledger.close_request_scope(scope)
            if degradation.degraded:
                registry.counter("scheduler.degraded_runs").inc()

        done = [s for s in stats.values() if not s.rejected]

        def pct(values: List[float], q: float) -> float:
            # Retaining every sample keeps the percentile exact (identical
            # to the order-statistic interpolation np.percentile computes).
            if not values:
                return 0.0
            hist = Histogram("scheduler.pct", sample_capacity=len(values))
            for v in values:
                hist.observe(v)
            return hist.percentile(q)

        ttfts = [s.ttft_s for s in done]
        tpots = [s.tpot_s for s in done if s.generate_len]
        e2es = [s.e2e_s for s in done]
        ordered_stats = tuple(
            stats[r.request_id] for r in ordered if r.request_id in stats
        )
        return ScheduleResult(
            policy=policy,
            completed=len(done),
            rejected=rejected,
            steps=steps,
            makespan_s=now,
            busy_s=busy_s,
            prefill_tokens=prefill_tokens,
            generated_tokens=generated_tokens,
            ttft_p50_s=pct(ttfts, 50),
            ttft_p95_s=pct(ttfts, 95),
            ttft_p99_s=pct(ttfts, 99),
            tpot_p50_s=pct(tpots, 50),
            tpot_p95_s=pct(tpots, 95),
            tpot_p99_s=pct(tpots, 99),
            e2e_p50_s=pct(e2es, 50),
            e2e_p95_s=pct(e2es, 95),
            e2e_p99_s=pct(e2es, 99),
            mean_e2e_s=float(np.mean(e2es)) if e2es else 0.0,
            mean_batch_occupancy=(
                occupancy_weighted / busy_s if busy_s > 0 else 0.0
            ),
            peak_batch_occupancy=peak_occupancy,
            occupancy_timeline=tuple(occupancy),
            requests=ordered_stats,
            degradation=degradation,
            phase_seconds=phase_totals,
        )


def poisson_requests(
    num_requests: int,
    arrival_rate_rps: float,
    prompt_len: Union[int, Sequence[int]] = 128,
    generate_len: Union[int, Sequence[int]] = 32,
    batch: int = 1,
    arrivals: str = "poisson",
    seed: int = 0,
    sessions: Optional[int] = None,
) -> List[Request]:
    """A request stream with Poisson (or uniform) arrivals.

    ``prompt_len`` / ``generate_len`` may be single values or sequences to
    sample from uniformly (seeded; the arrival stream uses the same seed,
    so a stream is fully reproducible from ``(seed, rate, n)``).
    ``sessions`` tags each request with a session id drawn uniformly from
    ``range(sessions)`` (seeded) for the cluster's session-affinity
    routing; ``None`` leaves requests sessionless.
    """
    if sessions is not None and sessions <= 0:
        raise ValueError("sessions must be positive when given")
    times = generate_arrivals(arrival_rate_rps, num_requests, arrivals, seed)
    rng = np.random.default_rng(seed + 1)

    def draw(spec: Union[int, Sequence[int]]) -> List[int]:
        if isinstance(spec, (int, np.integer)):
            return [int(spec)] * num_requests
        choices = list(spec)
        if not choices:
            raise ValueError("length choices must be non-empty")
        return [int(c) for c in rng.choice(choices, size=num_requests)]

    prompts = draw(prompt_len)
    gens = draw(generate_len)
    tags = (
        [int(s) for s in rng.integers(0, sessions, size=num_requests)]
        if sessions is not None
        else [None] * num_requests
    )
    return [
        Request(
            request_id=i,
            arrival_s=float(times[i]),
            prompt_len=prompts[i],
            generate_len=gens[i],
            batch=batch,
            session=tags[i],
        )
        for i in range(num_requests)
    ]


@dataclass(frozen=True)
class SweepPoint:
    """One utilization level of :func:`scheduler_load_sweep`."""

    target_utilization: float
    arrival_rate_rps: float
    batched: ScheduleResult
    fifo: Optional[ScheduleResult] = None


def scheduler_load_sweep(
    scheduler: RequestScheduler,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    num_requests: int = 100,
    prompt_len: int = 128,
    generate_len: int = 32,
    batch: int = 1,
    arrivals: str = "poisson",
    seed: int = 0,
    compare_fifo: bool = True,
) -> List[SweepPoint]:
    """``queueing.load_sweep``-style sweep under continuous batching.

    Utilization targets are expressed against the *FIFO* service time of
    one request (the same normalization :func:`~repro.engine.queueing.load_sweep`
    uses), so ``rho >= 1`` deliberately offers more load than a
    single-server FIFO can sustain — the regime where batching shows its
    capacity win.  With ``compare_fifo`` each point also runs the identical
    stream through the batch-1 policy.
    """
    # Validate the whole sweep before simulating anything: a bad value in
    # the middle of the list must not burn the earlier points first.  The
    # check is an explicit non-positive comparison, never truthiness —
    # ``0.0`` is an error here, not "use a default" (the same convention
    # ``serve-sim`` applies to --rate/--utilization).
    for rho in utilizations:
        if rho <= 0.0:
            raise ValueError(f"utilizations must be positive, got {rho}")
    probe = Request(
        request_id=-1,
        arrival_s=0.0,
        prompt_len=prompt_len,
        generate_len=generate_len,
        batch=batch,
    )
    service_s = scheduler.fifo_service_time(probe)
    fifo_sched = RequestScheduler(
        scheduler.server,
        scheduler.config,
        policy=scheduler.policy.fifo(),
        context_bucket=scheduler.cost.context_bucket,
    )
    fifo_sched.cost = scheduler.cost  # share the memoized engine costs
    points = []
    for rho in utilizations:
        rate = rho / service_s
        stream = poisson_requests(
            num_requests,
            rate,
            prompt_len=prompt_len,
            generate_len=generate_len,
            batch=batch,
            arrivals=arrivals,
            seed=seed,
        )
        batched = scheduler.run(stream)
        fifo = fifo_sched.run(stream) if compare_fifo else None
        points.append(
            SweepPoint(
                target_utilization=float(rho),
                arrival_rate_rps=rate,
                batched=batched,
                fifo=fifo,
            )
        )
    return points
