"""Multi-tenant PE space-sharing: throughput vs latency on one PIM system.

A DRAM-PIM system serving many inference requests can either run them
sequentially on all PEs (lowest per-request latency) or partition the PEs
into slices and run several requests concurrently (better utilization when
a single kernel cannot saturate the system — e.g. small batches, where
per-PE tiles shrink below the transfer-efficiency knee, paper Fig. 12-(c)).

This module evaluates W-way space sharing by re-tuning every LUT kernel for
a platform slice with ``num_pes / W`` PEs and comparing request latency and
aggregate throughput.  Host work is assumed to interleave (the host is not
the bottleneck at these scales).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..baselines.roofline import RooflineDevice
from ..pim.platforms import PIMPlatform
from ..workloads.configs import TransformerConfig
from .engine import PIMDLEngine


@dataclass(frozen=True)
class SharingPoint:
    """One space-sharing configuration."""

    ways: int
    pes_per_slice: int
    request_latency_s: float
    throughput_rps: float  # aggregate requests per second

    @property
    def latency_cost(self) -> float:
        """Per-request slowdown relative to a 1-way baseline of the sweep."""
        return self.request_latency_s


def slice_platform(platform: PIMPlatform, ways: int) -> PIMPlatform:
    """A platform slice with 1/ways of the PEs and bus/rank resources.

    Host<->PIM bandwidth is shared proportionally: each slice sees its
    fraction of the aggregate transfer rates.
    """
    if ways <= 0:
        raise ValueError("ways must be positive")
    if platform.num_pes % ways:
        raise ValueError(f"{platform.num_pes} PEs do not split {ways} ways")

    def share(bw):
        return replace(bw, peak_bytes_per_s=bw.peak_bytes_per_s / ways)

    return replace(
        platform,
        name=f"{platform.name} (1/{ways} slice)",
        num_pes=platform.num_pes // ways,
        ranks=max(platform.ranks // ways, 1),
        broadcast=share(platform.broadcast),
        scatter=share(platform.scatter),
        gather=share(platform.gather),
    )


def space_sharing_sweep(
    platform: PIMPlatform,
    host: RooflineDevice,
    config: TransformerConfig,
    ways_options: List[int] = (1, 2, 4),
    v: int = 4,
    ct: int = 16,
) -> List[SharingPoint]:
    """Latency/throughput of serving ``config`` at each sharing width.

    W concurrent requests each run on a 1/W slice; a request's latency is
    its slice-local engine estimate, and aggregate throughput is
    ``W / latency``.
    """
    points = []
    for ways in ways_options:
        sliced = slice_platform(platform, ways)
        engine = PIMDLEngine(sliced, host, v=v, ct=ct)
        latency = engine.run(config).total_s
        points.append(
            SharingPoint(
                ways=ways,
                pes_per_slice=sliced.num_pes,
                request_latency_s=latency,
                throughput_rps=ways / latency,
            )
        )
    return points


def best_throughput(points: List[SharingPoint]) -> SharingPoint:
    return max(points, key=lambda p: p.throughput_rps)


def best_latency(points: List[SharingPoint]) -> SharingPoint:
    return min(points, key=lambda p: p.request_latency_s)
