"""Transformer operator graph (paper Fig. 6-(b)).

Decomposes a :class:`~repro.workloads.configs.TransformerConfig` into the
operator sequence one encoder layer executes, tagged with the footprints the
cost models need.  The four linear operators (QKV, O, FFN1, FFN2) are the
LUT-conversion targets; attention stays a host compound operator; Add&Norm
and GELU are element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..workloads.configs import TransformerConfig
from ..workloads.routing import MoEConfig

LINEAR = "linear"
ATTENTION = "attention"
ELEMENTWISE = "elementwise"
#: Mixture-of-experts FFN: a compound operator priced as gate + per-expert
#: CCS + max-over-ranks LUT makespan (see ``repro.engine.moe``).
MOE = "moe"


@dataclass(frozen=True)
class OperatorSpec:
    """One operator of the per-layer graph.

    ``flops``/``bytes_moved`` describe a single execution at the workload's
    batch/sequence shape; ``h``/``f`` are set for linear operators only.
    """

    name: str
    kind: str
    flops: float
    bytes_moved: float
    h: int = 0
    f: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (LINEAR, ATTENTION, ELEMENTWISE, MOE):
            raise ValueError(f"unknown operator kind {self.kind!r}")
        if self.kind in (LINEAR, MOE) and (self.h <= 0 or self.f <= 0):
            raise ValueError(f"{self.kind} operators need h and f")


def layer_graph(
    config: TransformerConfig,
    dtype_bytes: int = 4,
    moe: Optional[MoEConfig] = None,
) -> List[OperatorSpec]:
    """Operator sequence of one encoder layer (paper Fig. 6-(b)).

    With ``moe`` set, FFN1/GELU/FFN2 collapse into one ``FFN-MoE`` compound
    operator (the experts' activations run inside it).
    """
    n = config.tokens
    h = config.hidden_dim
    s = config.seq_len
    b = config.batch_size
    heads = config.num_heads
    hd = config.head_dim

    ops: List[OperatorSpec] = []
    for name, in_dim, out_dim in config.linear_layer_shapes():
        flops = 2.0 * n * in_dim * out_dim
        bytes_moved = (n * in_dim + in_dim * out_dim + n * out_dim) * dtype_bytes
        ops.append(
            OperatorSpec(name=name, kind=LINEAR, flops=flops,
                         bytes_moved=bytes_moved, h=in_dim, f=out_dim)
        )

    # Attention: scores QK^T + softmax + context AV (host compound op).
    score_flops = 2.0 * b * heads * s * s * hd
    softmax_elems = b * heads * s * s
    attn = OperatorSpec(
        name="Attention",
        kind=ATTENTION,
        flops=2.0 * score_flops + 5.0 * softmax_elems,
        bytes_moved=(3.0 * n * h + 2.0 * softmax_elems) * dtype_bytes,
    )
    # Place attention after QKV (index 1 keeps QKV first).
    ops.insert(1, attn)

    # GELU after FFN1, two Add&Norm blocks.
    gelu_elems = float(n) * config.ffn_dim
    ops.insert(4, OperatorSpec("GELU", ELEMENTWISE, gelu_elems,
                               2.0 * gelu_elems * dtype_bytes))
    norm_elems = float(n) * h
    ops.insert(3, OperatorSpec("Add&Norm-1", ELEMENTWISE, 5.0 * norm_elems,
                               3.0 * norm_elems * dtype_bytes))
    ops.append(OperatorSpec("Add&Norm-2", ELEMENTWISE, 5.0 * norm_elems,
                            3.0 * norm_elems * dtype_bytes))

    if moe is not None:
        ops = _replace_ffn_with_moe(ops, config, dtype_bytes, moe)
    return ops


def _replace_ffn_with_moe(
    ops: List[OperatorSpec],
    config: TransformerConfig,
    dtype_bytes: int,
    moe: MoEConfig,
) -> List[OperatorSpec]:
    """Collapse FFN1 + GELU + FFN2 into one ``FFN-MoE`` compound operator."""
    n = config.tokens
    h = config.hidden_dim
    ffn = config.ffn_dim
    # Compute: the dense FFN pair + GELU for each of the top_k expert
    # evaluations per token, plus the gate projection (N x H x E).
    expert_flops = 2.0 * n * h * ffn * 2 + float(n) * ffn
    gate_flops = 2.0 * n * h * moe.num_experts
    # Bytes: activations in/out per selected expert, plus every expert's
    # weights resident (no cross-token reuse is assumed lost; the engines
    # refine this with the routed per-expert token counts).
    weight_bytes = moe.num_experts * 2.0 * h * ffn * dtype_bytes
    act_bytes = (n * h * (moe.top_k + 1) + n * ffn * moe.top_k) * dtype_bytes
    moe_op = OperatorSpec(
        name="FFN-MoE", kind=MOE,
        flops=moe.top_k * expert_flops + gate_flops,
        bytes_moved=weight_bytes + act_bytes,
        h=h, f=ffn,
    )
    out: List[OperatorSpec] = []
    for op in ops:
        if op.name in ("FFN1", "GELU", "FFN2"):
            if op.name == "FFN1":
                out.append(moe_op)
            continue
        out.append(op)
    return out


def model_graph(
    config: TransformerConfig,
    dtype_bytes: int = 4,
    moe: Optional[MoEConfig] = None,
) -> List[OperatorSpec]:
    """Operator sequence of the full model (``num_layers`` repeats)."""
    per_layer = layer_graph(config, dtype_bytes, moe=moe)
    return per_layer * config.num_layers
