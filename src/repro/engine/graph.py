"""Transformer operator graph (paper Fig. 6-(b)).

Decomposes a :class:`~repro.workloads.configs.TransformerConfig` into the
operator sequence one encoder layer executes, tagged with the footprints the
cost models need.  The four linear operators (QKV, O, FFN1, FFN2) are the
LUT-conversion targets; attention stays a host compound operator; Add&Norm
and GELU are element-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..workloads.configs import TransformerConfig

LINEAR = "linear"
ATTENTION = "attention"
ELEMENTWISE = "elementwise"


@dataclass(frozen=True)
class OperatorSpec:
    """One operator of the per-layer graph.

    ``flops``/``bytes_moved`` describe a single execution at the workload's
    batch/sequence shape; ``h``/``f`` are set for linear operators only.
    """

    name: str
    kind: str
    flops: float
    bytes_moved: float
    h: int = 0
    f: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (LINEAR, ATTENTION, ELEMENTWISE):
            raise ValueError(f"unknown operator kind {self.kind!r}")
        if self.kind == LINEAR and (self.h <= 0 or self.f <= 0):
            raise ValueError("linear operators need h and f")


def layer_graph(config: TransformerConfig, dtype_bytes: int = 4) -> List[OperatorSpec]:
    """Operator sequence of one encoder layer (paper Fig. 6-(b))."""
    n = config.tokens
    h = config.hidden_dim
    s = config.seq_len
    b = config.batch_size
    heads = config.num_heads
    hd = config.head_dim

    ops: List[OperatorSpec] = []
    for name, in_dim, out_dim in config.linear_layer_shapes():
        flops = 2.0 * n * in_dim * out_dim
        bytes_moved = (n * in_dim + in_dim * out_dim + n * out_dim) * dtype_bytes
        ops.append(
            OperatorSpec(name=name, kind=LINEAR, flops=flops,
                         bytes_moved=bytes_moved, h=in_dim, f=out_dim)
        )

    # Attention: scores QK^T + softmax + context AV (host compound op).
    score_flops = 2.0 * b * heads * s * s * hd
    softmax_elems = b * heads * s * s
    attn = OperatorSpec(
        name="Attention",
        kind=ATTENTION,
        flops=2.0 * score_flops + 5.0 * softmax_elems,
        bytes_moved=(3.0 * n * h + 2.0 * softmax_elems) * dtype_bytes,
    )
    # Place attention after QKV (index 1 keeps QKV first).
    ops.insert(1, attn)

    # GELU after FFN1, two Add&Norm blocks.
    gelu_elems = float(n) * config.ffn_dim
    ops.insert(4, OperatorSpec("GELU", ELEMENTWISE, gelu_elems,
                               2.0 * gelu_elems * dtype_bytes))
    norm_elems = float(n) * h
    ops.insert(3, OperatorSpec("Add&Norm-1", ELEMENTWISE, 5.0 * norm_elems,
                               3.0 * norm_elems * dtype_bytes))
    ops.append(OperatorSpec("Add&Norm-2", ELEMENTWISE, 5.0 * norm_elems,
                            3.0 * norm_elems * dtype_bytes))
    return ops


def model_graph(config: TransformerConfig, dtype_bytes: int = 4) -> List[OperatorSpec]:
    """Operator sequence of the full model (``num_layers`` repeats)."""
    per_layer = layer_graph(config, dtype_bytes)
    return per_layer * config.num_layers
