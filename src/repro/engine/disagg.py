"""Disaggregated prefill/decode pools with hybrid host<->PIM placement.

:class:`~repro.engine.scheduler.RequestScheduler` serializes prefill and
decode on one engine — the deployment the paper evaluates, and the right
baseline.  But the two phases want different hardware: prefill is a
batched GEMM workload that still favors a compute-rich device (the host
roofline, or a compute-configured PIM platform), while decode is the
bandwidth-bound LUT/GEMV regime that belongs on the DRAM-PIM side (the
Cho et al. memory-accelerator placement argument, PAPERS.md).  This
module models that split:

* a **prefill pool** — a serialized FIFO resource costed through its own
  :class:`~repro.engine.scheduler.EngineCostModel` (by default a second
  identical PIM engine; optionally a host roofline via
  :class:`HostPrefillPool` or any compute-configured server);
* a **decode pool** — the continuous-batching engine of
  ``RequestScheduler``, running concurrently with the prefill pool;
* an explicit **KV-cache migration** between them, charged through
  :class:`KVTransferModel` as a first-class ``kv_transfer`` phase
  (sibling to the cluster's ``shard_transfer``) whenever a request
  prefills on one pool and decodes on the other;
* pluggable **placement policies** — ``colocated`` (everything on the
  decode pool; numerically identical to ``RequestScheduler``),
  ``disaggregated`` (every prompt on the prefill pool), and ``hybrid``
  (per-request choice from prompt length, the live backlog of both
  pools, and the transfer cost).

Phase attribution keeps the exact-partition guarantee: the ``prefill/*``,
``decode/*`` and ``kv_transfer`` entries of
:attr:`~repro.engine.scheduler.ScheduleResult.phase_seconds` sum to
``busy_s`` (pool-busy plus transfer seconds) to float precision — engine
phase reports are normalized per step so the invariant survives engines
whose phases drift from wall time (e.g. under transfer overlap).

Everything is instrumented under the ``disagg.*`` telemetry namespace and
the per-pool busy segments are exported for the Chrome-trace bridge's
pool lanes (:func:`repro.obs.bridge.schedule_to_chrome_events`).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..baselines.roofline import RooflineDevice
from ..pim.platforms import TransferBandwidth
from ..workloads.configs import TransformerConfig
from .engine import HostEngine
from .scheduler import (
    EngineCostModel,
    Request,
    RequestScheduler,
    RequestStats,
    ScheduleResult,
    SchedulerPolicy,
    _InFlight,
    poisson_requests,
)
from .serving import GenerationServer

__all__ = [
    "KV_TRANSFER_PHASE",
    "PLACEMENT_POLICIES",
    "KVTransferModel",
    "PoolSnapshot",
    "PlacementPolicy",
    "ColocatedPlacement",
    "DisaggregatedPlacement",
    "HybridPlacement",
    "make_placement",
    "HostPrefillPool",
    "DisaggScheduler",
    "DisaggSweepPoint",
    "disagg_load_sweep",
]

#: Phase key under which KV-cache migrations appear in phase breakdowns —
#: a top-level sibling of the cluster's ``shard_transfer``.
KV_TRANSFER_PHASE = "kv_transfer"

#: Placement decisions a policy can return.
_POOL = "pool"
_COLOCATED = "colocated"


@dataclass(frozen=True)
class KVTransferModel:
    """Cost of migrating one request's KV cache between pools.

    After prefill, the request's KV cache is ``2 * num_layers * tokens *
    hidden_dim`` elements (K and V per layer); migrating it to the decode
    pool crosses ``interconnect`` — the same setup-latency + rate curve
    every other transfer in the repo uses (DynaNDE-style explicit
    activation movement, PAPERS.md).
    """

    config: TransformerConfig
    interconnect: TransferBandwidth
    #: Bytes per KV element; defaults to the platform's GEMM dtype at the
    #: construction sites.
    kv_dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.kv_dtype_bytes <= 0:
            raise ValueError("kv_dtype_bytes must be positive")

    def kv_bytes(self, tokens: int, batch: int = 1) -> float:
        """KV-cache footprint of ``batch`` sequences ``tokens`` deep."""
        from .decode import kv_cache_bytes

        return kv_cache_bytes(
            self.config, tokens, batch=batch, dtype_bytes=self.kv_dtype_bytes
        )

    def transfer_s(self, tokens: int, batch: int = 1) -> float:
        """Seconds to migrate that KV cache across the interconnect."""
        if tokens <= 0:
            return 0.0
        return self.interconnect.latency(self.kv_bytes(tokens, batch))

    def to_jsonable(self) -> dict:
        return {
            "kv_dtype_bytes": self.kv_dtype_bytes,
            "interconnect_peak_bytes_per_s": self.interconnect.peak_bytes_per_s,
            "interconnect_setup_latency_s": self.interconnect.setup_latency_s,
        }


@dataclass(frozen=True)
class PoolSnapshot:
    """Live view a placement policy sees for one admission decision."""

    now: float
    #: Seconds until the prefill pool would start this request (exact:
    #: the pool is FIFO with deterministic job durations).
    prefill_pool_backlog_s: float
    #: Estimated seconds of work already committed to the decode pool
    #: (queued colocated prefills plus the longest in-flight decode tail).
    decode_pool_backlog_s: float
    #: This request's prefill cost on the prefill pool.
    pool_prefill_s: float
    #: This request's prefill cost if run colocated on the decode pool.
    colocated_prefill_s: float
    #: KV migration cost the pool path would charge.
    kv_transfer_s: float


class PlacementPolicy:
    """Decides, per request, which pool runs its prefill."""

    name = "base"

    def choose(self, request: Request, pools: PoolSnapshot) -> str:
        raise NotImplementedError


class ColocatedPlacement(PlacementPolicy):
    """Everything on the decode pool — the single-engine baseline."""

    name = "colocated"

    def choose(self, request: Request, pools: PoolSnapshot) -> str:
        return _COLOCATED


class DisaggregatedPlacement(PlacementPolicy):
    """Every prompt on the prefill pool, decode on the PIM pool."""

    name = "disaggregated"

    def choose(self, request: Request, pools: PoolSnapshot) -> str:
        return _POOL


class HybridPlacement(PlacementPolicy):
    """Per-request choice by estimated time-to-decode-ready.

    The pool path becomes decode-ready after the prefill pool's backlog,
    this prompt's prefill there, and the KV migration; the colocated path
    after the decode pool's committed backlog plus the prompt's prefill
    in-batch.  Prompt length enters through both prefill costs, the live
    backlog through both queue terms, and the migration through the
    transfer term — ties keep the request colocated, so an idle system
    never pays a transfer for nothing.
    """

    name = "hybrid"

    def choose(self, request: Request, pools: PoolSnapshot) -> str:
        pool_eta = (
            pools.prefill_pool_backlog_s
            + pools.pool_prefill_s
            + pools.kv_transfer_s
        )
        colocated_eta = pools.decode_pool_backlog_s + pools.colocated_prefill_s
        return _POOL if pool_eta < colocated_eta else _COLOCATED


PLACEMENT_POLICIES = {
    "colocated": ColocatedPlacement,
    "disaggregated": DisaggregatedPlacement,
    "hybrid": HybridPlacement,
}


def make_placement(
    placement: Union[str, PlacementPolicy],
) -> PlacementPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(placement, PlacementPolicy):
        return placement
    try:
        return PLACEMENT_POLICIES[placement]()
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise ValueError(
            f"unknown placement policy {placement!r} (known: {known})"
        ) from None


class HostPrefillPool:
    """A ``GenerationServer``-shaped facade that prefills on a host roofline.

    Duck-types the one surface :class:`EngineCostModel` needs for prefill
    costing (``prefill_engine.run``), so a disaggregated prefill pool can
    be costed on the host roofline (or any
    :class:`~repro.baselines.roofline.RooflineDevice`, e.g.
    :func:`~repro.baselines.roofline.prefill_host`) instead of a second
    PIM engine.
    """

    def __init__(self, device: RooflineDevice):
        self.host = device
        self._prefill = HostEngine(device)

    @property
    def name(self) -> str:
        return f"host-prefill[{self.host.name}]"

    @property
    def prefill_engine(self):
        return self._prefill


def _normalized_phases(
    phases: Dict[str, float], duration_s: float
) -> Dict[str, float]:
    """Scale an engine's phase report to partition ``duration_s`` exactly.

    Engine reports may drift from their wall time (e.g. overlap-hidden
    transfer seconds); the scheduler-level invariant — phase seconds sum
    to busy seconds within 1e-9 — must hold regardless, so each step's
    phases are renormalized to its charged duration.  An engine with no
    phase report charges everything to ``other``.
    """
    if duration_s <= 0.0:
        return {}
    total = sum(phases.values())
    if not phases or total <= 0.0:
        return {"other": duration_s}
    scale = duration_s / total
    return {phase: seconds * scale for phase, seconds in phases.items()}


class DisaggScheduler:
    """Two-pool discrete-event scheduler with pluggable placement.

    Interface-compatible with
    :class:`~repro.engine.scheduler.RequestScheduler` (``run``,
    ``fifo_service_time``, a shareable ``cost`` model, ``policy``,
    ``name``), so the cluster layer can drop it in per replica.  The
    decode pool replicates the single-engine scheduler's continuous
    batching exactly; under the ``colocated`` policy no request ever
    touches the prefill pool, and the simulation is numerically identical
    to ``RequestScheduler`` (pinned to 1e-9 in ``tests/test_disagg.py``).

    Parameters
    ----------
    placement:
        Policy name (``colocated`` / ``disaggregated`` / ``hybrid``) or a
        :class:`PlacementPolicy` instance.
    prefill_server:
        Cost source for the prefill pool: another
        :class:`~repro.engine.serving.GenerationServer` (e.g. a
        compute-configured platform) or a :class:`HostPrefillPool`.
        ``None`` uses a second engine identical to ``server`` and shares
        its memoized prefill costs.
    kv_transfer:
        :class:`KVTransferModel` for the pool->pool KV migration.
        ``None`` builds one over the platform's scatter path at its GEMM
        dtype — the same interconnect default the cluster's shard plan
        uses.
    """

    def __init__(
        self,
        server: GenerationServer,
        config: TransformerConfig,
        policy: Optional[SchedulerPolicy] = None,
        placement: Union[str, PlacementPolicy] = "hybrid",
        prefill_server=None,
        kv_transfer: Optional[KVTransferModel] = None,
        context_bucket: int = 32,
        name: Optional[str] = None,
    ):
        self.server = server
        self.config = config
        self.policy = policy or SchedulerPolicy()
        self.placement = make_placement(placement)
        self.cost = EngineCostModel(server, config, context_bucket=context_bucket)
        if prefill_server is None:
            # A second identical PIM engine: share the memoized costs.
            self.prefill_cost = self.cost
        else:
            self.prefill_cost = EngineCostModel(
                prefill_server, config, context_bucket=context_bucket
            )
        if kv_transfer is not None:
            self.kv = kv_transfer
        else:
            self.kv = KVTransferModel(
                config=config,
                interconnect=server.platform.scatter,
                kv_dtype_bytes=server.platform.gemm_dtype_bytes,
            )
        self.name = name

    # ------------------------------------------------------------------
    # Admission policy (identical to RequestScheduler's)
    # ------------------------------------------------------------------
    def _feasible(self, request: Request) -> bool:
        return (
            request.batch <= self.policy.max_batch_size
            and request.total_context <= self.policy.max_context_tokens
        )

    def _fits(self, request: Request, running: List[_InFlight]) -> bool:
        seqs = sum(f.request.batch for f in running)
        tokens = sum(f.request.total_context for f in running)
        return (
            seqs + request.batch <= self.policy.max_batch_size
            and tokens + request.total_context <= self.policy.max_context_tokens
        )

    # ------------------------------------------------------------------
    def fifo_service_time(self, request: Request) -> float:
        """Unbatched colocated service time — the same normalization
        ``RequestScheduler`` uses, so load levels are comparable across
        placement policies."""
        total = self.cost.prefill_s(request.prompt_len, request.batch)
        for step in range(request.generate_len):
            total += self.cost.decode_step_s(
                request.batch, request.prompt_len + step
            )
        return total

    # ------------------------------------------------------------------
    def _decode_backlog_s(self, running: List[_InFlight]) -> float:
        """Committed decode-pool work: queued colocated prefills plus the
        longest in-flight decode tail at today's batch shape (a live
        estimate — the actual step costs depend on future admissions)."""
        backlog = 0.0
        for f in running:
            if f.prefill_remaining > 0:
                backlog += self.cost.prefill_s(
                    f.prefill_remaining, f.request.batch
                )
        decoding = [f for f in running if f.prefill_remaining <= 0]
        remaining = [
            f.request.generate_len - f.generated
            for f in decoding
            if f.request.generate_len > f.generated
        ]
        if remaining:
            seqs = sum(f.request.batch for f in decoding)
            total_ctx = sum(f.context_len * f.request.batch for f in decoding)
            step_s = self.cost.decode_step_s(seqs, total_ctx / seqs)
            backlog += max(remaining) * step_s
        return backlog

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ScheduleResult:
        """Simulate the stream across both pools; see the module docstring."""
        policy = self.policy
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))

        ledger = None
        scope = None
        if self.server.resilience is not None and self.server.resilience.active:
            ledger = self.server.resilience.ledger
            owner = f"disagg.run[{self.name}]" if self.name else "disagg.run"
            scope = ledger.open_request_scope(owner)

        waiting: deque = deque()
        running: List[_InFlight] = []
        #: Prefill-pool output awaiting a decode-batch slot, FIFO by
        #: transfer-completion time.
        ready: deque = deque()
        #: In-flight KV migrations: (ready_at, tiebreak, flight).
        transfers: List[Tuple[float, int, _InFlight]] = []
        stats: Dict[int, RequestStats] = {}
        rejected = 0
        steps = 0
        pool_busy_s = 0.0
        decode_busy_s = 0.0
        kv_transfer_s = 0.0
        kv_transfers = 0
        prefill_tokens = 0
        generated_tokens = 0
        occupancy: List[Tuple[float, float]] = []
        occupancy_weighted = 0.0
        peak_occupancy = 0
        timeline: List[Tuple[str, str, float, float]] = []
        phase_totals: Dict[str, float] = {}
        pool_free_at = 0.0
        last_finish = 0.0
        now = 0.0
        idx = 0
        transfer_seq = 0

        def add_phases(
            request_class: str, phases: Dict[str, float], duration_s: float
        ) -> None:
            for phase, seconds in _normalized_phases(phases, duration_s).items():
                key = f"{request_class}/{phase}"
                phase_totals[key] = phase_totals.get(key, 0.0) + seconds

        def finish(flight: _InFlight, when: float) -> None:
            nonlocal generated_tokens, last_finish
            r = flight.request
            stats[r.request_id] = RequestStats(
                request_id=r.request_id,
                arrival_s=r.arrival_s,
                prompt_len=r.prompt_len,
                generate_len=r.generate_len,
                batch=r.batch,
                admitted_s=flight.admitted_s,
                prefill_done_s=flight.prefill_done_s,
                first_token_s=(
                    flight.first_token_s
                    if flight.first_token_s is not None
                    else flight.prefill_done_s
                ),
                finished_s=when,
            )
            last_finish = max(last_finish, when)
            registry.counter("disagg.requests_completed").inc()
            registry.histogram("disagg.ttft_s").observe(
                stats[r.request_id].ttft_s
            )
            registry.histogram("disagg.e2e_s").observe(stats[r.request_id].e2e_s)

        def reject(r: Request) -> None:
            nonlocal rejected
            rejected += 1
            stats[r.request_id] = RequestStats(
                request_id=r.request_id,
                arrival_s=r.arrival_s,
                prompt_len=r.prompt_len,
                generate_len=r.generate_len,
                batch=r.batch,
                rejected=True,
            )
            registry.counter("disagg.requests_rejected").inc()

        def place_on_pool(r: Request, at_s: float) -> None:
            """Run the prompt on the prefill pool and start the migration.

            The pool is FIFO with deterministic durations, so its whole
            schedule for this job is known at placement time.
            """
            nonlocal pool_free_at, pool_busy_s, kv_transfer_s, kv_transfers
            nonlocal prefill_tokens, transfer_seq
            flight = _InFlight(request=r, admitted_s=at_s)
            duration = self.prefill_cost.prefill_s(r.prompt_len, r.batch)
            start = max(at_s, pool_free_at)
            done = start + duration
            pool_free_at = done
            pool_busy_s += duration
            prefill_tokens += r.prompt_len * r.batch
            add_phases(
                "prefill",
                self.prefill_cost.prefill_phases(r.prompt_len, r.batch),
                duration,
            )
            flight.prefilled = r.prompt_len
            flight.prefill_done_s = done
            timeline.append(
                ("prefill_pool", f"prefill req {r.request_id}", start, done)
            )
            registry.counter("disagg.pool_prefills").inc()
            if r.generate_len == 0:
                # Prefill-only request: done at the pool, no migration.
                finish(flight, done)
                return
            migrate_s = self.kv.transfer_s(r.prompt_len, r.batch)
            kv_transfer_s += migrate_s
            kv_transfers += 1
            phase_totals[KV_TRANSFER_PHASE] = (
                phase_totals.get(KV_TRANSFER_PHASE, 0.0) + migrate_s
            )
            registry.counter("disagg.kv_transfers").inc()
            registry.histogram("disagg.kv_transfer_s").observe(migrate_s)
            if migrate_s > 0:
                timeline.append(
                    ("kv_transfer", f"kv req {r.request_id}", done,
                     done + migrate_s)
                )
            flight.decode_ready = True
            transfer_seq += 1
            heapq.heappush(transfers, (done + migrate_s, transfer_seq, flight))

        try:
            with tracer.span(
                "disagg.run",
                model=self.config.name,
                engine=self.server.name,
                placement=self.placement.name,
                requests=len(ordered),
                max_batch_size=policy.max_batch_size,
            ) as run_span:
                while (
                    idx < len(ordered) or waiting or ready or transfers or running
                ):
                    # 1. Move arrivals into the bounded wait queue.
                    while idx < len(ordered) and ordered[idx].arrival_s <= now:
                        r = ordered[idx]
                        idx += 1
                        if not self._feasible(r):
                            reject(r)
                        elif len(waiting) >= policy.max_queue_len:
                            reject(r)
                        else:
                            waiting.append(r)
                            registry.counter("disagg.requests_queued").inc()

                    # 2. Matured KV migrations join the decode-ready queue.
                    while transfers and transfers[0][0] <= now:
                        _, _, flight = heapq.heappop(transfers)
                        ready.append(flight)

                    # 3. Admit decode-ready pool output first (its prefill
                    #    is already paid), then place from the wait queue.
                    while ready and self._fits(ready[0].request, running):
                        running.append(ready.popleft())
                        registry.counter("disagg.requests_admitted").inc()
                    while waiting:
                        head = waiting[0]
                        pools = PoolSnapshot(
                            now=now,
                            prefill_pool_backlog_s=max(0.0, pool_free_at - now),
                            decode_pool_backlog_s=self._decode_backlog_s(running),
                            pool_prefill_s=self.prefill_cost.prefill_s(
                                head.prompt_len, head.batch
                            ),
                            colocated_prefill_s=self.cost.prefill_s(
                                head.prompt_len, head.batch
                            ),
                            kv_transfer_s=(
                                self.kv.transfer_s(head.prompt_len, head.batch)
                                if head.generate_len
                                else 0.0
                            ),
                        )
                        if self.placement.choose(head, pools) == _POOL:
                            waiting.popleft()
                            registry.counter("disagg.placed_pool").inc()
                            place_on_pool(head, now)
                        elif self._fits(head, running):
                            waiting.popleft()
                            registry.counter("disagg.placed_colocated").inc()
                            running.append(
                                _InFlight(request=head, admitted_s=now)
                            )
                        else:
                            break  # head-of-line blocking, as single-pool

                    # 4. Execute one decode-pool step (colocated prefill
                    #    work, then a decode iteration — identical to the
                    #    single-engine scheduler's step).
                    decoding = [f for f in running if f.decode_ready]
                    has_prefill = any(f.prefill_remaining > 0 for f in running)
                    if running and (decoding or has_prefill):
                        step_s = 0.0
                        step_prefill = 0
                        budget = (
                            policy.prefill_chunk
                            if policy.chunked_prefill
                            else float("inf")
                        )
                        prefilling: List[_InFlight] = []
                        with tracer.span("disagg.step") as sp:
                            for f in running:
                                if f.prefill_remaining <= 0 or budget <= 0:
                                    continue
                                take = f.prefill_remaining
                                if policy.chunked_prefill:
                                    take = min(take, int(budget))
                                cost_s = self.cost.prefill_s(
                                    take, f.request.batch
                                )
                                step_s += cost_s
                                add_phases(
                                    "prefill",
                                    self.cost.prefill_phases(
                                        take, f.request.batch
                                    ),
                                    cost_s,
                                )
                                f.prefilled += take
                                budget -= take
                                step_prefill += take * f.request.batch
                                prefilling.append(f)

                            seqs = sum(f.request.batch for f in decoding)
                            if seqs:
                                total_ctx = sum(
                                    f.context_len * f.request.batch
                                    for f in decoding
                                )
                                decode_s = self.cost.decode_step_s(
                                    seqs, total_ctx / seqs
                                )
                                step_s += decode_s
                                add_phases(
                                    "decode",
                                    self.cost.decode_step_phases(
                                        seqs, total_ctx / seqs
                                    ),
                                    decode_s,
                                )
                            sp.set_attribute("batch_seqs", seqs)
                            sp.set_attribute("prefill_tokens", step_prefill)
                            sp.set_attribute("model_seconds", step_s)

                        if step_s <= 0.0:
                            # Freshly prefilled requests become decode-ready
                            # without consuming time, as in the single pool.
                            for f in running:
                                f.decode_ready = (
                                    f.prefilled >= f.request.prompt_len
                                )
                            continue

                        step_start = now
                        now += step_s
                        decode_busy_s += step_s
                        steps += 1
                        prefill_tokens += step_prefill
                        timeline.append(
                            ("decode_pool", f"step[b={seqs}]", step_start, now)
                        )
                        registry.counter("disagg.steps").inc()
                        registry.counter("disagg.prefill_tokens").inc(
                            step_prefill
                        )
                        registry.counter("disagg.decode_tokens").inc(seqs)
                        generated_tokens += seqs

                        # 5. Post-step bookkeeping.
                        for f in prefilling:
                            if (
                                f.prefill_remaining <= 0
                                and f.prefill_done_s is None
                            ):
                                f.prefill_done_s = now
                                f.decode_ready = True
                        for f in decoding:
                            f.generated += 1
                            if f.first_token_s is None:
                                f.first_token_s = now
                        for f in list(running):
                            if f.done:
                                if f.prefill_done_s is None:
                                    f.prefill_done_s = now
                                finish(f, now)
                                running.remove(f)

                        occ = float(sum(f.request.batch for f in running))
                        occupancy.append((now, occ))
                        occupancy_weighted += occ * step_s
                        peak_occupancy = max(peak_occupancy, int(occ))
                        registry.series("disagg.batch_occupancy").append(occ)
                        continue

                    # 6. Idle decode pool: jump to the next event.
                    horizon = []
                    if idx < len(ordered):
                        horizon.append(ordered[idx].arrival_s)
                    if transfers:
                        horizon.append(transfers[0][0])
                    if not horizon:
                        break  # nothing left anywhere
                    now = max(now, min(horizon))

                run_span.set_attribute("completed", len(stats) - rejected)
                run_span.set_attribute("rejected", rejected)
                run_span.set_attribute("kv_transfers", kv_transfers)
                run_span.set_attribute("model_makespan_s", max(now, last_finish))
        except BaseException:
            if scope is not None:
                ledger.close_request_scope(scope)
            raise

        degradation = None
        if scope is not None:
            degradation = ledger.close_request_scope(scope)
            if degradation.degraded:
                registry.counter("disagg.degraded_runs").inc()

        done = [s for s in stats.values() if not s.rejected]

        def pct(values: List[float], q: float) -> float:
            from ..obs.metrics import Histogram

            if not values:
                return 0.0
            hist = Histogram("disagg.pct", sample_capacity=len(values))
            for v in values:
                hist.observe(v)
            return hist.percentile(q)

        ttfts = [s.ttft_s for s in done]
        tpots = [s.tpot_s for s in done if s.generate_len]
        e2es = [s.e2e_s for s in done]
        ordered_stats = tuple(
            stats[r.request_id] for r in ordered if r.request_id in stats
        )
        busy_s = pool_busy_s + decode_busy_s + kv_transfer_s
        return ScheduleResult(
            policy=policy,
            completed=len(done),
            rejected=rejected,
            steps=steps,
            makespan_s=max(now, last_finish),
            busy_s=busy_s,
            prefill_tokens=prefill_tokens,
            generated_tokens=generated_tokens,
            ttft_p50_s=pct(ttfts, 50),
            ttft_p95_s=pct(ttfts, 95),
            ttft_p99_s=pct(ttfts, 99),
            tpot_p50_s=pct(tpots, 50),
            tpot_p95_s=pct(tpots, 95),
            tpot_p99_s=pct(tpots, 99),
            e2e_p50_s=pct(e2es, 50),
            e2e_p95_s=pct(e2es, 95),
            e2e_p99_s=pct(e2es, 99),
            mean_e2e_s=float(np.mean(e2es)) if e2es else 0.0,
            mean_batch_occupancy=(
                occupancy_weighted / decode_busy_s if decode_busy_s > 0 else 0.0
            ),
            peak_batch_occupancy=peak_occupancy,
            occupancy_timeline=tuple(occupancy),
            requests=ordered_stats,
            degradation=degradation,
            phase_seconds=phase_totals,
            placement=self.placement.name,
            kv_transfers=kv_transfers,
            kv_transfer_s=kv_transfer_s,
            prefill_pool_busy_s=pool_busy_s,
            decode_pool_busy_s=decode_busy_s,
            pool_timeline=tuple(timeline),
        )


@dataclass(frozen=True)
class DisaggSweepPoint:
    """One (placement, load) cell of :func:`disagg_load_sweep`."""

    placement: str
    target_utilization: float
    arrival_rate_rps: float
    result: ScheduleResult

    def to_jsonable(self) -> dict:
        return {
            "placement": self.placement,
            "target_utilization": self.target_utilization,
            "arrival_rate_rps": self.arrival_rate_rps,
            "result": self.result.to_jsonable(),
        }


def disagg_load_sweep(
    server: GenerationServer,
    config: TransformerConfig,
    placements: Sequence[Union[str, PlacementPolicy]] = (
        "colocated", "disaggregated", "hybrid",
    ),
    utilizations: Sequence[float] = (0.6, 0.9, 1.2, 1.6),
    num_requests: int = 100,
    prompt_len: int = 128,
    generate_len: int = 64,
    batch: int = 1,
    policy: Optional[SchedulerPolicy] = None,
    prefill_server=None,
    kv_transfer: Optional[KVTransferModel] = None,
    context_bucket: int = 32,
    arrivals: str = "poisson",
    seed: int = 0,
) -> List[DisaggSweepPoint]:
    """Colocated-vs-disaggregated sweep on identical seeded streams.

    Extends :func:`~repro.engine.scheduler.scheduler_load_sweep` across
    placement policies: every policy at one load level consumes the
    *identical* seeded stream, and load is normalized against the
    colocated FIFO service time for every policy, so goodput cells are
    directly comparable.  ``rho >= 1`` overloads the single colocated
    engine — the regime where the decode pool's freedom from prefill
    stalls shows up as retained goodput.
    """
    for rho in utilizations:
        if rho <= 0.0:
            raise ValueError(f"utilizations must be positive, got {rho}")
    if not placements:
        raise ValueError("placements must name at least one policy")

    schedulers: Dict[str, DisaggScheduler] = {}
    shared: Optional[DisaggScheduler] = None
    for placement in placements:
        sched = DisaggScheduler(
            server,
            config,
            policy=policy,
            placement=placement,
            prefill_server=prefill_server,
            kv_transfer=kv_transfer,
            context_bucket=context_bucket,
        )
        if shared is None:
            shared = sched
        else:  # share the memoized engine costs across policies
            sched.cost = shared.cost
            sched.prefill_cost = shared.prefill_cost
        if sched.placement.name in schedulers:
            raise ValueError(
                f"duplicate placement policy {sched.placement.name!r}"
            )
        schedulers[sched.placement.name] = sched

    probe = Request(
        request_id=-1,
        arrival_s=0.0,
        prompt_len=prompt_len,
        generate_len=generate_len,
        batch=batch,
    )
    service_s = shared.fifo_service_time(probe)

    points: List[DisaggSweepPoint] = []
    for rho in utilizations:
        rate = rho / service_s
        stream = poisson_requests(
            num_requests,
            rate,
            prompt_len=prompt_len,
            generate_len=generate_len,
            batch=batch,
            arrivals=arrivals,
            seed=seed,
        )
        for name, sched in schedulers.items():
            points.append(
                DisaggSweepPoint(
                    placement=name,
                    target_utilization=float(rho),
                    arrival_rate_rps=rate,
                    result=sched.run(stream),
                )
            )
    return points
