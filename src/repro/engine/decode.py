"""Autoregressive (decode-phase) serving models — the GPT/LSTM scenario.

The paper motivates PIM-DL by noting that HBM-PIM/AiM already accelerate
*single-batch* GPT/LSTM inference, which is GEMV-dominated, but cloud
serving needs batched GEMM (Section 1, 2.2).  This module closes the loop
from the other side: it models the token-by-token decode phase, where each
generated token turns every linear layer into a GEMV of shape (B, H)x(H, F)
with B small, and asks where LUT-NN still pays off.

For decode, the LUT operator degenerates to per-token table gathers
(N = batch), while the GEMV baseline streams the full weight matrix per
token — so LUT-NN's V-fold traffic reduction applies to the *weights*, the
decode bottleneck.  The engine reports per-token latency and tokens/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..baselines.roofline import RooflineDevice
from ..core.codebook import LUTShape
from ..kernels import HostKernelProfile
from ..mapping.analytical import with_overlap
from ..mapping.tuner import AutoTuner
from ..pim.gemm_kernels import linear_layer_on_pim
from ..pim.platforms import PIMPlatform
from ..workloads.configs import TransformerConfig
from ..workloads.routing import MoEConfig
from .moe import make_rank_tuner, price_moe_ffn

if TYPE_CHECKING:  # pragma: no cover - import cycle (resilience uses tuner)
    from ..resilience.recovery import RecoveryManager


@dataclass(frozen=True)
class DecodeReport:
    """Per-token decode cost of one serving configuration."""

    engine: str
    model: str
    batch_size: int
    context_len: int
    linear_s: float
    attention_s: float
    other_s: float
    #: Per-phase attribution of one token step; sums to
    #: :attr:`token_latency_s` when populated (LUT decode fills it).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Transfer seconds per token the double-buffered LUT pipeline hid
    #: (informational; ``linear_s`` and the ``dma`` phase already report
    #: exposed time, so phases still sum to :attr:`token_latency_s`).
    overlap_hidden_s: float = 0.0

    @property
    def token_latency_s(self) -> float:
        return self.linear_s + self.attention_s + self.other_s

    @property
    def tokens_per_s(self) -> float:
        return self.batch_size / self.token_latency_s


def kv_cache_bytes(
    config: TransformerConfig, tokens: int, batch: int = 1, dtype_bytes: int = 2
) -> float:
    """KV-cache footprint of ``batch`` sequences with ``tokens`` cached each.

    K and V per layer: ``2 * num_layers * tokens * batch * hidden_dim``
    elements.  This is the payload a disaggregated deployment migrates
    from the prefill pool to the decode pool
    (:class:`~repro.engine.disagg.KVTransferModel`), and the same cache
    the attention reads in :func:`_attention_decode_time` stream over.
    """
    if tokens <= 0 or batch <= 0:
        return 0.0
    return 2.0 * config.num_layers * tokens * batch * config.hidden_dim * dtype_bytes


def _attention_decode_time(
    host: RooflineDevice, config: TransformerConfig, batch: int, context: int
) -> float:
    """Single-token attention against a KV cache of ``context`` entries."""
    per_layer_flops = 4.0 * batch * config.num_heads * context * config.head_dim
    per_layer_bytes = 2.0 * batch * context * config.hidden_dim * 2  # K and V reads
    return config.num_layers * host.op_time(per_layer_flops, per_layer_bytes)


def _elementwise_decode_time(
    host: RooflineDevice, config: TransformerConfig, batch: int
) -> float:
    elems = float(batch) * config.hidden_dim
    per_layer = 2 * host.elementwise_time(int(5 * elems)) + host.elementwise_time(
        int(batch * config.ffn_dim)
    )
    return config.num_layers * per_layer


class GEMVDecodeEngine:
    """Decode with linear layers as per-token GEMVs on the PIM (baseline)."""

    def __init__(self, platform: PIMPlatform, host: RooflineDevice):
        self.platform = platform
        self.host = host

    def run(
        self, config: TransformerConfig, batch_size: int = 1, context_len: int = 512
    ) -> DecodeReport:
        linear_s = 0.0
        for _, h, f in config.linear_layer_shapes():
            linear_s += linear_layer_on_pim(self.platform, batch_size, h, f).total
        linear_s *= config.num_layers
        attention_s = _attention_decode_time(self.host, config, batch_size, context_len)
        other_s = _elementwise_decode_time(self.host, config, batch_size)
        return DecodeReport(
            engine=f"pim-gemv[{self.platform.name}]",
            model=config.name,
            batch_size=batch_size,
            context_len=context_len,
            linear_s=linear_s,
            attention_s=attention_s,
            other_s=other_s,
            phase_seconds={
                "gemm": linear_s,
                "attention": attention_s,
                "elementwise": other_s,
            },
        )


class LUTDecodeEngine:
    """Decode with LUT-NN linear layers on the PIM (PIM-DL applied to decode).

    Per generated token the index matrix is tiny (N = batch), so the tuned
    mapping usually keeps the whole LUT resident (tables are weights) and the
    kernel reduces to per-token gathers — ``amortize_lut_distribution`` is
    forced on, matching a serving deployment.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        host: RooflineDevice,
        v: int = 4,
        ct: int = 16,
        tuner: Optional[AutoTuner] = None,
        host_kernel_profile: Optional[HostKernelProfile] = None,
        resilience: Optional["RecoveryManager"] = None,
        overlap: bool = False,
    ):
        self.platform = platform
        self.host = host
        self.v = v
        self.ct = ct
        self.tuner = tuner or AutoTuner(platform, amortize_lut_distribution=True)
        self.host_kernel_profile = host_kernel_profile
        self.resilience = resilience
        #: Double-buffer the LUT micro-kernel loop (see PIMDLEngine).
        self.overlap = overlap
        self._rank_tuner: Optional[AutoTuner] = None

    def _ccs_time(self, batch: int, h: int) -> float:
        if self.host_kernel_profile is not None:
            return self.host_kernel_profile.ccs_time(batch, h, self.ct)
        cb = h // self.v
        distance = self.host.small_k_gemm_time(batch * cb, self.v, self.ct)
        argmin = self.host.op_time(batch * cb * self.ct, batch * cb * self.ct * 4.0)
        return distance + argmin

    def _moe_cost(self, config: TransformerConfig, batch_size: int, moe: MoEConfig):
        if self._rank_tuner is None:
            self._rank_tuner = make_rank_tuner(
                self.platform,
                amortize_lut_distribution=self.tuner.amortize_lut_distribution,
                cache=self.tuner.cache,
            )
        return price_moe_ffn(
            self._rank_tuner,
            self.host,
            batch_size,
            config.hidden_dim,
            config.ffn_dim,
            moe,
            num_ranks=self.platform.ranks,
            v=self.v,
            ct=self.ct,
            ccs_time=self._ccs_time,
        )

    def run(
        self,
        config: TransformerConfig,
        batch_size: int = 1,
        context_len: int = 512,
        moe: Optional[MoEConfig] = None,
    ) -> DecodeReport:
        """Per-token decode cost; ``moe`` swaps the FFN pair for a gated
        mixture of experts priced as gate + CCS + max-over-ranks LUT
        makespan (same model as :meth:`PIMDLEngine.moe_layer_cost`, with
        N = batch)."""
        if config.hidden_dim % self.v or config.ffn_dim % self.v:
            raise ValueError(f"model dims not divisible by V={self.v}")
        linear_s = 0.0
        hidden_s = 0.0
        phases: Dict[str, float] = {}

        def add(phase: str, seconds: float) -> None:
            phases[phase] = phases.get(phase, 0.0) + seconds

        for name, h, f in config.linear_layer_shapes():
            if moe is not None and name in ("FFN1", "FFN2"):
                if name == "FFN2":
                    continue  # priced inside the MoE layer below
                cost = self._moe_cost(config, batch_size, moe)
                linear_s += cost.total_s
                for phase, seconds in cost.phases.items():
                    add(phase, seconds)
                continue
            shape = LUTShape(n=batch_size, h=h, f=f, v=self.v, ct=self.ct)
            if self.resilience is not None and self.resilience.active:
                lut_s, _ = self.resilience.lut_op_seconds(
                    shape,
                    self.platform,
                    self.tuner,
                    self.host,
                    host_kernel_profile=self.host_kernel_profile,
                    op_name=f"decode/{name}",
                )
                linear_s += lut_s
                add("lut", lut_s)
            else:
                tuned = self.tuner.tune(shape)
                lat = tuned.latency
                if self.overlap:
                    lat = with_overlap(shape, tuned.mapping, lat)
                # DecodeReport has no hidden-time subtraction mechanism,
                # so the wall clock (lat.total) and the *exposed* dma phase
                # go in directly; the hidden time is reported alongside.
                linear_s += lat.total
                hidden_s += lat.overlap_hidden
                add("distribution", lat.sub_index + lat.sub_lut)
                add("dma", lat.exposed_transfer)
                add("reduce", lat.kernel_reduce)
                add("gather", lat.sub_output)
                add("launch", lat.launch)
            ccs_s = self._ccs_time(batch_size, h)
            linear_s += ccs_s
            add("ccs", ccs_s)
        linear_s *= config.num_layers
        hidden_s *= config.num_layers
        phases = {p: s * config.num_layers for p, s in phases.items()}
        attention_s = _attention_decode_time(self.host, config, batch_size, context_len)
        other_s = _elementwise_decode_time(self.host, config, batch_size)
        phases["attention"] = attention_s
        phases["elementwise"] = other_s
        return DecodeReport(
            engine=f"pim-dl-decode[{self.platform.name}, V={self.v}]",
            model=config.name,
            batch_size=batch_size,
            context_len=context_len,
            linear_s=linear_s,
            attention_s=attention_s,
            other_s=other_s,
            phase_seconds=phases,
            overlap_hidden_s=hidden_s,
        )


class HostDecodeEngine:
    """Decode entirely on a CPU/GPU roofline device."""

    def __init__(self, device: RooflineDevice):
        self.device = device

    def run(
        self, config: TransformerConfig, batch_size: int = 1, context_len: int = 512
    ) -> DecodeReport:
        linear_s = 0.0
        for _, h, f in config.linear_layer_shapes():
            linear_s += self.device.gemm_time(batch_size, h, f)
        linear_s *= config.num_layers
        attention_s = _attention_decode_time(self.device, config, batch_size, context_len)
        other_s = _elementwise_decode_time(self.device, config, batch_size)
        return DecodeReport(
            engine=f"host-decode[{self.device.name}]",
            model=config.name,
            batch_size=batch_size,
            context_len=context_len,
            linear_s=linear_s,
            attention_s=attention_s,
            other_s=other_s,
            phase_seconds={
                "gemm": linear_s,
                "attention": attention_s,
                "elementwise": other_s,
            },
        )
