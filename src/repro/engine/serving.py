"""End-to-end generation serving: prefill + decode on one system.

Combines the two regimes the paper discusses into one request model:

* **Prefill** — the prompt's tokens are processed as a batched GEMM
  workload (PIM-DL's home turf: the :class:`~repro.engine.engine.PIMDLEngine`
  path, or a GEMM baseline);
* **Decode** — tokens are generated one step at a time against a growing
  KV cache (the GEMV regime HBM-PIM/AiM were built for, here served by the
  decode engines of :mod:`repro.engine.decode`).

The report gives time-to-first-token, per-token decode latency, and
request throughput — the quantities a serving operator actually provisions
for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from .. import obs
from ..baselines.roofline import RooflineDevice
from ..core.codebook import LUTShape
from ..kernels import HostKernelProfile
from ..kernels.schedule import KernelScheduleCache
from ..mapping.store import MappingCache
from ..mapping.tuner import AutoTuner, TuningResult, model_lut_shapes
from ..pim.platforms import PIMPlatform
from ..resilience.recovery import DegradationSummary, RecoveryManager
from ..workloads.configs import TransformerConfig
from .decode import GEMVDecodeEngine, LUTDecodeEngine
from .engine import GEMMPIMEngine, PIMDLEngine


@dataclass(frozen=True)
class ServingReport:
    """Cost of one generation request (prompt -> generated tokens)."""

    engine: str
    model: str
    prompt_len: int
    generate_len: int
    batch_size: int
    prefill_s: float
    decode_s: float
    #: Degradation summary of this request under fault injection; ``None``
    #: when the server has no resilience manager (or the plan is empty
    #: and nothing degraded).
    degraded: Optional[DegradationSummary] = None

    @property
    def time_to_first_token_s(self) -> float:
        return self.prefill_s

    @property
    def per_token_decode_s(self) -> float:
        if self.generate_len == 0:
            return 0.0
        return self.decode_s / self.generate_len

    @property
    def request_latency_s(self) -> float:
        return self.prefill_s + self.decode_s

    @property
    def generated_tokens_per_s(self) -> float:
        if self.generate_len == 0:
            # Prefill-only request: no tokens were generated, so the rate
            # is zero — not the infinity 0/0 used to produce here.
            return 0.0
        if self.decode_s == 0:
            return float("inf")
        return self.batch_size * self.generate_len / self.decode_s


def _resolve_request_shape(
    config: TransformerConfig,
    prompt_len: Optional[int],
    batch_size: Optional[int],
) -> "tuple[int, int]":
    """Apply config defaults to an explicit ``None`` only, then validate.

    ``prompt_len or config.seq_len`` would silently replace an explicit 0
    with the config default; here 0 (and any non-positive value) is an
    error and only ``None`` means "use the config's value".
    """
    if prompt_len is None:
        prompt_len = config.seq_len
    if batch_size is None:
        batch_size = config.batch_size
    if prompt_len <= 0:
        raise ValueError(f"prompt_len must be positive, got {prompt_len}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return prompt_len, batch_size


class GenerationServer:
    """Serve generation requests with PIM-DL prefill + LUT decode.

    Parameters
    ----------
    lut_nn:
        When True (default) both phases use LUT-NN kernels; when False the
        request runs on the platform's native GEMM/GEMV paths — the
        comparison baseline.
    mapping_cache:
        A :class:`~repro.mapping.store.MappingCache` (or a directory path
        for one).  The serving tuners warm-start from it, so a server
        whose model was tuned offline (``repro tune --cache DIR`` or
        :func:`~repro.mapping.tuner.tune_model_parallel`) never re-runs
        Algorithm 1; searches it does perform are persisted for the next
        process.
    tune_jobs:
        Worker processes for any tuning the server still has to do
        (cold cache).  ``0`` means one per CPU.
    host_kernel_profile:
        Measured host CCS throughput (:func:`repro.kernels.measure_host_kernels`);
        forwarded to both the prefill and decode engines so their latency
        models use this machine's real kernel speed instead of the roofline.
    resilience:
        A :class:`~repro.resilience.recovery.RecoveryManager` shared by
        the prefill and decode engines.  Requests then survive the
        manager's fault plan (retry → remap → host fallback) and each
        :class:`ServingReport` carries the ``degraded`` summary of what
        the ladder did.  ``None`` (default) serves fault-free.
    overlap:
        Double-buffer the LUT micro-kernel loop in both phases: the
        transfer of tile *i+1* overlaps the lookup/reduce of tile *i*,
        so the reports charge only the exposed transfer time.
    schedule_cache:
        A :class:`~repro.kernels.KernelScheduleCache` (or a directory
        path for one).  :meth:`warmup` then searches the host-kernel
        schedule (block sizes, gather strategy) for the serving batch
        shape and persists the winner; when no ``host_kernel_profile``
        was given, the winning schedule's measured throughput becomes
        the engines' host kernel model.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        host: RooflineDevice,
        v: int = 4,
        ct: int = 16,
        lut_nn: bool = True,
        mapping_cache: Optional[Union[MappingCache, str]] = None,
        tune_jobs: int = 1,
        host_kernel_profile: Optional[HostKernelProfile] = None,
        resilience: Optional[RecoveryManager] = None,
        overlap: bool = False,
        schedule_cache: Optional[Union[KernelScheduleCache, str]] = None,
    ):
        self.platform = platform
        self.host = host
        self.v = v
        self.ct = ct
        self.lut_nn = lut_nn
        self.overlap = overlap
        if isinstance(mapping_cache, str):
            mapping_cache = MappingCache(mapping_cache)
        self.mapping_cache = mapping_cache
        if isinstance(schedule_cache, str):
            schedule_cache = KernelScheduleCache(schedule_cache)
        self.schedule_cache = schedule_cache
        self.resilience = resilience if lut_nn else None
        if lut_nn:
            # Prefill follows the PIMDLEngine default (LUTs resident only on
            # platforms that keep weights in PIM banks); decode always
            # amortizes.  The regimes tune distinct shapes, so they get
            # separate tuners sharing one persistent cache.
            prefill_amortize = bool(platform.extras.get("lut_resident", 0))
            self._prefill = PIMDLEngine(
                platform, host, v=v, ct=ct,
                tuner=AutoTuner(
                    platform,
                    amortize_lut_distribution=prefill_amortize,
                    jobs=tune_jobs,
                    cache=mapping_cache,
                    schedule_cache=self.schedule_cache,
                ),
                host_kernel_profile=host_kernel_profile,
                resilience=self.resilience,
                overlap=overlap,
            )
            self._decode = LUTDecodeEngine(
                platform, host, v=v, ct=ct,
                tuner=AutoTuner(
                    platform,
                    amortize_lut_distribution=True,
                    jobs=tune_jobs,
                    cache=mapping_cache,
                    schedule_cache=self.schedule_cache,
                ),
                host_kernel_profile=host_kernel_profile,
                resilience=self.resilience,
                overlap=overlap,
            )
        else:
            self._prefill = GEMMPIMEngine(platform, host)
            self._decode = GEMVDecodeEngine(platform, host)

    @property
    def name(self) -> str:
        mode = "lut-nn" if self.lut_nn else "native"
        return f"serve[{self.platform.name}, {mode}]"

    def warmup(
        self,
        config: TransformerConfig,
        prompt_len: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> Dict[LUTShape, TuningResult]:
        """Pre-tune every LUT shape one request of ``config`` needs.

        With a populated ``mapping_cache`` this loads mappings instead of
        searching (zero candidates evaluated); on a cold cache it runs the
        searches once — with ``tune_jobs`` workers — and persists them.

        When a ``schedule_cache`` is configured, the warmup also searches
        the host-kernel schedule for the first prefill shape (persisted
        the same way); if the server was built without an explicit
        ``host_kernel_profile``, the winning schedule's measured
        throughput is installed on both engines.

        Returns the tuned results by shape; a no-op for native serving.
        """
        if not self.lut_nn:
            return {}
        prompt_len, batch_size = _resolve_request_shape(config, prompt_len, batch_size)
        prefill_config = config.with_(seq_len=prompt_len, batch_size=batch_size)
        tuned: Dict[LUTShape, TuningResult] = {}
        with obs.get_tracer().span(
            "serving.warmup", engine=self.name, model=config.name
        ) as span:
            prefill_shapes = model_lut_shapes(prefill_config, v=self.v, ct=self.ct)
            tuned.update(self._prefill.tuner.tune_many(prefill_shapes))
            decode_shapes = [
                LUTShape(n=batch_size, h=h, f=f, v=self.v, ct=self.ct)
                for _, h, f in config.linear_layer_shapes()
            ]
            tuned.update(self._decode.tuner.tune_many(decode_shapes))
            span.set_attribute("shapes", len(tuned))
            if self.schedule_cache is not None and prefill_shapes:
                schedule = self._prefill.tuner.warm_host_schedule(prefill_shapes[0])
                span.set_attribute(
                    "schedule_speedup", schedule.speedup_vs_default
                )
                if self._prefill.host_kernel_profile is None:
                    profile = schedule.to_profile()
                    self._prefill.host_kernel_profile = profile
                    self._decode.host_kernel_profile = profile
        obs.get_registry().counter("serving.warmup_shapes").inc(len(tuned))
        return tuned

    def run(
        self,
        config: TransformerConfig,
        prompt_len: Optional[int] = None,
        generate_len: int = 64,
        batch_size: Optional[int] = None,
    ) -> ServingReport:
        """Cost one request batch: prefill ``prompt_len`` then decode.

        The decode phase's attention cost uses the *average* KV-cache
        length over the generation (prompt + generate/2).
        """
        if generate_len < 0:
            raise ValueError("generate_len must be non-negative")
        prompt_len, batch_size = _resolve_request_shape(config, prompt_len, batch_size)
        prefill_config = config.with_(seq_len=prompt_len, batch_size=batch_size)

        tracer = obs.get_tracer()
        registry = obs.get_registry()
        ledger = (
            self.resilience.ledger
            if self.resilience is not None and self.resilience.active
            else None
        )
        # Per-request degradation is an exclusive ledger scope: the ledger
        # itself rejects a second concurrent request, so interleaved callers
        # (the continuous-batching scheduler) must drive the engines
        # directly and account at the batch level.
        scope = (
            ledger.open_request_scope("serving.request")
            if ledger is not None
            else None
        )
        try:
            with tracer.span(
                "serving.request",
                engine=self.name,
                model=config.name,
                prompt_len=prompt_len,
                generate_len=generate_len,
                batch_size=batch_size,
            ) as request_span:
                with tracer.span("serving.prefill", engine=self.name) as sp:
                    prefill_s = self._prefill.run(prefill_config).total_s
                    sp.set_attribute("model_seconds", prefill_s)

                decode_s = 0.0
                if generate_len:
                    average_context = prompt_len + generate_len // 2
                    with tracer.span(
                        "serving.decode", engine=self.name, context_len=average_context
                    ) as sp:
                        token = self._decode.run(
                            prefill_config,
                            batch_size=batch_size,
                            context_len=average_context,
                        )
                        decode_s = token.token_latency_s * generate_len
                        sp.set_attribute("model_seconds", decode_s)
                request_span.set_attribute("model_seconds", prefill_s + decode_s)

                degraded = None
                if scope is not None:
                    degraded = ledger.close_request_scope(scope)
                    scope = None
                    request_span.set_attribute("degraded", degraded.degraded)
                    request_span.set_attribute("fallbacks", degraded.fallbacks)
        except BaseException:
            if scope is not None:
                ledger.close_request_scope(scope)
            raise

        registry.counter("serving.requests").inc()
        registry.counter("serving.generated_tokens").inc(batch_size * generate_len)
        registry.histogram("serving.request_model_seconds").observe(
            prefill_s + decode_s
        )
        if degraded is not None and degraded.degraded:
            registry.counter("serving.degraded_requests").inc()

        return ServingReport(
            engine=self.name,
            model=config.name,
            prompt_len=prompt_len,
            generate_len=generate_len,
            batch_size=batch_size,
            prefill_s=prefill_s,
            decode_s=decode_s,
            degraded=degraded,
        )

    def kv_cache_bytes(
        self, config: TransformerConfig, tokens: int, batch: int = 1
    ) -> float:
        """KV-cache footprint at the platform's GEMM dtype — the payload a
        disaggregated deployment migrates between prefill and decode pools
        (:class:`~repro.engine.disagg.KVTransferModel`)."""
        from .decode import kv_cache_bytes

        return kv_cache_bytes(
            config, tokens, batch=batch,
            dtype_bytes=self.platform.gemm_dtype_bytes,
        )

    @property
    def prefill_engine(self):
        """The prefill cost engine (PIM-DL or native GEMM)."""
        return self._prefill

    @property
    def decode_engine(self):
        """The decode cost engine (LUT or native GEMV)."""
        return self._decode
