"""Queueing analysis: serving latency under load (discrete-event).

The engine reports give the *service time* of one request; an operator also
needs to know how latency behaves under a request arrival stream.  This
module runs a single-server FIFO discrete-event simulation over
deterministic service times (per-request cost from any engine/server
report) and Poisson or deterministic arrivals, reporting utilization and
P50/P95/P99 sojourn times.

Kept deliberately simple — one PIM system, one queue — matching the
single-node scope of the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class QueueStats:
    """Result of one queueing simulation."""

    arrival_rate_rps: float
    service_time_s: float
    utilization: float
    completed: int
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float

    @property
    def queueing_inflation(self) -> float:
        """Mean sojourn time relative to the bare service time."""
        return self.mean_latency_s / self.service_time_s


def generate_arrivals(
    arrival_rate_rps: float,
    num_requests: int,
    arrivals: str = "poisson",
    seed: int = 0,
) -> np.ndarray:
    """Arrival timestamps for a request stream.

    ``"poisson"`` draws exponential inter-arrival gaps from a
    ``default_rng(seed)``; ``"uniform"`` spaces requests deterministically
    (the seed is ignored, so uniform streams are seed-invariant).  Shared
    by :func:`simulate_queue` and the continuous-batching scheduler
    (:mod:`repro.engine.scheduler`) so both disciplines can be compared on
    the *same* arrival stream.
    """
    if arrival_rate_rps <= 0:
        raise ValueError("arrival rate must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if arrivals not in ("poisson", "uniform"):
        raise ValueError(f"unknown arrival process {arrivals!r}")
    if arrivals == "poisson":
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / arrival_rate_rps, size=num_requests)
    else:
        gaps = np.full(num_requests, 1.0 / arrival_rate_rps)
    return np.cumsum(gaps)


def simulate_queue(
    service_time_s: float,
    arrival_rate_rps: float,
    num_requests: int = 2000,
    arrivals: str = "poisson",
    seed: int = 0,
) -> QueueStats:
    """FIFO single-server queue with deterministic service times.

    Parameters
    ----------
    service_time_s:
        Per-request cost (e.g. ``EngineReport.total_s`` or
        ``ServingReport.request_latency_s``).
    arrival_rate_rps:
        Offered load in requests/second; must keep utilization < 1 for a
        steady state (checked).
    arrivals:
        ``"poisson"`` (exponential inter-arrivals) or ``"uniform"``
        (deterministic spacing).
    """
    if service_time_s <= 0:
        raise ValueError("service time must be positive")
    utilization = arrival_rate_rps * service_time_s if arrival_rate_rps > 0 else 0.0
    if utilization >= 1.0:
        raise ValueError(
            f"offered load {utilization:.2f} >= 1: the queue is unstable"
        )
    arrival_times = generate_arrivals(arrival_rate_rps, num_requests, arrivals, seed)

    latencies = np.empty(num_requests)
    server_free_at = 0.0
    for i, arrived in enumerate(arrival_times):
        start = max(arrived, server_free_at)
        done = start + service_time_s
        latencies[i] = done - arrived
        server_free_at = done

    return QueueStats(
        arrival_rate_rps=arrival_rate_rps,
        service_time_s=service_time_s,
        utilization=utilization,
        completed=num_requests,
        p50_latency_s=float(np.percentile(latencies, 50)),
        p95_latency_s=float(np.percentile(latencies, 95)),
        p99_latency_s=float(np.percentile(latencies, 99)),
        mean_latency_s=float(latencies.mean()),
    )


def load_sweep(
    service_time_s: float,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    **kwargs,
) -> List[QueueStats]:
    """Queue statistics across target utilization levels."""
    out = []
    for rho in utilizations:
        if not 0.0 < rho < 1.0:
            raise ValueError("utilizations must lie in (0, 1)")
        rate = rho / service_time_s
        out.append(simulate_queue(service_time_s, rate, **kwargs))
    return out
