"""PIM-DL inference engine and the baseline engines it is compared against.

Three engines share the operator graph of :mod:`repro.engine.graph`:

* :class:`PIMDLEngine` — the paper's system: linear layers become a
  host-side CCS operator plus a PIM-side LUT operator whose mapping comes
  from the Auto-Tuner; attention and element-wise operators run on the host.
* :class:`GEMMPIMEngine` — "normal" DNN inference with linear layers
  offloaded to the PIM as dense GEMMs (the PIM baseline of Figs. 10/14).
* :class:`HostEngine` — everything on a CPU/GPU roofline device (the
  CPU FP32/INT8 and V100 baselines).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .. import obs
from ..baselines.roofline import RooflineDevice
from ..core.codebook import LUTShape
from ..kernels import HostKernelProfile
from ..mapping.analytical import with_overlap
from ..mapping.tuner import AutoTuner
from ..pim.energy import host_only_energy, pim_system_energy
from ..pim.gemm_kernels import linear_layer_on_pim
from ..pim.platforms import PIMPlatform
from ..workloads.configs import TransformerConfig
from ..workloads.routing import MoEConfig
from .graph import LINEAR, MOE, model_graph
from .moe import MoELayerCost, make_rank_tuner, price_moe_ffn
from .report import EngineReport, OpLatency

if TYPE_CHECKING:  # pragma: no cover - import cycle (resilience uses tuner)
    from ..resilience.recovery import RecoveryManager


def _observe_op(report: EngineReport, op: OpLatency, phases=None) -> None:
    """Append ``op``, record its latency, and attribute its phases.

    ``phases`` maps phase name -> seconds for ops with a finer-grained
    breakdown (the LUT op's analytical stages); by default the op's whole
    latency lands on its category.
    """
    obs.get_registry().histogram("engine.op_model_seconds").observe(op.seconds)
    report.ops.append(op)
    if phases is None:
        report.add_phase(op.category, op.seconds)
    else:
        for phase, seconds in phases.items():
            report.add_phase(phase, seconds)


def _finish_run(report: EngineReport, span) -> None:
    registry = obs.get_registry()
    registry.counter("engine.runs").inc()
    registry.counter("engine.ops").inc(len(report.ops))
    span.set_attribute("model_total_s", report.total_s)
    span.set_attribute("ops", len(report.ops))


class HostEngine:
    """All operators on a single CPU/GPU roofline device."""

    def __init__(self, device: RooflineDevice, dtype_bytes: int = 4):
        self.device = device
        self.dtype_bytes = dtype_bytes

    @property
    def name(self) -> str:
        return f"host[{self.device.name}]"

    def run(self, config: TransformerConfig) -> EngineReport:
        tracer = obs.get_tracer()
        report = EngineReport(engine=self.name, model=config.name)
        with tracer.span("engine.run", engine=self.name, model=config.name) as root:
            for op in model_graph(config, self.dtype_bytes):
                category = "gemm" if op.kind == LINEAR else op.kind
                with tracer.span(
                    f"op:{op.name}", engine=self.name, device="host",
                    category=category,
                ) as sp:
                    seconds = self.device.op_time(op.flops, op.bytes_moved)
                    sp.set_attribute("model_seconds", seconds)
                _observe_op(report, OpLatency(op.name, "host", category, seconds))
            report.energy = host_only_energy(self.device, report.total_s)
            _finish_run(report, root)
        return report


class GEMMPIMEngine:
    """Linear layers offloaded to DRAM-PIM as dense GEMMs; rest on host."""

    def __init__(self, platform: PIMPlatform, host: RooflineDevice):
        self.platform = platform
        self.host = host

    @property
    def name(self) -> str:
        return f"pim-gemm[{self.platform.name}]"

    def run(self, config: TransformerConfig) -> EngineReport:
        tracer = obs.get_tracer()
        report = EngineReport(engine=self.name, model=config.name)
        with tracer.span("engine.run", engine=self.name, model=config.name) as root:
            n = config.tokens
            for op in model_graph(config):
                if op.kind == LINEAR:
                    with tracer.span(
                        f"op:{op.name}", engine=self.name, device="pim",
                        category="gemm",
                    ) as sp:
                        breakdown = linear_layer_on_pim(self.platform, n, op.h, op.f)
                        sp.set_attribute("model_seconds", breakdown.total)
                    _observe_op(
                        report, OpLatency(op.name, "pim", "gemm", breakdown.total)
                    )
                else:
                    with tracer.span(
                        f"op:{op.name}", engine=self.name, device="host",
                        category=op.kind,
                    ) as sp:
                        seconds = self.host.op_time(op.flops, op.bytes_moved)
                        sp.set_attribute("model_seconds", seconds)
                    _observe_op(report, OpLatency(op.name, "host", op.kind, seconds))
            report.energy = pim_system_energy(
                self.platform, report.host_s, report.pim_s
            )
            _finish_run(report, root)
        return report


class PIMDLEngine:
    """The PIM-DL system: LUT-NN linear layers on PIM, the rest on the host.

    Parameters
    ----------
    v, ct:
        LUT-NN hyper-parameters (sub-vector length, centroids per codebook).
    amortize_lut_distribution:
        Treat LUTs (model weights) as resident in PIM memory across
        inferences.  Default False: every inference pays the full Eq. 3
        distribution cost, matching the paper's measurement setup.
    host_kernel_profile:
        Optional measured throughput of this machine's host CCS kernel
        (:func:`repro.kernels.measure_host_kernels`).  When set, CCS time
        comes from the measurement instead of the host roofline, so the
        latency model reflects the actual kernel layer.
    resilience:
        Optional :class:`~repro.resilience.recovery.RecoveryManager`.
        When set (and its fault plan is non-empty), every LUT operator
        runs through the retry → remap → host-fallback ladder instead of
        the plain tuner lookup; degradation is recorded in the manager's
        ledger and the op's device switches to ``"host"`` for fallen-back
        layers.  ``None`` (or an empty plan) leaves the engine's behavior
        bit-identical to a build without the resilience layer.
    overlap:
        Model every LUT kernel with the double-buffered micro-kernel
        pipeline (:func:`repro.mapping.analytical.with_overlap`): the
        transfer of m-tile ``i+1`` overlaps the reduce of m-tile ``i``.
        The hidden transfer accumulates into
        ``EngineReport.overlap_hidden_s`` while op seconds and phases keep
        reporting the full sequential work, so schedulers built on this
        engine (:class:`~repro.engine.scheduler.RequestScheduler`, the
        cluster layer) inherit the speedup with no API change.  Default
        False — bit-identical to the sequential model.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        host: RooflineDevice,
        v: int = 4,
        ct: int = 16,
        amortize_lut_distribution: Optional[bool] = None,
        tuner: Optional[AutoTuner] = None,
        host_kernel_profile: Optional[HostKernelProfile] = None,
        resilience: Optional["RecoveryManager"] = None,
        overlap: bool = False,
    ):
        if v <= 0 or ct <= 0:
            raise ValueError("v and ct must be positive")
        self.platform = platform
        self.host = host
        self.v = v
        self.ct = ct
        if amortize_lut_distribution is None:
            # HBM-PIM/AiM keep LUTs (= model weights) resident in the PIM
            # banks; UPMEM re-distributes them per kernel (paper's setup).
            amortize_lut_distribution = bool(platform.extras.get("lut_resident", 0))
        self.tuner = tuner or AutoTuner(
            platform, amortize_lut_distribution=amortize_lut_distribution
        )
        self.host_kernel_profile = host_kernel_profile
        self.resilience = resilience
        self.overlap = overlap
        self._rank_tuner: Optional[AutoTuner] = None
        self._moe_costs: dict = {}

    @property
    def name(self) -> str:
        return f"pim-dl[{self.platform.name}, V={self.v}, CT={self.ct}]"

    def _ccs_time(self, n: int, h: int) -> float:
        """Host-side closest-centroid search for one linear layer.

        CCS is implemented as per-column inner products between (N, V)
        activation tiles and (V, CT) codebooks (3*N*H*CT ops, paper §3.3)
        followed by an argmin over the (N, CB, CT) distance tensor.  The
        inner dimension of those GEMMs is the sub-vector length V, so they
        run at small-K efficiency — which is why CCS contributes ~20% of
        PIM-DL's latency despite its modest op count (Fig. 11-(a)).

        When a measured :class:`~repro.kernels.HostKernelProfile` is set it
        replaces the roofline estimate with this machine's real throughput.
        """
        if self.host_kernel_profile is not None:
            return self.host_kernel_profile.ccs_time(n, h, self.ct)
        cb = h // self.v
        distance = self.host.small_k_gemm_time(n * cb, self.v, self.ct)
        argmin_bytes = n * cb * self.ct * 4.0 + n * cb
        argmin = self.host.op_time(n * cb * self.ct, argmin_bytes)
        return distance + argmin

    def lut_shape(self, n: int, h: int, f: int) -> LUTShape:
        if h % self.v:
            raise ValueError(f"hidden dim {h} not divisible by V={self.v}")
        return LUTShape(n=n, h=h, f=f, v=self.v, ct=self.ct)

    def rank_tuner(self) -> AutoTuner:
        """Auto-Tuner for a single-rank platform slice (MoE expert kernels).

        Shares the dense tuner's ``MappingCache`` (keyed by platform, so
        slice entries never collide with full-platform entries) and its
        amortization setting.
        """
        if self._rank_tuner is None:
            self._rank_tuner = make_rank_tuner(
                self.platform,
                amortize_lut_distribution=self.tuner.amortize_lut_distribution,
                cache=self.tuner.cache,
            )
        return self._rank_tuner

    def moe_layer_cost(self, config: TransformerConfig, moe: MoEConfig) -> MoELayerCost:
        """Price one MoE FFN layer of ``config`` (memoized per engine)."""
        key = (config.tokens, config.hidden_dim, config.ffn_dim, moe)
        if key not in self._moe_costs:
            self._moe_costs[key] = price_moe_ffn(
                self.rank_tuner(),
                self.host,
                config.tokens,
                config.hidden_dim,
                config.ffn_dim,
                moe,
                num_ranks=self.platform.ranks,
                v=self.v,
                ct=self.ct,
                ccs_time=self._ccs_time,
            )
        return self._moe_costs[key]

    def run(
        self,
        config: TransformerConfig,
        pipeline_overlap: bool = False,
        moe: Optional[MoEConfig] = None,
    ) -> EngineReport:
        """Estimate one inference of ``config``.

        ``pipeline_overlap`` models the what-if of paper §7's discussion:
        double-buffering the host work (CCS, attention, element-wise ops)
        against PIM LUT kernels, so per inference only
        ``max(host_time, pim_time)`` is exposed instead of their sum.  The
        sequential default matches the paper's measured system.

        ``moe`` replaces the dense FFN of every layer with a gated
        mixture of experts; the FFN pair is then priced as gate + CCS +
        the expert placement's max-over-ranks LUT makespan
        (:func:`repro.engine.moe.price_moe_ffn`).
        """
        tracer = obs.get_tracer()
        report = EngineReport(engine=self.name, model=config.name)
        with tracer.span("engine.run", engine=self.name, model=config.name) as root:
            n = config.tokens
            for op in model_graph(config, moe=moe):
                if op.kind == MOE:
                    self._run_moe_op(report, tracer, config, moe, op)
                elif op.kind == LINEAR:
                    with tracer.span(
                        f"op:{op.name}/CCS", engine=self.name, device="host",
                        category="ccs",
                    ) as sp:
                        ccs_seconds = self._ccs_time(n, op.h)
                        sp.set_attribute("model_seconds", ccs_seconds)
                    _observe_op(
                        report, OpLatency(f"{op.name}/CCS", "host", "ccs", ccs_seconds)
                    )
                    # The LUT op's costing span nests the tuner's own spans
                    # (and, under fault injection, the recovery ladder's).
                    shape = self.lut_shape(n, op.h, op.f)
                    lut_phases = None
                    if self.resilience is not None and self.resilience.active:
                        with tracer.span(
                            f"op:{op.name}/LUT", engine=self.name, device="pim",
                            category="lut",
                        ) as sp:
                            lut_seconds, device = self.resilience.lut_op_seconds(
                                shape,
                                self.platform,
                                self.tuner,
                                self.host,
                                host_kernel_profile=self.host_kernel_profile,
                                op_name=f"{op.name}/LUT",
                            )
                            sp.set_attribute("model_seconds", lut_seconds)
                            sp.set_attribute("device", device)
                    else:
                        device = "pim"
                        with tracer.span(
                            f"op:{op.name}/LUT", engine=self.name, device="pim",
                            category="lut",
                        ) as sp:
                            tuned = self.tuner.tune(shape)
                            lat = tuned.latency
                            if self.overlap:
                                lat = with_overlap(shape, tuned.mapping, lat)
                            # Op seconds and phases report the full
                            # sequential work; the pipelined saving lands
                            # in report.overlap_hidden_s, preserving the
                            # sum(phases) == total_s + hidden invariant.
                            lut_seconds = lat.total + lat.overlap_hidden
                            report.overlap_hidden_s += lat.overlap_hidden
                            # The analytical stages attribute the LUT op to
                            # the same phases the simulator profiles.
                            lut_phases = {
                                "distribution": lat.sub_index + lat.sub_lut,
                                "dma": lat.kernel_transfer,
                                "reduce": lat.kernel_reduce,
                                "gather": lat.sub_output,
                                "launch": lat.launch,
                            }
                            sp.set_attribute("model_seconds", lut_seconds)
                            if lat.overlap_hidden > 0:
                                sp.set_attribute(
                                    "overlap_hidden_s", lat.overlap_hidden
                                )
                    _observe_op(
                        report,
                        OpLatency(f"{op.name}/LUT", device, "lut", lut_seconds),
                        phases=lut_phases,
                    )
                else:
                    with tracer.span(
                        f"op:{op.name}", engine=self.name, device="host",
                        category=op.kind,
                    ) as sp:
                        seconds = self.host.op_time(op.flops, op.bytes_moved)
                        sp.set_attribute("model_seconds", seconds)
                    _observe_op(report, OpLatency(op.name, "host", op.kind, seconds))
            if pipeline_overlap:
                # Engine-level what-if (host work under PIM kernels);
                # composes additively with the kernel-level pipeline above.
                report.overlap_hidden_s += min(report.host_s, report.pim_s)
            report.energy = pim_system_energy(
                self.platform, report.host_s, report.pim_s
            )
            _finish_run(report, root)
        return report

    def _run_moe_op(self, report, tracer, config, moe, op) -> None:
        """Observe one ``FFN-MoE`` operator as gate + CCS + LUT makespan."""
        with tracer.span(
            f"op:{op.name}", engine=self.name, device="pim", category="moe",
        ) as sp:
            cost = self.moe_layer_cost(config, moe)
            sp.set_attribute("model_seconds", cost.total_s)
            sp.set_attribute("experts", moe.num_experts)
            sp.set_attribute("rank_imbalance", cost.imbalance_index)
        _observe_op(
            report, OpLatency(f"{op.name}/Gate", "host", "gate", cost.gate_s)
        )
        _observe_op(
            report, OpLatency(f"{op.name}/CCS", "host", "ccs", cost.ccs_s)
        )
        lut_phases = {
            phase: s
            for phase, s in cost.phases.items()
            if phase not in ("ccs", "gate")
        }
        _observe_op(
            report,
            OpLatency(f"{op.name}/LUT", "pim", "lut", cost.lut_makespan_s),
            phases=lut_phases,
        )
