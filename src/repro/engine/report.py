"""Execution reports produced by the inference engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..pim.energy import EnergyReport


@dataclass(frozen=True)
class OpLatency:
    """Latency of one operator execution, tagged for breakdowns."""

    name: str
    device: str  # "host" | "pim"
    category: str  # "lut" | "ccs" | "gemm" | "attention" | "elementwise"
    seconds: float


@dataclass
class EngineReport:
    """Roll-up of one model inference on one engine."""

    engine: str
    model: str
    ops: List[OpLatency] = field(default_factory=list)
    energy: EnergyReport = None
    #: Latency hidden by host/PIM pipelining (0 in the sequential system).
    overlap_hidden_s: float = 0.0
    #: Per-phase attribution across all ops.  LUT ops contribute their
    #: analytical breakdown (distribution/dma/reduce/gather/launch); host
    #: ops contribute their category.  Sums to the op seconds, i.e. to
    #: ``total_s + overlap_hidden_s``.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return sum(op.seconds for op in self.ops) - self.overlap_hidden_s

    def add_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def bottleneck(self, top_k: int = 3):
        """Attribution roll-up (see :class:`repro.obs.profiler.BottleneckReport`)."""
        from ..obs.profiler import BottleneckReport

        if not self.phase_seconds:
            raise ValueError("engine run recorded no phase attribution")
        return BottleneckReport.from_phases(
            self.phase_seconds, overlap_hidden_s=self.overlap_hidden_s
        )

    @property
    def host_s(self) -> float:
        return sum(op.seconds for op in self.ops if op.device == "host")

    @property
    def pim_s(self) -> float:
        return sum(op.seconds for op in self.ops if op.device == "pim")

    def per_category_seconds(self, device: Optional[str] = None) -> Dict[str, float]:
        """Seconds per op category, optionally restricted to one device.

        The canonical Fig. 11-style aggregation (gemm vs. attention vs.
        elementwise vs. lut vs. ccs; pass ``device="host"``/``"pim"`` for
        the host/PIM split of one category).
        """
        out: Dict[str, float] = {}
        for op in self.ops:
            if device is not None and op.device != device:
                continue
            out[op.category] = out.get(op.category, 0.0) + op.seconds
        return out

    def per_device_seconds(self) -> Dict[str, float]:
        """Seconds per device ("host" / "pim")."""
        out: Dict[str, float] = {}
        for op in self.ops:
            out[op.device] = out.get(op.device, 0.0) + op.seconds
        return out

    def category_shares(self) -> Dict[str, float]:
        """Each category's fraction of ``total_s`` (sums can exceed 1 when
        overlap hides latency, since shares are of the *exposed* total)."""
        total = self.total_s
        if total <= 0:
            return {category: 0.0 for category in self.per_category_seconds()}
        return {
            category: seconds / total
            for category, seconds in self.per_category_seconds().items()
        }

    def category_breakdown(self) -> Dict[str, float]:
        """Latency per category — the data behind paper Fig. 11-(a).

        Alias of :meth:`per_category_seconds` kept for existing callers.
        """
        return self.per_category_seconds()

    def per_operator(self) -> Dict[str, float]:
        """Latency per operator name — the data behind paper Fig. 11-(b)."""
        out: Dict[str, float] = {}
        for op in self.ops:
            out[op.name] = out.get(op.name, 0.0) + op.seconds
        return out

    @property
    def throughput_inferences_per_s(self) -> float:
        # An empty report (no ops recorded) performed no inference; its
        # throughput is zero, not the infinity a bare 1/total_s suggests.
        return 1.0 / self.total_s if self.total_s > 0 else 0.0

    def to_jsonable(self) -> dict:
        """Machine-readable roll-up (the CLI's ``--json`` compare output)."""
        return {
            "engine": self.engine,
            "model": self.model,
            "total_s": self.total_s,
            "host_s": self.host_s,
            "pim_s": self.pim_s,
            "overlap_hidden_s": self.overlap_hidden_s,
            "per_category_seconds": self.per_category_seconds(),
            "per_device_seconds": self.per_device_seconds(),
            "per_operator_seconds": self.per_operator(),
            "phase_seconds": dict(self.phase_seconds),
            "energy_j": self.energy.total_j if self.energy is not None else None,
            "ops": [
                {
                    "name": op.name,
                    "device": op.device,
                    "category": op.category,
                    "seconds": op.seconds,
                }
                for op in self.ops
            ],
        }
