"""Execution reports produced by the inference engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..pim.energy import EnergyReport


@dataclass(frozen=True)
class OpLatency:
    """Latency of one operator execution, tagged for breakdowns."""

    name: str
    device: str  # "host" | "pim"
    category: str  # "lut" | "ccs" | "gemm" | "attention" | "elementwise"
    seconds: float


@dataclass
class EngineReport:
    """Roll-up of one model inference on one engine."""

    engine: str
    model: str
    ops: List[OpLatency] = field(default_factory=list)
    energy: EnergyReport = None
    #: Latency hidden by host/PIM pipelining (0 in the sequential system).
    overlap_hidden_s: float = 0.0

    @property
    def total_s(self) -> float:
        return sum(op.seconds for op in self.ops) - self.overlap_hidden_s

    @property
    def host_s(self) -> float:
        return sum(op.seconds for op in self.ops if op.device == "host")

    @property
    def pim_s(self) -> float:
        return sum(op.seconds for op in self.ops if op.device == "pim")

    def category_breakdown(self) -> Dict[str, float]:
        """Latency per category — the data behind paper Fig. 11-(a)."""
        out: Dict[str, float] = {}
        for op in self.ops:
            out[op.category] = out.get(op.category, 0.0) + op.seconds
        return out

    def per_operator(self) -> Dict[str, float]:
        """Latency per operator name — the data behind paper Fig. 11-(b)."""
        out: Dict[str, float] = {}
        for op in self.ops:
            out[op.name] = out.get(op.name, 0.0) + op.seconds
        return out

    @property
    def throughput_inferences_per_s(self) -> float:
        return 1.0 / self.total_s if self.total_s > 0 else float("inf")
