"""MoE FFN pricing: expert-to-rank placement and max-over-ranks makespan.

A dense LUT-NN linear layer spreads one table across every PIM rank and
all ranks work on the same output.  An MoE layer is different: each
expert's LUT tables live on one rank (capacity — E experts multiply the
table footprint), tokens fan out to their routed experts, and the layer
completes when the most-loaded rank drains its queue.  On a
bandwidth-bound LUT gather the cost of an expert is driven by how many
tokens hit it, so routing skew becomes *rank contention* and the layer
latency is the placement's makespan:

    t_layer = gate + CCS(all routed tokens) + max_r sum_{e on r} t_lut(e)

Per-expert LUT cost comes from the same Auto-Tuner used for dense layers,
run against a 1/ranks platform slice (one rank's PEs and bandwidth, via
``repro.engine.multiplex.slice_platform``).  Token counts are rounded up
to the next power of two before tuning so a sweep over routing seeds
reuses a handful of tuned shapes through the ``MappingCache`` instead of
re-searching for every count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .. import obs
from ..baselines.roofline import RooflineDevice
from ..core.codebook import LUTShape
from ..mapping.tuner import AutoTuner
from ..pim.placement import load_imbalance, place_experts, rank_loads
from ..pim.platforms import PIMPlatform
from ..workloads.routing import MoEConfig, route_tokens


def token_bucket(n: int) -> int:
    """Round a token count up to the next power of two (min 1).

    Bounds the number of distinct shapes the tuner ever sees for an MoE
    sweep: every per-expert count maps onto O(log tokens) buckets, at the
    price of a <= 2x overestimate of the per-expert work.
    """
    if n <= 0:
        raise ValueError("token count must be positive")
    return 1 << (int(n) - 1).bit_length()


def make_rank_tuner(
    platform: PIMPlatform,
    amortize_lut_distribution: bool = False,
    cache=None,
) -> AutoTuner:
    """An Auto-Tuner for a single-rank slice of ``platform``.

    One expert's LUT kernel runs on the PEs and bandwidth share of the one
    rank hosting its tables, which is exactly a ``1/ranks`` platform slice.
    """
    # Local import: multiplex imports PIMDLEngine from this package.
    from .multiplex import slice_platform

    ways = platform.ranks
    if ways <= 1:
        rank_platform = platform
    else:
        if platform.num_pes % ways:
            raise ValueError(
                f"platform {platform.name!r}: num_pes={platform.num_pes} not "
                f"divisible by ranks={ways}; cannot build a per-rank slice"
            )
        rank_platform = slice_platform(platform, ways)
    return AutoTuner(
        rank_platform,
        amortize_lut_distribution=amortize_lut_distribution,
        cache=cache,
    )


@dataclass(frozen=True)
class MoELayerCost:
    """Priced MoE FFN layer: routing, placement, and the latency split.

    ``phases`` attributes the layer the way the dense engines do — the
    critical rank's LUT stage breakdown plus ``ccs`` and ``gate`` — and
    partitions ``total_s`` exactly.
    """

    tokens: int
    hidden_dim: int
    ffn_dim: int
    moe: MoEConfig
    num_ranks: int
    expert_tokens: Tuple[int, ...]
    expert_seconds: Tuple[float, ...]
    placement: Tuple[int, ...]
    rank_seconds: Tuple[float, ...]
    lut_makespan_s: float
    lut_serial_s: float
    ccs_s: float
    gate_s: float
    imbalance_index: float
    phases: Dict[str, float] = field(hash=False)

    @property
    def total_s(self) -> float:
        """Layer latency: gate + CCS + the critical rank's LUT work."""
        return self.gate_s + self.ccs_s + self.lut_makespan_s

    @property
    def critical_rank(self) -> int:
        return max(range(self.num_ranks), key=lambda r: self.rank_seconds[r])

    def top_ranks(self, count: int = 3) -> Tuple[Tuple[int, float], ...]:
        """The ``count`` most-loaded (rank, seconds) pairs, descending."""
        order = sorted(
            range(self.num_ranks), key=lambda r: (-self.rank_seconds[r], r)
        )
        return tuple((r, self.rank_seconds[r]) for r in order[:count])


def price_moe_ffn(
    rank_tuner: AutoTuner,
    host: RooflineDevice,
    tokens: int,
    hidden_dim: int,
    ffn_dim: int,
    moe: MoEConfig,
    num_ranks: int,
    v: int,
    ct: int,
    ccs_time: Optional[Callable[[int, int], float]] = None,
) -> MoELayerCost:
    """Price one MoE FFN layer (see module docstring for the model).

    ``ccs_time(n, h)`` defaults to a small-K roofline estimate mirroring
    :meth:`repro.engine.engine.PIMDLEngine._ccs_time`; engines pass their
    own so a measured host kernel profile flows through.
    """
    if tokens <= 0:
        raise ValueError("tokens must be positive")
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if hidden_dim % v or ffn_dim % v:
        raise ValueError(
            f"hidden_dim={hidden_dim} and ffn_dim={ffn_dim} must be "
            f"divisible by V={v}"
        )
    if ccs_time is None:
        ccs_time = _roofline_ccs(host, v, ct)

    trace = route_tokens(tokens, moe)
    counts = trace.expert_token_counts()

    # Per-expert LUT work on the rank hosting it: FFN1 (h -> ffn) + FFN2
    # (ffn -> h) at the expert's routed token count, tuned on the rank
    # slice.  Idle experts cost nothing.
    expert_seconds = []
    expert_phases = []
    for n_e in counts:
        if n_e == 0:
            expert_seconds.append(0.0)
            expert_phases.append({})
            continue
        # Tune at the power-of-two bucket (bounded search reuse), then
        # scale linearly to the actual token count: the LUT gather-reduce
        # is bandwidth-bound, so cost is ~proportional to rows within a
        # bucket.  Without the rescale, bucket quantization would invent
        # up-to-2x load differences between near-equal experts and the
        # placement comparison would measure the bucketing, not the skew.
        nb = token_bucket(int(n_e))
        scale = float(n_e) / nb
        seconds = 0.0
        phases: Dict[str, float] = {}
        for h, f in ((hidden_dim, ffn_dim), (ffn_dim, hidden_dim)):
            lat = rank_tuner.tune(LUTShape(n=nb, h=h, f=f, v=v, ct=ct)).latency
            seconds += lat.total * scale
            # Same stage attribution as the dense LUT op; partitions the
            # scaled total exactly, so critical-rank phases sum to the
            # makespan.
            for phase, s in (
                ("distribution", lat.sub_index + lat.sub_lut),
                ("dma", lat.kernel_transfer),
                ("reduce", lat.kernel_reduce),
                ("gather", lat.sub_output),
                ("launch", lat.launch),
            ):
                phases[phase] = phases.get(phase, 0.0) + s * scale
        expert_seconds.append(seconds)
        expert_phases.append(phases)

    placement = place_experts(moe.placement, expert_seconds, num_ranks)
    per_rank = rank_loads(placement, expert_seconds, num_ranks)
    makespan_s = max(per_rank)
    imbalance = load_imbalance(per_rank)
    critical = max(range(num_ranks), key=lambda r: per_rank[r])

    phases = {"gate": _gate_time(host, tokens, hidden_dim, moe.num_experts)}
    # Host CCS encodes each routed token against the owning expert's
    # codebooks — once per (expert, token) slot for each of the two
    # projections.
    phases["ccs"] = sum(
        ccs_time(int(n_e), hidden_dim) + ccs_time(int(n_e), ffn_dim)
        for n_e in counts
        if n_e > 0
    )
    for e, rank in enumerate(placement):
        if rank != critical:
            continue
        for phase, s in expert_phases[e].items():
            phases[phase] = phases.get(phase, 0.0) + s

    registry = obs.get_registry()
    registry.counter("moe.layers_priced").inc()
    registry.counter("moe.tokens_routed").inc(trace.tokens * moe.top_k)
    expert_hist = registry.histogram("moe.expert_tokens")
    for n_e in counts:
        expert_hist.observe(float(n_e))
    registry.histogram("moe.rank_imbalance_index").observe(imbalance)
    registry.gauge("moe.experts").set(moe.num_experts)

    return MoELayerCost(
        tokens=tokens,
        hidden_dim=hidden_dim,
        ffn_dim=ffn_dim,
        moe=moe,
        num_ranks=num_ranks,
        expert_tokens=tuple(int(c) for c in counts),
        expert_seconds=tuple(expert_seconds),
        placement=placement,
        rank_seconds=per_rank,
        lut_makespan_s=makespan_s,
        lut_serial_s=float(sum(expert_seconds)),
        ccs_s=phases["ccs"],
        gate_s=phases["gate"],
        imbalance_index=imbalance,
        phases=phases,
    )


def _gate_time(host: RooflineDevice, tokens: int, h: int, experts: int) -> float:
    """The (N, H) x (H, E) gate projection plus top-k selection, on host."""
    gemm_flops = 2.0 * tokens * h * experts
    gemm_bytes = (tokens * h + h * experts + tokens * experts) * 4.0
    select = host.op_time(tokens * experts, 2.0 * tokens * experts * 4.0)
    return host.op_time(gemm_flops, gemm_bytes) + select


def _roofline_ccs(
    host: RooflineDevice, v: int, ct: int
) -> Callable[[int, int], float]:
    """Default CCS estimate (mirrors ``PIMDLEngine._ccs_time``)."""

    def ccs(n: int, h: int) -> float:
        cb = h // v
        distance = host.small_k_gemm_time(n * cb, v, ct)
        argmin_bytes = n * cb * ct * 4.0 + n * cb
        argmin = host.op_time(n * cb * ct, argmin_bytes)
        return distance + argmin

    return ccs
