"""PIM-DL inference engine and comparison engines."""

from .decode import (DecodeReport, GEMVDecodeEngine, HostDecodeEngine,
                     LUTDecodeEngine, kv_cache_bytes)
from .disagg import (KV_TRANSFER_PHASE, PLACEMENT_POLICIES, ColocatedPlacement,
                     DisaggregatedPlacement, DisaggScheduler, DisaggSweepPoint,
                     HostPrefillPool, HybridPlacement, KVTransferModel,
                     PlacementPolicy, PoolSnapshot, disagg_load_sweep,
                     make_placement)
from .engine import GEMMPIMEngine, HostEngine, PIMDLEngine
from .graph import (ATTENTION, ELEMENTWISE, LINEAR, MOE, OperatorSpec,
                    layer_graph, model_graph)
from .moe import MoELayerCost, make_rank_tuner, price_moe_ffn, token_bucket
from .report import EngineReport, OpLatency
from .multiplex import (SharingPoint, best_latency, best_throughput,
                        slice_platform, space_sharing_sweep)
from .queueing import QueueStats, generate_arrivals, load_sweep, simulate_queue
from .scheduler import (EngineCostModel, Request, RequestScheduler,
                        RequestStats, ScheduleResult, SchedulerPolicy,
                        SweepPoint, poisson_requests, scheduler_load_sweep)
from .serving import GenerationServer, ServingReport

__all__ = [
    "PIMDLEngine",
    "GEMMPIMEngine",
    "HostEngine",
    "OperatorSpec",
    "layer_graph",
    "model_graph",
    "LINEAR",
    "ATTENTION",
    "ELEMENTWISE",
    "MOE",
    "MoELayerCost",
    "price_moe_ffn",
    "make_rank_tuner",
    "token_bucket",
    "EngineReport",
    "OpLatency",
    "DecodeReport",
    "GEMVDecodeEngine",
    "LUTDecodeEngine",
    "HostDecodeEngine",
    "GenerationServer",
    "ServingReport",
    "SharingPoint",
    "slice_platform",
    "space_sharing_sweep",
    "best_throughput",
    "best_latency",
    "QueueStats",
    "simulate_queue",
    "load_sweep",
    "generate_arrivals",
    "Request",
    "RequestStats",
    "RequestScheduler",
    "SchedulerPolicy",
    "ScheduleResult",
    "SweepPoint",
    "EngineCostModel",
    "poisson_requests",
    "scheduler_load_sweep",
    "kv_cache_bytes",
    "KV_TRANSFER_PHASE",
    "PLACEMENT_POLICIES",
    "KVTransferModel",
    "PoolSnapshot",
    "PlacementPolicy",
    "ColocatedPlacement",
    "DisaggregatedPlacement",
    "HybridPlacement",
    "make_placement",
    "HostPrefillPool",
    "DisaggScheduler",
    "DisaggSweepPoint",
    "disagg_load_sweep",
]
