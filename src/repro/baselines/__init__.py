"""Host baselines: CPU/GPU roofline devices used by the evaluation."""

from .roofline import (
    RooflineDevice,
    a2_gpu,
    cpu_server_fp32,
    cpu_server_int8,
    prefill_host,
    v100_gpu,
    wimpy_host,
)

__all__ = [
    "RooflineDevice",
    "cpu_server_fp32",
    "cpu_server_int8",
    "prefill_host",
    "wimpy_host",
    "v100_gpu",
    "a2_gpu",
]
