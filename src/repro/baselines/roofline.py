"""Roofline cost model for host processors (CPU/GPU).

End-to-end comparisons in paper Figs. 10, 14, and 15 need host-side
latencies for GEMM-based inference and for the operators PIM-DL keeps on the
host (CCS, attention, element-wise).  A classic roofline —
``t = max(flops / peak, bytes / bandwidth) + overhead`` — with the paper's
published peak numbers reproduces the relative positions without modeling a
specific BLAS library.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflineDevice:
    """A host device characterized by compute and bandwidth rooflines.

    Attributes
    ----------
    peak_flops:
        Sustained GEMM throughput (FLOP/s) — peak scaled by an achievable
        efficiency, so ``gemm_time`` needs no extra fudge factor.
    mem_bandwidth:
        Sustained memory bandwidth (bytes/s) for streaming operators.
    op_overhead_s:
        Fixed per-operator launch/dispatch latency.
    power_w:
        Package power draw while busy, used by the energy model.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    op_overhead_s: float
    power_w: float

    def op_time(self, flops: float, bytes_moved: float) -> float:
        """Roofline latency of an operator with the given footprint."""
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes must be non-negative")
        compute = flops / self.peak_flops if self.peak_flops > 0 else 0.0
        memory = bytes_moved / self.mem_bandwidth if self.mem_bandwidth > 0 else 0.0
        return max(compute, memory) + self.op_overhead_s

    def gemm_time(self, n: int, h: int, f: int, dtype_bytes: int = 4) -> float:
        """Dense (N,H)x(H,F) GEMM: 2NHF flops, one pass over A/B/C."""
        flops = 2.0 * n * h * f
        bytes_moved = (n * h + h * f + n * f) * dtype_bytes
        return self.op_time(flops, bytes_moved)

    def small_k_gemm_time(
        self, n: int, k: int, m: int, dtype_bytes: int = 4, knee: int = 10
    ) -> float:
        """GEMM with a tiny inner dimension ``k`` (e.g. CCS distance calc).

        With K as small as the LUT-NN sub-vector length (V = 2–4), each
        output element amortizes almost no compute over its loads, so
        sustained throughput collapses to roughly ``peak * k / (k + knee)``
        — the reason the paper keeps CCS on the host but it still accounts
        for ~20% of PIM-DL's end-to-end latency (Fig. 11-(a)).
        """
        if k <= 0:
            raise ValueError("inner dim must be positive")
        efficiency = k / (k + knee)
        flops = 2.0 * n * k * m
        bytes_moved = (n * k + k * m + n * m) * dtype_bytes
        compute = flops / (self.peak_flops * efficiency)
        memory = bytes_moved / self.mem_bandwidth
        return max(compute, memory) + self.op_overhead_s

    def elementwise_time(self, elements: int, dtype_bytes: int = 4) -> float:
        """Streaming element-wise op (read + write each element once)."""
        return self.op_time(elements, 2.0 * elements * dtype_bytes)


def cpu_server_fp32() -> RooflineDevice:
    """Dual-socket Xeon Gold 5218 running FP32 GGML (paper Section 6.1).

    The *sustained* GEMM throughput is calibrated to what the paper's
    end-to-end numbers imply rather than the theoretical roofline: BERT-base
    (batch 64, seq 512, ~6.2 TFLOP) finishing ~2.05x slower than PIM-DL's
    "tens of seconds" (Sections 5.3, 6.3) puts GGML FP32 in the ~85 GFLOPS
    range on this machine — far below the 2.36 TFLOPS AVX-512 peak, which
    GGML's AVX2 kernels of that era never approached on large batched GEMM.
    Eight DDR4-2666 channels give ~170 GB/s sustained.
    """
    return RooflineDevice(
        name="CPU FP32 (2x Xeon Gold 5218)",
        peak_flops=85e9,
        mem_bandwidth=170e9,
        op_overhead_s=5e-6,
        power_w=2 * 125.0 + 50.0,  # two 125 W TDP sockets + DRAM
    )


def cpu_server_int8() -> RooflineDevice:
    """Same server with AVX2 INT8 kernels — ~1.8x FP32 GEMM throughput.

    The ratio is what paper Fig. 10 implies: PIM-DL (V=2) is 2.05x over
    FP32 but 1.14x over INT8 => INT8 ~ 1.8x FP32.
    """
    fp32 = cpu_server_fp32()
    return RooflineDevice(
        name="CPU INT8 (2x Xeon Gold 5218)",
        peak_flops=fp32.peak_flops * 1.8,
        mem_bandwidth=fp32.mem_bandwidth,
        op_overhead_s=fp32.op_overhead_s,
        power_w=fp32.power_w,
    )


def prefill_host() -> RooflineDevice:
    """A compute-configured prefill device for disaggregated serving.

    The prefill pool of a disaggregated deployment
    (:class:`~repro.engine.disagg.DisaggScheduler`) wants the opposite
    balance from the PIM decode pool: batched prompt GEMMs are
    compute-dense, so this device models the serving host with *all four*
    DDR4 channels per socket carrying conventional DIMMs (no PIM-DIMMs
    stealing slots as in :func:`wimpy_host`) and INT8 GEMM kernels at the
    :func:`cpu_server_int8` calibration — the Cho et al. split of keeping
    compute-bound phases near the host while the memory-side accelerator
    owns the bandwidth-bound ones.
    """
    int8 = cpu_server_int8()
    return RooflineDevice(
        name="Prefill host (2x Xeon Gold 5218, 8ch DDR4)",
        peak_flops=int8.peak_flops,
        mem_bandwidth=int8.mem_bandwidth,
        op_overhead_s=int8.op_overhead_s,
        power_w=int8.power_w,
    )


def wimpy_host() -> RooflineDevice:
    """The Xeon 4210 host that drives the UPMEM DIMMs (paper Table 3).

    Dual 10-core 2.2 GHz sockets.  Fig. 4's Intel-Advisor roofline peak is
    795 GOPS, but the GGML host operators sustain ~75 GFLOPS (same
    calibration basis as :func:`cpu_server_fp32`).  Only two DDR4 channels
    per socket carry conventional DIMMs — the other two hold PIM-DIMMs
    (Section 6.1) — so sustained host bandwidth is ~35 GB/s.
    """
    return RooflineDevice(
        name="Host CPU (2x Xeon 4210)",
        peak_flops=75e9,
        mem_bandwidth=35e9,
        op_overhead_s=5e-6,
        power_w=2 * 85.0 + 30.0,
    )


def v100_gpu() -> RooflineDevice:
    """NVIDIA V100 (DGX-1) running FP32 PyTorch (paper Section 6.7).

    The paper quotes 130 TFLOPS (tensor-core peak); PyTorch FP32 GEMMs on
    transformer shapes sustain ~15% of it, and the small-batch shapes of
    Fig. 15 are weight-streaming bound, where cuBLAS runs near the 900 GB/s
    HBM2 peak.
    """
    return RooflineDevice(
        name="NVIDIA V100 FP32",
        peak_flops=130e12 * 0.15,
        mem_bandwidth=900e9 * 0.97,
        op_overhead_s=8e-6,
        power_w=300.0,
    )


def a2_gpu() -> RooflineDevice:
    """NVIDIA A2 — the wimpy host of the HBM-PIM/AiM platforms (Table 3)."""
    return RooflineDevice(
        name="NVIDIA A2",
        peak_flops=4.5e12 * 0.5,
        mem_bandwidth=200e9 * 0.75,
        op_overhead_s=8e-6,
        power_w=60.0,
    )
