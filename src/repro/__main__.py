"""Entry point: ``python -m repro <subcommand>``."""

import sys

from .cli import main

sys.exit(main())
