"""Seeded token-to-expert routing traces for MoE serving workloads.

The serving simulator does not run a trained gate; it needs the *routing
distribution* the gate would produce, because on a bandwidth-bound LUT
engine the first-order MoE effect is load: how many tokens each expert's
LUT gather must serve, and therefore how much work lands on whichever PIM
rank hosts that expert.  Two seeded generators cover the regimes the MoE
literature reports:

* ``uniform`` — every expert equally likely (the load-balanced ideal that
  auxiliary losses push toward);
* ``zipf`` — expert popularity follows a Zipf law with exponent ``s``
  (expert 0 hottest), the skewed regime observed without (or despite)
  balancing losses, where a few hot experts dominate token traffic.

Both draw ``top_k`` *distinct* experts per token via Gumbel top-k sampling
(without replacement, marginals proportional to the popularity weights),
so a trace is reproducible from ``(kind, tokens, num_experts, top_k,
s, seed)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Routing distributions ``MoEConfig.routing`` accepts.
ROUTING_KINDS = ("uniform", "zipf")

#: Expert-placement strategies ``MoEConfig.placement`` accepts (implemented
#: in ``repro.pim.placement``; mirrored here so the config validates
#: without importing the pim package).
PLACEMENT_KINDS = ("round-robin", "balanced")


@dataclass(frozen=True)
class MoEConfig:
    """MoE serving-workload description attached to a transformer config.

    Frozen and hashable so engines can memoize per-layer pricing on it.
    """

    num_experts: int
    top_k: int = 2
    routing: str = "uniform"
    zipf_s: float = 1.2
    seed: int = 0
    placement: str = "balanced"

    def __post_init__(self):
        if self.num_experts is None or self.num_experts <= 0:
            raise ValueError("num_experts must be positive")
        if self.top_k is None or self.top_k <= 0 or self.top_k > self.num_experts:
            raise ValueError("top_k must be in [1, num_experts]")
        if self.routing not in ROUTING_KINDS:
            raise ValueError(
                f"routing must be one of {ROUTING_KINDS}, got {self.routing!r}"
            )
        if self.zipf_s is None or self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.seed is None or self.seed < 0:
            raise ValueError("seed must be a non-negative int")
        if self.placement not in PLACEMENT_KINDS:
            raise ValueError(
                f"placement must be one of {PLACEMENT_KINDS}, got {self.placement!r}"
            )


@dataclass(frozen=True, eq=False)
class RoutingTrace:
    """A concrete token-to-expert assignment.

    ``assignments`` has shape (tokens, top_k); each row holds ``top_k``
    distinct expert ids.
    """

    num_experts: int
    top_k: int
    assignments: np.ndarray

    @property
    def tokens(self) -> int:
        return int(self.assignments.shape[0])

    def expert_token_counts(self) -> np.ndarray:
        """(num_experts,) tokens routed to each expert (slot counts)."""
        return np.bincount(self.assignments.ravel(), minlength=self.num_experts)

    def skew_index(self) -> float:
        """Load imbalance of the token counts, ``1 - mean/max`` in [0, 1)."""
        counts = self.expert_token_counts()
        peak = counts.max()
        if peak == 0:
            return 0.0
        return float(1.0 - counts.mean() / peak)


def _gumbel_top_k(
    weights: np.ndarray, tokens: int, top_k: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``top_k`` distinct experts per token, marginals ~ ``weights``."""
    keys = np.log(weights)[None, :] + rng.gumbel(size=(tokens, weights.size))
    # Stable argsort keeps traces reproducible across numpy versions.
    return np.argsort(-keys, axis=1, kind="stable")[:, :top_k]


def uniform_routing(
    tokens: int, num_experts: int, top_k: int = 1, seed: int = 0
) -> RoutingTrace:
    """Every expert equally popular (balanced-gate regime)."""
    _validate_trace_args(tokens, num_experts, top_k, seed)
    rng = np.random.default_rng(seed)
    weights = np.full(num_experts, 1.0 / num_experts)
    return RoutingTrace(num_experts, top_k, _gumbel_top_k(weights, tokens, top_k, rng))


def zipf_routing(
    tokens: int, num_experts: int, top_k: int = 1, s: float = 1.2, seed: int = 0
) -> RoutingTrace:
    """Zipf-popular experts: expert ``e`` has weight ``(e+1)^-s``."""
    _validate_trace_args(tokens, num_experts, top_k, seed)
    if s is None or s <= 0:
        raise ValueError("zipf exponent s must be positive")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, num_experts + 1, dtype=np.float64)) ** (-s)
    weights /= weights.sum()
    return RoutingTrace(num_experts, top_k, _gumbel_top_k(weights, tokens, top_k, rng))


def route_tokens(tokens: int, moe: MoEConfig) -> RoutingTrace:
    """Generate the routing trace ``moe`` describes for ``tokens`` tokens."""
    if moe.routing == "uniform":
        return uniform_routing(tokens, moe.num_experts, moe.top_k, seed=moe.seed)
    return zipf_routing(
        tokens, moe.num_experts, moe.top_k, s=moe.zipf_s, seed=moe.seed
    )


def _validate_trace_args(tokens: int, num_experts: int, top_k: int, seed: int):
    if tokens is None or tokens <= 0:
        raise ValueError("tokens must be positive")
    if num_experts is None or num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if top_k is None or top_k <= 0 or top_k > num_experts:
        raise ValueError("top_k must be in [1, num_experts]")
    if seed is None or seed < 0:
        raise ValueError("seed must be a non-negative int")
