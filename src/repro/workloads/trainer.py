"""Generic training loop used to pre-train the scaled-down workload models.

The paper starts from pre-trained BERT/ViT checkpoints; here the equivalent
is training the scaled-down :class:`~repro.nn.models.TextClassifier` /
:class:`~repro.nn.models.PatchClassifier` from scratch on the synthetic
tasks until they reach high accuracy, then handing them to the LUT-NN
converter exactly as the paper hands over its checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..autograd import Adam, cross_entropy
from ..core.calibration import evaluate_accuracy
from ..nn.module import Module
from .synthetic import Batch


@dataclass
class TrainingHistory:
    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_classifier(
    model: Module,
    batches: Sequence[Batch],
    epochs: int = 10,
    lr: float = 1e-3,
    eval_batches: Sequence[Batch] = None,
) -> TrainingHistory:
    """Train ``model`` with Adam + cross-entropy over ``batches``."""
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainingHistory()
    model.train()
    for _ in range(epochs):
        epoch_losses = []
        for inputs, labels in batches:
            logits = model(inputs)
            loss = cross_entropy(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        history.losses.append(float(np.mean(epoch_losses)))
        if eval_batches is not None:
            history.accuracies.append(evaluate_accuracy(model, eval_batches))
    return history
