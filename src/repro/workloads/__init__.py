"""Workloads: model configurations, synthetic tasks, and training."""

from .configs import (
    EVAL_MODELS,
    OPT_HIDDEN_DIMS,
    TransformerConfig,
    bert_base,
    bert_large,
    opt_style,
    pad_seq_for_pim,
    vit_base,
    vit_huge,
)
from .glue_suite import (
    CopyDetectionTask,
    SentimentTask,
    TopicTask,
    default_suite,
    evaluate_suite,
)
from .routing import (
    MoEConfig,
    PLACEMENT_KINDS,
    ROUTING_KINDS,
    RoutingTrace,
    route_tokens,
    uniform_routing,
    zipf_routing,
)
from .synthetic import (
    SyntheticPatchTask,
    SyntheticTextTask,
    as_batches,
    sample_batches,
)
from .trainer import TrainingHistory, train_classifier

__all__ = [
    "TransformerConfig",
    "bert_base",
    "bert_large",
    "vit_base",
    "vit_huge",
    "opt_style",
    "EVAL_MODELS",
    "OPT_HIDDEN_DIMS",
    "SyntheticTextTask",
    "SyntheticPatchTask",
    "as_batches",
    "sample_batches",
    "train_classifier",
    "TrainingHistory",
    "pad_seq_for_pim",
    "MoEConfig",
    "RoutingTrace",
    "ROUTING_KINDS",
    "PLACEMENT_KINDS",
    "route_tokens",
    "uniform_routing",
    "zipf_routing",
    "SentimentTask",
    "TopicTask",
    "CopyDetectionTask",
    "default_suite",
    "evaluate_suite",
]
