"""Model and workload configurations used throughout the evaluation.

Full-size shapes match the paper's Section 6.1 setup: BERT-base/large on
sequence length 512 with batch 64, and ViT-huge on 224x224x3 images with
patch 14 (sequence 257 padded to 264 "to evenly partition the workload among
PIM PEs") and batch 128.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture + serving shape of one transformer workload."""

    name: str
    num_layers: int
    hidden_dim: int
    num_heads: int
    ffn_dim: int
    seq_len: int
    batch_size: int

    def __post_init__(self) -> None:
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError("hidden_dim must divide evenly into heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    @property
    def tokens(self) -> int:
        """N = batch x sequence — the row count of every linear layer."""
        return self.batch_size * self.seq_len

    def linear_layer_shapes(self) -> List[Tuple[str, int, int]]:
        """The four LUT-convertible linears per block (paper Fig. 6-(b)).

        Returns (name, H, F) with the QKV projections fused (H -> 3H), as
        the paper does for both the roofline analysis and the PIM offload.
        """
        h = self.hidden_dim
        return [
            ("QKV", h, 3 * h),
            ("O", h, h),
            ("FFN1", h, self.ffn_dim),
            ("FFN2", self.ffn_dim, h),
        ]

    def with_(self, **kwargs) -> "TransformerConfig":
        return replace(self, **kwargs)


def bert_base(seq_len: int = 512, batch_size: int = 64) -> TransformerConfig:
    return TransformerConfig(
        name="BERT-base",
        num_layers=12,
        hidden_dim=768,
        num_heads=12,
        ffn_dim=3072,
        seq_len=seq_len,
        batch_size=batch_size,
    )


def bert_large(seq_len: int = 512, batch_size: int = 64) -> TransformerConfig:
    return TransformerConfig(
        name="BERT-large",
        num_layers=24,
        hidden_dim=1024,
        num_heads=16,
        ffn_dim=4096,
        seq_len=seq_len,
        batch_size=batch_size,
    )


def vit_base(seq_len: int = 200, batch_size: int = 128) -> TransformerConfig:
    return TransformerConfig(
        name="ViT-base",
        num_layers=12,
        hidden_dim=768,
        num_heads=12,
        ffn_dim=3072,
        seq_len=seq_len,
        batch_size=batch_size,
    )


def vit_huge(seq_len: int = 264, batch_size: int = 128) -> TransformerConfig:
    """ViT-huge: 224^2 image, patch 14 -> 257 tokens, padded to 264 (§6.3)."""
    return TransformerConfig(
        name="ViT-huge",
        num_layers=32,
        hidden_dim=1280,
        num_heads=16,
        ffn_dim=5120,
        seq_len=seq_len,
        batch_size=batch_size,
    )


def opt_style(hidden_dim: int, seq_len: int = 512, batch_size: int = 64) -> TransformerConfig:
    """Single-layer config with an OPT-family hidden dim (paper Fig. 12-(d))."""
    heads = max(hidden_dim // 64, 1)
    return TransformerConfig(
        name=f"OPT-h{hidden_dim}",
        num_layers=1,
        hidden_dim=hidden_dim,
        num_heads=heads,
        ffn_dim=4 * hidden_dim,
        seq_len=seq_len,
        batch_size=batch_size,
    )


#: The three throughput-evaluation workloads of paper Section 6.1.
EVAL_MODELS: Dict[str, TransformerConfig] = {
    "bert-base": bert_base(),
    "bert-large": bert_large(),
    "vit-huge": vit_huge(),
}

#: Hidden-dim sweep of Figs. 12-(d), 14, 15 (from the OPT model family).
OPT_HIDDEN_DIMS = (1024, 2048, 2560, 4096, 5120)


def pad_seq_for_pim(config: TransformerConfig, num_pes: int = 1024) -> TransformerConfig:
    """Pad the sequence length so tokens divide evenly among the PIM PEs.

    The paper pads ViT-huge's 257-token sequence to 264 "to evenly
    partition the workload among PIM PEs" (§6.3); this helper derives that
    choice: the smallest sequence length >= the configured one such that
    ``batch * seq`` is a multiple of ``num_pes`` (so every N-partition of
    the index matrix is balanced, limitation L3 of §5.1).
    """
    if num_pes <= 0:
        raise ValueError("num_pes must be positive")
    seq = config.seq_len
    while (config.batch_size * seq) % num_pes != 0:
        seq += 1
    if seq == config.seq_len:
        return config
    return config.with_(seq_len=seq)
