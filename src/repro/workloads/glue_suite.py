"""A GLUE-style suite of synthetic NLP tasks with distinct structure.

The paper's Table 4 spans eight GLUE tasks that stress different skills
(inference, similarity, acceptability, sentiment).  This module provides a
small suite of synthetic analogues with *structurally different* decision
rules, so calibration experiments can be averaged over heterogeneous tasks
the way the paper averages over GLUE:

* :class:`SentimentTask` ("SST-2-like") — binary label from the balance of
  positive-slice vs negative-slice tokens (bag-of-words counting).
* :class:`TopicTask` ("MNLI-like", single-segment) — k-way label from a
  topic-peaked token distribution (re-export of
  :class:`~repro.workloads.synthetic.SyntheticTextTask`).
* :class:`CopyDetectionTask` ("RTE-like") — binary label: does the second
  segment repeat tokens of the first (entailment-as-copying)?  Requires
  cross-position comparison, i.e. attention.

All tasks emit (tokens, labels) with token 0 reserved for [CLS], matching
:class:`~repro.nn.models.TextClassifier`'s conventions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .synthetic import Batch, SyntheticTextTask

TopicTask = SyntheticTextTask


class SentimentTask:
    """Binary classification by token-slice majority (SST-2-like).

    The vocabulary (minus [CLS]) splits into a positive and a negative
    slice; a sample's label is which slice contributes more tokens.  The
    margin knob controls how lopsided the draws are.
    """

    num_classes = 2

    def __init__(
        self,
        vocab_size: int = 64,
        seq_len: int = 16,
        margin: float = 0.7,
        seed: int = 0,
    ):
        if vocab_size < 5:
            raise ValueError("need at least two tokens per sentiment slice")
        if not 0.5 < margin <= 1.0:
            raise ValueError("margin must be in (0.5, 1]")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.margin = margin
        self.rng = np.random.default_rng(seed)
        usable = vocab_size - 1
        self._positive = np.arange(1, 1 + usable // 2)
        self._negative = np.arange(1 + usable // 2, vocab_size)

    def sample(self, n: int) -> Batch:
        labels = self.rng.integers(0, 2, size=n)
        tokens = np.empty((n, self.seq_len), dtype=np.int64)
        tokens[:, 0] = 0
        body = self.seq_len - 1
        for i, label in enumerate(labels):
            majority, minority = (
                (self._positive, self._negative)
                if label == 1
                else (self._negative, self._positive)
            )
            from_majority = self.rng.random(body) < self.margin
            draw = np.where(
                from_majority,
                self.rng.choice(majority, size=body),
                self.rng.choice(minority, size=body),
            )
            tokens[i, 1:] = draw
        return tokens, labels


class CopyDetectionTask:
    """Binary entailment-as-copying (RTE-like).

    The sequence holds two segments.  Positive samples copy a random subset
    of first-segment tokens into the second segment; negative samples draw
    the second segment independently.  Solving it requires comparing
    positions across segments — a genuinely attention-bound rule.
    """

    num_classes = 2

    def __init__(
        self,
        vocab_size: int = 64,
        seq_len: int = 17,
        copy_fraction: float = 0.8,
        seed: int = 0,
    ):
        if (seq_len - 1) % 2 != 0:
            raise ValueError("seq_len - 1 must be even (two equal segments)")
        if not 0.0 < copy_fraction <= 1.0:
            raise ValueError("copy_fraction must be in (0, 1]")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.segment = (seq_len - 1) // 2
        self.copy_fraction = copy_fraction
        self.rng = np.random.default_rng(seed)

    def sample(self, n: int) -> Batch:
        labels = self.rng.integers(0, 2, size=n)
        tokens = np.empty((n, self.seq_len), dtype=np.int64)
        tokens[:, 0] = 0
        seg = self.segment
        for i, label in enumerate(labels):
            first = self.rng.integers(1, self.vocab_size, size=seg)
            tokens[i, 1 : 1 + seg] = first
            second = self.rng.integers(1, self.vocab_size, size=seg)
            if label == 1:
                copy_mask = self.rng.random(seg) < self.copy_fraction
                second = np.where(copy_mask, self.rng.permutation(first), second)
            tokens[i, 1 + seg :] = second
        return tokens, labels


def default_suite(seed: int = 0) -> Dict[str, object]:
    """The standard three-task suite used by the multi-task harness."""
    return {
        "sentiment": SentimentTask(seed=seed),
        "topic": TopicTask(num_classes=6, peak_mass=0.6, seed=seed + 1),
        "copy": CopyDetectionTask(seed=seed + 2),
    }


def evaluate_suite(
    build_and_eval,
    tasks: Dict[str, object],
) -> List[Tuple[str, float]]:
    """Run ``build_and_eval(task_name, task)`` per task, collecting scores.

    ``build_and_eval`` is any callable returning an accuracy in [0, 1] —
    typically: train a model on the task, convert/calibrate, and evaluate.
    """
    results = []
    for name, task in tasks.items():
        score = float(build_and_eval(name, task))
        if not 0.0 <= score <= 1.0:
            raise ValueError(f"score for {name!r} out of range: {score}")
        results.append((name, score))
    return results
