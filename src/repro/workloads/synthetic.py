"""Synthetic calibration/evaluation tasks standing in for GLUE and CIFAR.

The paper's accuracy experiments (Tables 4–5) need datasets; this offline
environment has none, so two generators provide classification tasks with
the property that matters for LUT-NN: activations with block-wise semantic
similarity that k-means codebooks can capture (paper §3, "the features of
different input activation matrices have block-wise semantic similarity").

* :class:`SyntheticTextTask` — topic-model token sequences ("GLUE-like"):
  each class owns a token distribution over a slice of the vocabulary.
* :class:`SyntheticPatchTask` — prototype image patches plus noise
  ("CIFAR-like"): each class owns per-patch prototype vectors.

What the benchmarks then reproduce is the *relative* accuracy ordering
(original ~= eLUT-NN >> baseline LUT-NN at full-layer replacement), not the
absolute GLUE/CIFAR numbers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

Batch = Tuple[np.ndarray, np.ndarray]


class SyntheticTextTask:
    """Topic-model sequence classification.

    Each class ``c`` draws tokens from a smoothed distribution peaked on its
    own vocabulary slice; a transformer classifies by aggregating token
    identity evidence — the same inductive structure as sentence-level GLUE
    tasks.  Token 0 is reserved as [CLS].
    """

    def __init__(
        self,
        vocab_size: int = 64,
        seq_len: int = 16,
        num_classes: int = 4,
        peak_mass: float = 0.85,
        seed: int = 0,
    ):
        if vocab_size < num_classes + 1:
            raise ValueError("need at least one vocab slice per class")
        self.vocab_size = vocab_size
        self.seq_len = seq_len
        self.num_classes = num_classes
        self.rng = np.random.default_rng(seed)

        usable = vocab_size - 1  # token 0 reserved for [CLS]
        slice_size = usable // num_classes
        self._distributions = np.full(
            (num_classes, vocab_size), (1.0 - peak_mass) / usable
        )
        self._distributions[:, 0] = 0.0
        for c in range(num_classes):
            lo = 1 + c * slice_size
            hi = lo + slice_size
            self._distributions[c, lo:hi] += peak_mass / slice_size
        self._distributions /= self._distributions.sum(axis=1, keepdims=True)

    def sample(self, n: int) -> Batch:
        """Draw ``n`` (tokens, label) pairs; tokens[:, 0] is [CLS]."""
        labels = self.rng.integers(0, self.num_classes, size=n)
        tokens = np.empty((n, self.seq_len), dtype=np.int64)
        tokens[:, 0] = 0
        for i, c in enumerate(labels):
            tokens[i, 1:] = self.rng.choice(
                self.vocab_size, size=self.seq_len - 1, p=self._distributions[c]
            )
        return tokens, labels


class SyntheticPatchTask:
    """Prototype-based patch classification ("CIFAR-like").

    Class ``c`` has a fixed prototype for every patch position; samples are
    prototypes plus Gaussian noise.  The per-position prototype structure
    gives activations exactly the column-wise redundancy LUT-NN exploits.
    """

    def __init__(
        self,
        num_patches: int = 9,
        patch_dim: int = 12,
        num_classes: int = 4,
        noise: float = 0.35,
        seed: int = 0,
    ):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.num_patches = num_patches
        self.patch_dim = patch_dim
        self.num_classes = num_classes
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        self._prototypes = self.rng.normal(
            0.0, 1.0, size=(num_classes, num_patches, patch_dim)
        )

    def sample(self, n: int) -> Batch:
        labels = self.rng.integers(0, self.num_classes, size=n)
        patches = self._prototypes[labels] + self.rng.normal(
            0.0, self.noise, size=(n, self.num_patches, self.patch_dim)
        )
        return patches, labels


def as_batches(inputs: np.ndarray, labels: np.ndarray, batch_size: int) -> List[Batch]:
    """Split (inputs, labels) into a list of equally ordered batches."""
    if len(inputs) != len(labels):
        raise ValueError("inputs and labels must align")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return [
        (inputs[i : i + batch_size], labels[i : i + batch_size])
        for i in range(0, len(inputs), batch_size)
    ]


def sample_batches(task, n: int, batch_size: int) -> List[Batch]:
    """Draw ``n`` examples from ``task`` and batch them."""
    inputs, labels = task.sample(n)
    return as_batches(inputs, labels, batch_size)
