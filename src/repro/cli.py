"""Command-line interface for the PIM-DL reproduction.

Subcommands mirror the offline workflow of paper Fig. 5:

* ``platforms`` — list the modeled DRAM-PIM platforms and their constants;
* ``tune`` — run the Auto-Tuner (Algorithm 1) for one LUT workload shape,
  optionally persisting the mapping to a JSON store (``--store``) and/or a
  cross-run cache directory (``--cache DIR``); ``--jobs N`` shards the
  search across worker processes with bit-identical results;
* ``simulate`` — run the event-level simulator for a shape (tuned or with
  explicit mapping parameters) and print the latency breakdown;
  ``--overlap`` double-buffers the micro-kernel loop so tile transfers
  overlap the previous tile's lookup/reduce;
* ``flops`` — op-count / reduction analytics for a GEMM shape (Fig. 3);
* ``compare`` — end-to-end engine comparison for a named model (Fig. 10);
  ``--measure-host`` times this machine's real CCS kernel and substitutes
  it for the host roofline;
* ``kernels`` — benchmark + parity-check the :mod:`repro.kernels` host
  kernels (``--dtype``, ``--block-rows``, ``--int8``) against the frozen
  pre-kernel references; ``--search [--schedule-cache DIR]`` instead runs
  the measured kernel-schedule search (block sizes, gather strategy) and
  persists the winner;
* ``trace-export`` — tune + simulate one shape and write the telemetry as
  a Chrome-trace file (viewable in Perfetto / ``chrome://tracing``);
* ``serve-sim`` — discrete-event continuous-batching serving simulation
  (:mod:`repro.engine.scheduler`): a Poisson/uniform arrival stream is
  scheduled into the running batch with chunked-prefill and admission
  controls, reporting TTFT/TPOT/e2e P50/P95/P99, SLO goodput, and batch
  occupancy; ``--compare-fifo`` runs the same stream through the
  single-server FIFO discipline for the batching-vs-FIFO comparison;
* ``faults`` — serve generation requests under an injected fault scenario
  (dead ranks, stragglers, transfer timeouts, LUT bit flips — from flags
  or a ``--scenario`` JSON file) and report how the retry → remap → host
  fallback ladder degraded each request, plus a functional parity check of
  the recovered kernel against the trusted host kernel.
* ``bench`` — run the modeled/measured benchmark suites against the
  persistent baseline store (``run`` appends, ``compare`` gates with
  median+MAD regression detection and optional ``--json`` BENCH output,
  ``list`` shows recorded histories).

Observability flags: ``platforms``/``flops``/``compare`` take ``--json``
for machine-readable output; ``tune``/``simulate``/``compare`` take
``--emit-trace PATH`` (Chrome-trace export of the run's spans, engine
timelines, and micro-kernel events) and ``--metrics-json PATH`` (snapshot
of the default :class:`~repro.obs.MetricsRegistry`); ``tune --progress N``
prints search progress every N candidates.  ``simulate --profile [TRACE]``
prints the per-phase :class:`~repro.obs.BottleneckReport` and optionally
writes a per-rank Chrome trace; ``compare --attribution`` and
``serve-sim --attribution`` print phase attribution per engine / per
request class.

Run ``python -m repro <subcommand> --help`` for the options.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import obs
from .analysis import format_table
from .core import LUTShape, flop_reduction, gemm_ops, lutnn_ops
from .mapping import AutoTuner, Mapping, MappingCache, MappingStore, estimate_latency
from .pim import PIMSimulator, PLATFORMS, get_platform, trace_kernel
from .workloads import EVAL_MODELS


def _add_shape_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, required=True, help="index rows (batch x seq)")
    parser.add_argument("--h", type=int, required=True, help="inner dimension H")
    parser.add_argument("--f", type=int, required=True, help="output features F")
    parser.add_argument("--v", type=int, default=4, help="sub-vector length V")
    parser.add_argument("--ct", type=int, default=16, help="centroids per codebook")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-trace", metavar="PATH",
        help="write a Chrome-trace-format JSON of this run's telemetry",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH",
        help="write a JSON snapshot of the metrics registry",
    )


def _shape_from_args(args) -> LUTShape:
    return LUTShape(n=args.n, h=args.h, f=args.f, v=args.v, ct=args.ct)


def _print_json(payload) -> None:
    print(json.dumps(obs.to_jsonable(payload), indent=2, sort_keys=True))


def _finish_telemetry(
    args, reports=(), kernel_traces=(), profiles=(), clusters=(), schedules=()
) -> int:
    """Honor ``--emit-trace`` / ``--metrics-json`` at the end of a command.

    Returns a process exit code: the command's work already succeeded at
    this point, so an unwritable path must not surface as a traceback.
    """
    try:
        if getattr(args, "metrics_json", None):
            with open(args.metrics_json, "w") as fh:
                fh.write(obs.get_registry().to_json(indent=2) + "\n")
            print(f"metrics written to {args.metrics_json}", file=sys.stderr)
        if getattr(args, "emit_trace", None):
            document = obs.write_chrome_trace(
                args.emit_trace,
                spans=obs.get_tracer().finished_spans(),
                reports=reports,
                kernel_traces=kernel_traces,
                profiles=profiles,
                clusters=clusters,
                schedules=schedules,
                metrics=obs.get_registry().snapshot(),
            )
            print(
                f"chrome trace written to {args.emit_trace} "
                f"({len(document['traceEvents'])} events)",
                file=sys.stderr,
            )
    except OSError as exc:
        print(f"error: cannot write telemetry output: {exc}", file=sys.stderr)
        return 1
    return 0


def _apply_layers_override(config, layers: Optional[int]):
    """Apply ``--layers`` to a model config.

    ``--layers 0`` must error, not silently keep the model's default depth
    (the falsy-arg trap: ``if args.layers`` treats 0 like "not given").
    """
    if layers is None:
        return config
    if layers <= 0:
        raise ValueError(f"--layers must be positive, got {layers}")
    return config.with_(num_layers=layers)


def _resolve_slo_s(value_ms: Optional[float], default_s: float, flag: str) -> float:
    """An SLO flag in milliseconds, or its unloaded-headroom default.

    Resolves on *presence* (``is None``), not truthiness: ``--slo-ttft-ms 0``
    must error rather than silently fall back to the default SLO.
    """
    if value_ms is None:
        return default_s
    if value_ms <= 0:
        raise ValueError(f"{flag} must be positive, got {value_ms}")
    return value_ms / 1e3


def _maybe_trace_kernel(shape: LUTShape, mapping: Mapping, platform):
    """Trace the micro-kernel when it is within the explicit-walk bound."""
    try:
        return trace_kernel(shape, mapping, platform)
    except ValueError as exc:
        print(f"micro-kernel trace skipped: {exc}", file=sys.stderr)
        return None


def cmd_platforms(args) -> int:
    if args.json:
        _print_json({
            name: {
                "name": (p := get_platform(name)).name,
                "num_pes": p.num_pes,
                "frequency_hz": p.compute.frequency_hz,
                "buffer_bytes": p.local_memory.buffer_bytes,
                "peak_add_throughput": p.peak_add_throughput,
                "pim_power_w": p.pim_power_w,
            }
            for name in sorted(PLATFORMS)
        })
        return 0
    rows = []
    for name in sorted(PLATFORMS):
        p = get_platform(name)
        rows.append([
            name,
            p.name,
            p.num_pes,
            f"{p.compute.frequency_hz / 1e6:.0f} MHz",
            f"{p.local_memory.buffer_bytes // 1024} KB",
            f"{p.peak_add_throughput / 1e9:.0f} Gadd/s",
            f"{p.pim_power_w:.0f} W",
        ])
    print(format_table(
        ["key", "platform", "PEs", "freq", "buffer", "reduce peak", "power"], rows
    ))
    return 0


def _progress_printer(every: int):
    def callback(progress) -> None:
        if progress.evaluated % every:
            return
        best = (
            f"best {progress.best_cost * 1e3:.3f} ms"
            if progress.best_cost is not None
            else "no legal mapping yet"
        )
        print(
            f"[tune] {progress.evaluated} candidates, "
            f"{progress.pruned} pruned, {best}",
            file=sys.stderr,
        )
    return callback


def cmd_tune(args) -> int:
    platform = get_platform(args.platform)
    shape = _shape_from_args(args)
    store = MappingStore(args.store) if args.store else None
    cache = MappingCache(args.cache) if args.cache else None

    result = None
    source = None
    if store is not None:
        result = store.get(args.platform, shape)
        if result is not None:
            source = f"store {args.store} (search skipped)"
    if result is None:
        callback = _progress_printer(args.progress) if args.progress else None
        tuner = AutoTuner(
            platform,
            amortize_lut_distribution=args.amortize_lut,
            progress_callback=callback,
            jobs=args.jobs,
            cache=cache,
        )
        before = obs.get_registry().counter("tuner.candidates_evaluated").value
        result = tuner.tune(shape)
        searched = obs.get_registry().counter("tuner.candidates_evaluated").value
        if searched == before:
            source = f"cache {args.cache} (search skipped)"
        elif args.jobs != 1:
            source = f"parallel search (jobs={tuner.jobs})"
        else:
            source = "serial search"
    m = result.mapping
    print(format_table(
        ["parameter", "value"],
        [
            ["workload (N,CB,CT,F)", f"({shape.n}, {shape.cb}, {shape.ct}, {shape.f})"],
            ["sub-LUT tiling", f"N_s={m.n_s_tile}, F_s={m.f_s_tile}"],
            ["micro-kernel tiles", f"n={m.n_m_tile}, f={m.f_m_tile}, cb={m.cb_m_tile}"],
            ["traversal order", "->".join(m.traversal)],
            ["load scheme", m.load_scheme],
            ["load tiles", f"cb={m.cb_load_tile}, f={m.f_load_tile}"],
            ["candidates evaluated", result.candidates_evaluated],
            ["estimated latency", f"{result.cost * 1e3:.3f} ms"],
            ["sub-LUT / kernel split",
             f"{result.latency.sub_lut_partition * 1e3:.3f} / "
             f"{result.latency.micro_kernel * 1e3:.3f} ms"],
            ["mapping source", source],
        ],
    ))
    if store is not None and (args.platform, shape) not in store:
        store.put(args.platform, result)
        store.save()
        print(f"mapping saved to {args.store}")
    return _finish_telemetry(args)


def _mapping_from_store_or_cache(args, platform, shape) -> Optional[Mapping]:
    """Shared ``--store`` / ``--cache`` lookup for simulate/trace-export."""
    if getattr(args, "store", None):
        stored = MappingStore(args.store).get(args.platform, shape)
        if stored is not None:
            print(f"using stored mapping from {args.store}")
            return stored.mapping
    if getattr(args, "cache", None):
        cached = MappingCache(args.cache).get(platform, shape)
        if cached is not None:
            print(f"using cached mapping from {args.cache}")
            return cached.mapping
    return None


def cmd_simulate(args) -> int:
    platform = get_platform(args.platform)
    shape = _shape_from_args(args)
    mapping = _mapping_from_store_or_cache(args, platform, shape)
    if mapping is None:
        cache = MappingCache(args.cache) if args.cache else None
        mapping = AutoTuner(platform, cache=cache).tune(shape).mapping
    report = PIMSimulator(platform).run(shape, mapping, overlap=args.overlap)
    estimate = estimate_latency(shape, mapping, platform, overlap=args.overlap)
    error = abs(estimate.total - report.total_s) / report.total_s
    print(format_table(
        ["stage", "simulated_ms", "model_ms"],
        [
            ["distribution", f"{report.distribution_s * 1e3:.3f}",
             f"{(estimate.sub_index + estimate.sub_lut) * 1e3:.3f}"],
            ["micro kernel", f"{report.kernel_s * 1e3:.3f}",
             f"{estimate.micro_kernel * 1e3:.3f}"],
            ["gather", f"{report.gather_s * 1e3:.3f}",
             f"{estimate.sub_output * 1e3:.3f}"],
            ["total", f"{report.total_s * 1e3:.3f}", f"{estimate.total * 1e3:.3f}"],
        ],
    ))
    print(f"PEs used: {report.num_pes}; analytical-model error: {error:.1%}")
    if args.overlap:
        print(
            f"pipelined overlap hid {report.overlap_hidden_s * 1e3:.3f} ms "
            f"(simulated) / {estimate.overlap_hidden * 1e3:.3f} ms (model) "
            f"of transfer"
        )
    if args.profile is not None:
        print(report.bottleneck(platform=platform).render())
        if args.profile != "-":
            try:
                document = obs.write_chrome_trace(
                    args.profile, profiles=[report.profile]
                )
            except OSError as exc:
                print(f"error: cannot write rank trace: {exc}", file=sys.stderr)
                return 1
            print(
                f"per-rank chrome trace written to {args.profile} "
                f"({len(document['traceEvents'])} events)",
                file=sys.stderr,
            )
    kernel_traces = []
    if args.emit_trace:
        trace = _maybe_trace_kernel(shape, mapping, platform)
        if trace is not None:
            kernel_traces.append(trace)
    profiles = [report.profile] if report.profile is not None else []
    return _finish_telemetry(args, kernel_traces=kernel_traces, profiles=profiles)


def cmd_flops(args) -> int:
    shape = _shape_from_args(args)
    gemm = gemm_ops(shape.n, shape.h, shape.f)
    lut = lutnn_ops(shape)
    if args.json:
        def op_counts(counts) -> dict:
            payload = obs.to_jsonable(counts)
            payload["total"] = counts.total
            payload["multiplication_fraction"] = counts.multiplication_fraction
            return payload

        _print_json({
            "shape": {"n": shape.n, "h": shape.h, "f": shape.f,
                      "v": shape.v, "ct": shape.ct},
            "gemm": op_counts(gemm),
            "lut_nn": op_counts(lut),
            "flop_reduction": flop_reduction(shape),
        })
        return 0
    print(format_table(
        ["metric", "GEMM", "LUT-NN"],
        [
            ["total ops", gemm.total, lut.total],
            ["multiplications", gemm.multiplications, lut.multiplications],
            ["additions", gemm.additions, lut.additions],
            ["mult fraction", f"{gemm.multiplication_fraction:.1%}",
             f"{lut.multiplication_fraction:.1%}"],
        ],
    ))
    print(f"FLOP reduction: {flop_reduction(shape):.2f}x")
    return 0


def _resolve_cli_dtype(dtype: str):
    """Map the CLI ``--dtype`` choice to a kernel dtype argument."""
    return None if dtype == "auto" else dtype


def _kernels_search(args) -> int:
    """``kernels --search``: measured host kernel-schedule search."""
    import numpy as np

    from .kernels import KernelScheduleCache, search_kernel_schedule

    cache = (
        KernelScheduleCache(args.schedule_cache) if args.schedule_cache else None
    )
    schedule = search_kernel_schedule(
        n=args.n, h=args.h, f=args.f, v=args.v, ct=args.ct,
        dtype=_resolve_cli_dtype(args.dtype) or "float32",
        repeats=args.repeats,
        rng=np.random.default_rng(args.seed),
        cache=cache,
    )
    if args.json:
        _print_json(schedule.to_jsonable())
        return _finish_telemetry(args)
    source = (
        f"cache {args.schedule_cache} (search skipped)"
        if schedule.candidates_evaluated == 0
        else f"measured search ({schedule.candidates_evaluated} candidates)"
    )
    print(format_table(
        ["parameter", "value"],
        [
            ["workload (N,H,F,V,CT)",
             f"({args.n}, {args.h}, {args.f}, {args.v}, {args.ct})"],
            ["dtype", schedule.dtype],
            ["ccs block_rows", schedule.ccs_block_rows],
            ["gather block_rows", schedule.gather_block_rows],
            ["gather strategy", schedule.gather_strategy],
            ["ccs / gather time",
             f"{schedule.ccs_seconds * 1e3:.3f} / "
             f"{schedule.gather_seconds * 1e3:.3f} ms"],
            ["default-schedule time", f"{schedule.baseline_seconds * 1e3:.3f} ms"],
            ["speedup vs default", f"{schedule.speedup_vs_default:.2f}x"],
            ["schedule source", source],
        ],
    ))
    return _finish_telemetry(args)


def cmd_kernels(args) -> int:
    """Benchmark + parity-check the host kernels against the references."""
    import time

    import numpy as np

    from .core import quantize_lut
    from .kernels import (
        CCSKernel,
        lut_gather_reduce,
        lut_gather_reduce_quantized,
    )
    from .kernels.reference import ccs_reference, lut_lookup_reference

    if args.h % args.v:
        print(f"error: H={args.h} not divisible by V={args.v}", file=sys.stderr)
        return 2
    if args.block_rows is not None and args.block_rows <= 0:
        print(f"error: --block-rows must be positive, got {args.block_rows}",
              file=sys.stderr)
        return 2
    if args.search:
        return _kernels_search(args)
    rng = np.random.default_rng(args.seed)
    dtype = _resolve_cli_dtype(args.dtype)
    x = rng.normal(size=(args.n, args.h))
    centroids = rng.normal(size=(args.h // args.v, args.ct, args.v))
    lut = rng.normal(size=(args.h // args.v, args.ct, args.f))

    def best(fn) -> float:
        b = float("inf")
        for _ in range(max(1, args.repeats)):
            start = time.perf_counter()
            fn()
            b = min(b, time.perf_counter() - start)
        return b

    kernel = CCSKernel(dtype=dtype, block_rows=args.block_rows)
    kernel.prepare(centroids, version=0)  # constants cached, as in serving
    ref_idx = ccs_reference(x, centroids)
    new_idx = kernel.search(x, centroids, version=0)
    ccs_ref_s = best(lambda: ccs_reference(x, centroids))
    ccs_new_s = best(lambda: kernel.search(x, centroids, version=0))

    ref_out = lut_lookup_reference(new_idx, lut)
    new_out = lut_gather_reduce(new_idx, lut, block_rows=args.block_rows)
    lut_ref_s = best(lambda: lut_lookup_reference(new_idx, lut))
    lut_new_s = best(lambda: lut_gather_reduce(new_idx, lut,
                                               block_rows=args.block_rows))

    index_match = float(np.mean(ref_idx == new_idx))
    out_scale = float(np.max(np.abs(ref_out))) or 1.0
    out_err = float(np.max(np.abs(ref_out - new_out))) / out_scale
    rows = [
        ["ccs", f"{ccs_ref_s * 1e3:.3f}", f"{ccs_new_s * 1e3:.3f}",
         f"{ccs_ref_s / max(ccs_new_s, 1e-12):.2f}x",
         f"index match {index_match:.2%}"],
        ["lut lookup", f"{lut_ref_s * 1e3:.3f}", f"{lut_new_s * 1e3:.3f}",
         f"{lut_ref_s / max(lut_new_s, 1e-12):.2f}x",
         f"rel err {out_err:.1e}"],
    ]
    payload = {
        "shape": {"n": args.n, "h": args.h, "f": args.f,
                  "v": args.v, "ct": args.ct},
        "dtype": args.dtype,
        "block_rows": kernel.block_rows,
        "ccs": {"reference_s": ccs_ref_s, "kernel_s": ccs_new_s,
                "speedup": ccs_ref_s / max(ccs_new_s, 1e-12),
                "index_match": index_match},
        "lut": {"reference_s": lut_ref_s, "kernel_s": lut_new_s,
                "speedup": lut_ref_s / max(lut_new_s, 1e-12),
                "relative_error": out_err},
    }
    if args.int8:
        qlut = quantize_lut(lut)
        deq = qlut.dequantize()
        int8_ref_s = best(lambda: lut_lookup_reference(new_idx, deq))
        int8_new_s = best(lambda: lut_gather_reduce_quantized(
            new_idx, qlut, block_rows=args.block_rows))
        q_out = lut_gather_reduce_quantized(new_idx, qlut,
                                            block_rows=args.block_rows)
        q_err = float(np.max(np.abs(lut_lookup_reference(new_idx, deq) - q_out)))
        rows.append([
            "lut lookup int8", f"{int8_ref_s * 1e3:.3f}",
            f"{int8_new_s * 1e3:.3f}",
            f"{int8_ref_s / max(int8_new_s, 1e-12):.2f}x",
            f"abs err {q_err:.1e}",
        ])
        payload["lut_int8"] = {
            "reference_s": int8_ref_s, "kernel_s": int8_new_s,
            "speedup": int8_ref_s / max(int8_new_s, 1e-12),
            "absolute_error": q_err,
        }
    if args.json:
        _print_json(payload)
    else:
        print(f"shape: N={args.n} H={args.h} F={args.f} V={args.v} "
              f"CT={args.ct}; dtype={args.dtype}, "
              f"block_rows={kernel.block_rows}")
        print(format_table(
            ["kernel", "reference_ms", "kernel_ms", "speedup", "parity"], rows
        ))
    return _finish_telemetry(args)


def cmd_compare(args) -> int:
    from .baselines import cpu_server_fp32, cpu_server_int8, wimpy_host
    from .engine import GEMMPIMEngine, HostEngine, LINEAR, PIMDLEngine, model_graph

    if args.model not in EVAL_MODELS:
        print(f"unknown model {args.model!r}; choose from {sorted(EVAL_MODELS)}",
              file=sys.stderr)
        return 2
    config = EVAL_MODELS[args.model]
    platform = get_platform(args.platform)
    host = wimpy_host()
    # Validate before any kernel construction so a bad flag is a clean
    # usage error (exit 2), not a CCSKernel traceback.
    if args.block_rows is not None and args.block_rows <= 0:
        print(f"error: --block-rows must be positive, got {args.block_rows}",
              file=sys.stderr)
        return 2
    profile = None
    if args.measure_host:
        from .kernels import measure_host_kernels

        profile = measure_host_kernels(
            n=config.tokens,
            h=config.hidden_dim,
            f=config.hidden_dim,
            v=args.v,
            ct=args.ct,
            dtype=args.dtype if args.dtype != "auto" else "float32",
            block_rows=args.block_rows,
        )
        print(
            f"measured host CCS: {profile.ccs_ops_per_s / 1e9:.2f} Gop/s "
            f"({profile.dtype}, block_rows={profile.block_rows})",
            file=sys.stderr,
        )
    pimdl = PIMDLEngine(
        platform, host, v=args.v, ct=args.ct, host_kernel_profile=profile,
        overlap=args.overlap,
    )
    engines = {
        "cpu-fp32": HostEngine(cpu_server_fp32()),
        "cpu-int8": HostEngine(cpu_server_int8()),
        "pim-gemm": GEMMPIMEngine(platform, host),
        f"pim-dl (V={args.v},CT={args.ct})": pimdl,
    }
    rows = []
    reports = {}
    for name, engine in engines.items():
        report = engine.run(config)
        reports[name] = report
        rows.append([
            name,
            f"{report.total_s:.2f}",
            f"{report.energy.total_j / 1e3:.2f}",
            f"{report.pim_s / report.total_s:.0%}" if report.pim_s else "-",
        ])
    if args.json:
        _print_json({
            "model": config.name,
            "batch_size": config.batch_size,
            "seq_len": config.seq_len,
            "platform": args.platform,
            "engines": {name: rep.to_jsonable() for name, rep in reports.items()},
        })
    else:
        print(f"{config.name}: batch {config.batch_size}, seq {config.seq_len}")
        print(format_table(["engine", "latency_s", "energy_kJ", "pim share"], rows))
        if args.overlap:
            hidden = reports[f"pim-dl (V={args.v},CT={args.ct})"].overlap_hidden_s
            print(f"pim-dl pipelined overlap hid {hidden:.3f} s of transfer")
        if args.attribution:
            for name, report in reports.items():
                if report.phase_seconds:
                    print(f"[{name}] {report.bottleneck().render()}")

    kernel_traces = []
    if args.emit_trace:
        # Include one simulated micro-kernel timeline: the PIM-DL engine's
        # first linear layer, under its tuned (memoised) mapping.
        first_linear = next(
            (op for op in model_graph(config) if op.kind == LINEAR), None
        )
        if first_linear is not None:
            shape = pimdl.lut_shape(config.tokens, first_linear.h, first_linear.f)
            tuned = pimdl.tuner.tune(shape)
            trace = _maybe_trace_kernel(shape, tuned.mapping, platform)
            if trace is not None:
                kernel_traces.append(trace)
    return _finish_telemetry(args, reports=list(reports.values()),
                             kernel_traces=kernel_traces)


def _fault_plan_from_args(args) -> "FaultPlan":
    from .resilience import FaultPlan

    if args.scenario:
        return FaultPlan.from_json(args.scenario)
    ranks = tuple(
        int(r) for r in args.fail_ranks.split(",") if r.strip()
    ) if args.fail_ranks else ()
    return FaultPlan(
        seed=args.seed,
        failed_ranks=ranks,
        failed_pes=args.fail_pes,
        straggler_factor=args.straggler,
        transfer_timeouts=args.timeouts,
        lut_bit_flips=args.bit_flips,
    )


def _functional_fault_check(plan, policy) -> dict:
    """Run one small LUT kernel through the recovery ladder, functionally.

    Uses a *fresh* injector built from the same plan (the scenario is
    deterministic, so this doubles as a reproducibility demonstration) and
    checks the recovered output bit-for-bit against the trusted host
    kernel — the guarantee the ladder makes.
    """
    import numpy as np

    from .kernels import lut_gather_reduce
    from .resilience import DegradationLedger, FaultInjector, run_kernel_with_recovery

    shape = LUTShape(n=8, h=64, f=32, v=4, ct=16)
    rng = np.random.default_rng(plan.seed)
    indices = rng.integers(0, shape.ct, size=(shape.n, shape.cb))
    lut = rng.normal(size=(shape.cb, shape.ct, shape.f)).astype(np.float32)

    injector = FaultInjector(plan)
    platform = get_platform("upmem")
    mapping = AutoTuner(platform).tune(shape).mapping
    ledger = DegradationLedger()
    output, report = run_kernel_with_recovery(
        PIMSimulator(platform), shape, mapping, indices, lut,
        injector, policy=policy, ledger=ledger,
    )
    expected = lut_gather_reduce(indices, lut)
    return {
        "bit_identical_to_host": bool(np.array_equal(output, expected)),
        "completed_on": "host" if report is None else "pim",
        "degradation": ledger.summary().to_jsonable(),
    }


def cmd_faults(args) -> int:
    """Serve requests under a scripted fault scenario, end to end."""
    from .baselines import wimpy_host
    from .engine.serving import GenerationServer
    from .resilience import FaultInjector, RecoveryManager, RetryPolicy

    try:
        plan = _fault_plan_from_args(args)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: bad fault scenario: {exc}", file=sys.stderr)
        return 2
    if plan.is_empty:
        print("note: empty fault plan — serving runs fault-free", file=sys.stderr)

    config = EVAL_MODELS[args.model]
    try:
        config = _apply_layers_override(config, args.layers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = RetryPolicy(max_retries=args.max_retries)
    manager = RecoveryManager(FaultInjector(plan), policy=policy)
    server = GenerationServer(
        get_platform(args.platform), wimpy_host(), v=args.v, ct=args.ct,
        resilience=manager,
    )

    reports = []
    for _ in range(max(1, args.requests)):
        reports.append(server.run(
            config,
            prompt_len=args.prompt_len,
            generate_len=args.generate_len,
            batch_size=args.batch,
        ))

    functional = None
    if not args.no_functional:
        functional = _functional_fault_check(plan, policy)

    summary = manager.ledger.summary()
    if args.json:
        _print_json({
            "plan": plan.to_dict(),
            "model": config.name,
            "platform": args.platform,
            "requests": [
                {
                    "time_to_first_token_s": r.time_to_first_token_s,
                    "per_token_decode_s": r.per_token_decode_s,
                    "request_latency_s": r.request_latency_s,
                    "degraded": r.degraded.to_jsonable() if r.degraded else None,
                }
                for r in reports
            ],
            "degradation": summary.to_jsonable(),
            "injected_events": [
                {"kind": e.kind, **e.detail} for e in manager.injector.events
            ],
            "functional_check": functional,
        })
        return _finish_telemetry(args)

    print(f"fault plan: {plan.to_dict()}")
    print(f"model: {config.name} ({config.num_layers} layers) "
          f"on {args.platform}")
    rows = []
    for i, r in enumerate(reports):
        deg = r.degraded
        rows.append([
            f"request {i}",
            f"{r.time_to_first_token_s * 1e3:.3f}",
            f"{r.per_token_decode_s * 1e3:.3f}",
            "yes" if (deg is not None and deg.degraded) else "no",
            deg.retries if deg else 0,
            deg.remaps if deg else 0,
            deg.fallbacks if deg else 0,
        ])
    print(format_table(
        ["request", "ttft_ms", "per_token_ms", "degraded",
         "retries", "remaps", "fallbacks"],
        rows,
    ))
    print(
        f"ladder totals: {summary.retries} retries "
        f"({summary.backoff_s * 1e3:.3f} ms backoff), "
        f"{summary.remaps} remaps, {summary.checksum_failures} checksum "
        f"repairs ({summary.recovery_s * 1e3:.3f} ms), "
        f"{summary.fallbacks} host fallbacks"
    )
    if summary.fallback_layers:
        print(f"fallen-back layers: {', '.join(summary.fallback_layers)}")
    print(f"injected events: {len(manager.injector.events)}")
    if functional is not None:
        verdict = "PASS" if functional["bit_identical_to_host"] else "FAIL"
        print(
            f"functional parity: {verdict} — recovered kernel completed on "
            f"{functional['completed_on']}, output bit-identical to the "
            f"host kernel: {functional['bit_identical_to_host']}"
        )
        if not functional["bit_identical_to_host"]:
            return 1
    return _finish_telemetry(args)


def _scheduler_row(label: str, result) -> list:
    return [
        label,
        result.completed,
        result.rejected,
        f"{result.ttft_p50_s * 1e3:.1f}/{result.ttft_p95_s * 1e3:.1f}/"
        f"{result.ttft_p99_s * 1e3:.1f}",
        f"{result.tpot_p50_s * 1e3:.2f}/{result.tpot_p95_s * 1e3:.2f}/"
        f"{result.tpot_p99_s * 1e3:.2f}",
        f"{result.e2e_p50_s * 1e3:.1f}/{result.e2e_p95_s * 1e3:.1f}/"
        f"{result.e2e_p99_s * 1e3:.1f}",
        f"{result.throughput_rps:.2f}",
        f"{result.goodput_rps:.2f}",
        f"{result.mean_batch_occupancy:.2f}",
    ]


def cmd_serve_sim(args) -> int:
    """Continuous-batching serving simulation under an arrival stream."""
    from .baselines import wimpy_host
    from .engine import (GenerationServer, Request, RequestScheduler,
                         SchedulerPolicy, poisson_requests)

    config = EVAL_MODELS[args.model]
    try:
        config = _apply_layers_override(config, args.layers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = GenerationServer(
        get_platform(args.platform), wimpy_host(), v=args.v, ct=args.ct,
        lut_nn=not args.native,
    )
    probe = Request(
        request_id=-1, arrival_s=0.0, prompt_len=args.prompt_len,
        generate_len=args.generate_len, batch=args.batch,
    )
    # SLOs default to headroom over the *unloaded* request: 2.5x the bare
    # prefill for TTFT, 2.5x the bare service time end to end.
    prescheduler = RequestScheduler(server, config)
    service_s = prescheduler.fifo_service_time(probe)
    unloaded_ttft_s = prescheduler.cost.prefill_s(args.prompt_len, args.batch)
    try:
        slo_ttft_s = _resolve_slo_s(
            args.slo_ttft_ms, 2.5 * unloaded_ttft_s, "--slo-ttft-ms")
        slo_e2e_s = _resolve_slo_s(args.slo_e2e_ms, 2.5 * service_s, "--slo-e2e-ms")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    policy = SchedulerPolicy(
        max_batch_size=args.max_batch,
        max_context_tokens=args.max_context_tokens,
        max_queue_len=args.queue_cap,
        chunked_prefill=args.chunked_prefill,
        prefill_chunk=args.prefill_chunk,
        slo_ttft_s=slo_ttft_s,
        slo_e2e_s=slo_e2e_s,
    )
    scheduler = RequestScheduler(server, config, policy=policy)
    scheduler.cost = prescheduler.cost  # reuse the probe's tuned costs

    # --rate 0 must not silently fall back to --utilization (falsy-arg
    # trap); resolve on presence, then validate both paths explicitly.
    if args.rate is not None:
        if args.rate <= 0:
            print(f"error: --rate must be positive, got {args.rate}",
                  file=sys.stderr)
            return 2
        rate = args.rate
    else:
        if args.utilization <= 0:
            print(
                f"error: --utilization must be positive, got "
                f"{args.utilization}",
                file=sys.stderr,
            )
            return 2
        rate = args.utilization / service_s
    stream = poisson_requests(
        args.requests, rate,
        prompt_len=args.prompt_len, generate_len=args.generate_len,
        batch=args.batch, arrivals=args.arrivals, seed=args.seed,
    )
    result = scheduler.run(stream)

    fifo_result = None
    if args.compare_fifo:
        fifo = RequestScheduler(server, config, policy=policy.fifo())
        fifo.cost = scheduler.cost
        fifo_result = fifo.run(stream)

    if args.json:
        payload = {
            "model": config.name,
            "platform": args.platform,
            "arrival_rate_rps": rate,
            "fifo_service_time_s": service_s,
            "slo": {"ttft_s": slo_ttft_s, "e2e_s": slo_e2e_s},
            "continuous_batching": result.to_jsonable(),
        }
        if fifo_result is not None:
            payload["fifo"] = fifo_result.to_jsonable()
        _print_json(payload)
        return _finish_telemetry(args)

    mode = "chunked prefill" if policy.chunked_prefill else "whole-prompt prefill"
    print(
        f"{config.name} on {args.platform}: {args.requests} requests "
        f"({args.arrivals} arrivals, {rate:.2f} req/s), prompt "
        f"{args.prompt_len}, generate {args.generate_len}, batch hint "
        f"{args.batch}"
    )
    print(
        f"policy: max batch {policy.max_batch_size} seqs, "
        f"max context {policy.max_context_tokens} tokens, queue cap "
        f"{policy.max_queue_len}, {mode}; SLO ttft "
        f"{slo_ttft_s * 1e3:.1f} ms, e2e {slo_e2e_s * 1e3:.1f} ms"
    )
    rows = [_scheduler_row("continuous batching", result)]
    if fifo_result is not None:
        rows.append(_scheduler_row("fifo (batch 1)", fifo_result))
    print(format_table(
        ["discipline", "done", "rej",
         "ttft ms p50/95/99", "tpot ms p50/95/99", "e2e ms p50/95/99",
         "req/s", "goodput", "occupancy"],
        rows,
    ))
    if result.degradation is not None and result.degradation.degraded:
        print(f"degradation (batch-level): {result.degradation.to_jsonable()}")
    if args.attribution:
        for request_class in ("prefill", "decode"):
            attribution = result.phase_attribution(request_class)
            if attribution.phase_seconds:
                print(f"[{request_class}] {attribution.render()}")
    if fifo_result is not None:
        better_p95 = result.e2e_p95_s <= fifo_result.e2e_p95_s
        better_goodput = result.goodput_rps > fifo_result.goodput_rps
        print(
            f"continuous batching vs FIFO at the same stream: "
            f"P95 e2e {result.e2e_p95_s * 1e3:.1f} vs "
            f"{fifo_result.e2e_p95_s * 1e3:.1f} ms, goodput "
            f"{result.goodput_rps:.2f} vs {fifo_result.goodput_rps:.2f} req/s"
            + (" — batching sustains more at equal-or-better P95"
               if better_p95 and better_goodput else "")
        )
    return _finish_telemetry(args)


def _csv_ints(text: str, flag: str) -> List[int]:
    try:
        values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(f"{flag} expects comma-separated integers, got {text!r}")
    if not values:
        raise ValueError(f"{flag} must name at least one value")
    return values


def _csv_floats(text: str, flag: str) -> List[float]:
    try:
        values = [float(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise ValueError(f"{flag} expects comma-separated numbers, got {text!r}")
    if not values:
        raise ValueError(f"{flag} must name at least one value")
    return values


def cmd_serve_cluster(args) -> int:
    """Cluster-scale serving: replicated/sharded scheduling with routing."""
    from .baselines import wimpy_host
    from .cluster import (ROUTER_POLICIES, ClusterScheduler, ReplicaFailure,
                          cluster_load_sweep, failures_from_fault_plan)
    from .engine import (GenerationServer, Request, RequestScheduler,
                         SchedulerPolicy, poisson_requests)
    from .resilience import FaultPlan

    config = EVAL_MODELS[args.model]
    try:
        config = _apply_layers_override(config, args.layers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    platform = get_platform(args.platform)
    server = GenerationServer(
        platform, wimpy_host(), v=args.v, ct=args.ct, lut_nn=not args.native,
    )

    try:
        replica_counts = _csv_ints(args.replicas, "--replicas")
        shard_counts = _csv_ints(args.shards, "--shards")
        utilizations = _csv_floats(args.utilization, "--utilization")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    routers = [r.strip() for r in args.routers.split(",") if r.strip()]
    unknown = [r for r in routers if r not in ROUTER_POLICIES]
    if unknown or not routers:
        known = ", ".join(sorted(ROUTER_POLICIES))
        print(f"error: unknown routing policy {unknown or args.routers!r} "
              f"(known: {known})", file=sys.stderr)
        return 2

    probe = Request(
        request_id=-1, arrival_s=0.0, prompt_len=args.prompt_len,
        generate_len=args.generate_len, batch=args.batch,
    )
    # SLO defaults mirror serve-sim: 2.5x the unloaded single-replica
    # request, so goodput is comparable between the two commands.
    prescheduler = RequestScheduler(server, config)
    service_s = prescheduler.fifo_service_time(probe)
    unloaded_ttft_s = prescheduler.cost.prefill_s(args.prompt_len, args.batch)
    try:
        slo_ttft_s = _resolve_slo_s(
            args.slo_ttft_ms, 2.5 * unloaded_ttft_s, "--slo-ttft-ms")
        slo_e2e_s = _resolve_slo_s(args.slo_e2e_ms, 2.5 * service_s, "--slo-e2e-ms")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = SchedulerPolicy(
        max_batch_size=args.max_batch,
        max_context_tokens=args.max_context_tokens,
        max_queue_len=args.queue_cap,
        chunked_prefill=args.chunked_prefill,
        prefill_chunk=args.prefill_chunk,
        slo_ttft_s=slo_ttft_s,
        slo_e2e_s=slo_e2e_s,
    )

    if args.sweep:
        if args.rate is not None:
            print("error: --sweep derives rates from --utilization; "
                  "--rate is single-run only", file=sys.stderr)
            return 2
        try:
            points = cluster_load_sweep(
                server, config,
                replica_counts=replica_counts,
                shard_counts=shard_counts,
                routers=routers,
                utilizations=utilizations,
                num_requests=args.requests,
                prompt_len=args.prompt_len,
                generate_len=args.generate_len,
                batch=args.batch,
                policy=policy,
                arrivals=args.arrivals,
                seed=args.seed,
                sessions=args.sessions,
            )
        except ValueError as exc:
            # e.g. a non-positive --utilization cell: the sweep validates
            # every value upfront before simulating anything.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            _print_json({
                "model": config.name,
                "platform": args.platform,
                "fifo_service_time_s": service_s,
                "slo": {"ttft_s": slo_ttft_s, "e2e_s": slo_e2e_s},
                "points": [p.to_jsonable() for p in points],
            })
            return _finish_telemetry(args, clusters=[p.result for p in points])
        print(
            f"{config.name} on {args.platform}: {args.requests} requests per "
            f"cell ({args.arrivals} arrivals), prompt {args.prompt_len}, "
            f"generate {args.generate_len}; rho normalized to one unsharded "
            f"replica's FIFO rate ({1.0 / service_s:.2f} req/s)"
        )
        rows = []
        for p in points:
            r = p.result
            rows.append([
                f"{p.target_utilization:.2f}", p.replicas, p.shards, p.router,
                r.completed, r.rejected, r.shed, r.failovers,
                f"{r.e2e_p50_s * 1e3:.1f}/{r.e2e_p95_s * 1e3:.1f}",
                f"{r.throughput_rps:.2f}", f"{r.goodput_rps:.2f}",
            ])
        print(format_table(
            ["rho", "replicas", "shards", "router", "done", "rej", "shed",
             "failover", "e2e ms p50/95", "req/s", "goodput"],
            rows,
        ))
        return _finish_telemetry(args, clusters=[p.result for p in points])

    # Single-run mode: one cell, optionally with replica failures.
    if len(replica_counts) > 1 or len(shard_counts) > 1 or len(routers) > 1 \
            or len(utilizations) > 1:
        print("error: multiple --replicas/--shards/--routers/--utilization "
              "values need --sweep", file=sys.stderr)
        return 2
    replicas, shards, router = replica_counts[0], shard_counts[0], routers[0]

    failures = []
    for spec in args.fail or ():
        try:
            rep_text, _, at_text = spec.partition("@")
            failures.append(ReplicaFailure(int(rep_text), float(at_text)))
        except ValueError:
            print(f"error: --fail expects REPLICA@SECONDS, got {spec!r}",
                  file=sys.stderr)
            return 2
    if args.fail_ranks:
        if args.fail_at is None:
            print("error: --fail-ranks needs --fail-at", file=sys.stderr)
            return 2
        try:
            ranks = _csv_ints(args.fail_ranks, "--fail-ranks")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        plan = FaultPlan(seed=args.seed, failed_ranks=tuple(ranks))
        failures.extend(
            failures_from_fault_plan(plan, args.fail_at, platform.ranks)
        )

    if args.rate is not None:
        if args.rate <= 0:
            print(f"error: --rate must be positive, got {args.rate}",
                  file=sys.stderr)
            return 2
        rate = args.rate
    else:
        if utilizations[0] <= 0:
            print(f"error: --utilization must be positive, got "
                  f"{utilizations[0]}", file=sys.stderr)
            return 2
        rate = utilizations[0] / service_s

    stream = poisson_requests(
        args.requests, rate,
        prompt_len=args.prompt_len, generate_len=args.generate_len,
        batch=args.batch, arrivals=args.arrivals, seed=args.seed,
        sessions=args.sessions,
    )
    try:
        cluster = ClusterScheduler(
            server, config, replicas=replicas, shards=shards, policy=policy,
            router=router, failures=failures, seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = cluster.run(stream)

    if args.json:
        _print_json({
            "model": config.name,
            "platform": args.platform,
            "arrival_rate_rps": rate,
            "fifo_service_time_s": service_s,
            "slo": {"ttft_s": slo_ttft_s, "e2e_s": slo_e2e_s},
            "cluster": result.to_jsonable(),
        })
        return _finish_telemetry(args, clusters=[result])

    print(
        f"{config.name} on {args.platform}: {replicas}x replicas, "
        f"{shards}x shards, {router} routing; {args.requests} requests "
        f"({args.arrivals} arrivals, {rate:.2f} req/s)"
    )
    print(
        f"cluster: {result.completed} done, {result.rejected} rejected, "
        f"{result.shed} shed, {result.failovers} failovers; goodput "
        f"{result.goodput_rps:.2f} req/s, e2e p50/p95 "
        f"{result.e2e_p50_s * 1e3:.1f}/{result.e2e_p95_s * 1e3:.1f} ms, "
        f"utilization {result.utilization:.2f}"
    )
    rows = []
    for rep, res in enumerate(result.replica_results):
        failed_at = result.replica_failed_at[rep]
        rows.append([
            f"replica {rep}",
            result.replica_routed[rep],
            res.completed,
            res.rejected,
            result.replica_max_queue_depth[rep],
            f"{failed_at:.3f}" if failed_at is not None else "-",
            f"{res.e2e_p95_s * 1e3:.1f}",
            f"{res.goodput_rps:.2f}",
        ])
    print(format_table(
        ["replica", "routed", "done", "rej", "max depth", "failed @s",
         "e2e ms p95", "goodput"],
        rows,
    ))
    if result.degradation is not None and result.degradation.degraded:
        print(f"degradation (cluster scope): "
              f"{result.degradation.to_jsonable()}")
    if args.attribution:
        attribution = result.phase_attribution()
        if attribution.phase_seconds:
            print(f"[cluster] {attribution.render()}")
    return _finish_telemetry(args, clusters=[result])


def cmd_serve_disagg(args) -> int:
    """Disaggregated prefill/decode serving: placement-policy comparison."""
    from .baselines import prefill_host, wimpy_host
    from .engine import (PLACEMENT_POLICIES, DisaggScheduler, GenerationServer,
                         HostPrefillPool, Request, SchedulerPolicy,
                         disagg_load_sweep, poisson_requests)

    config = EVAL_MODELS[args.model]
    try:
        config = _apply_layers_override(config, args.layers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = GenerationServer(
        get_platform(args.platform), wimpy_host(), v=args.v, ct=args.ct,
        lut_nn=not args.native,
    )
    prefill_server = None
    if args.prefill_device == "host":
        prefill_server = HostPrefillPool(prefill_host())

    try:
        placements = [
            p.strip() for p in args.placement.split(",") if p.strip()
        ]
    except AttributeError:
        placements = []
    unknown = [p for p in placements if p not in PLACEMENT_POLICIES]
    if unknown or not placements:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        print(f"error: unknown placement policy {unknown or args.placement!r} "
              f"(known: {known})", file=sys.stderr)
        return 2

    probe = Request(
        request_id=-1, arrival_s=0.0, prompt_len=args.prompt_len,
        generate_len=args.generate_len, batch=args.batch,
    )
    # SLO defaults mirror serve-sim (2.5x the unloaded colocated request),
    # so goodput is comparable across the three commands.
    prescheduler = DisaggScheduler(
        server, config, placement="colocated", prefill_server=prefill_server,
    )
    service_s = prescheduler.fifo_service_time(probe)
    unloaded_ttft_s = prescheduler.cost.prefill_s(args.prompt_len, args.batch)
    try:
        slo_ttft_s = _resolve_slo_s(
            args.slo_ttft_ms, 2.5 * unloaded_ttft_s, "--slo-ttft-ms")
        slo_e2e_s = _resolve_slo_s(args.slo_e2e_ms, 2.5 * service_s, "--slo-e2e-ms")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = SchedulerPolicy(
        max_batch_size=args.max_batch,
        max_context_tokens=args.max_context_tokens,
        max_queue_len=args.queue_cap,
        chunked_prefill=args.chunked_prefill,
        prefill_chunk=args.prefill_chunk,
        slo_ttft_s=slo_ttft_s,
        slo_e2e_s=slo_e2e_s,
    )

    if args.sweep:
        if args.rate is not None:
            print("error: --sweep derives rates from --utilization; "
                  "--rate is single-run only", file=sys.stderr)
            return 2
        try:
            utilizations = _csv_floats(args.utilization, "--utilization")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        try:
            points = disagg_load_sweep(
                server, config,
                placements=placements,
                utilizations=utilizations,
                num_requests=args.requests,
                prompt_len=args.prompt_len,
                generate_len=args.generate_len,
                batch=args.batch,
                policy=policy,
                prefill_server=prefill_server,
                arrivals=args.arrivals,
                seed=args.seed,
            )
        except ValueError as exc:
            # e.g. a non-positive --utilization cell: the sweep validates
            # every value upfront before simulating anything.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            _print_json({
                "model": config.name,
                "platform": args.platform,
                "prefill_device": args.prefill_device,
                "fifo_service_time_s": service_s,
                "slo": {"ttft_s": slo_ttft_s, "e2e_s": slo_e2e_s},
                "points": [p.to_jsonable() for p in points],
            })
            return _finish_telemetry(
                args, schedules=[p.result for p in points]
            )
        print(
            f"{config.name} on {args.platform}: {args.requests} requests per "
            f"cell ({args.arrivals} arrivals), prompt {args.prompt_len}, "
            f"generate {args.generate_len}, prefill pool on "
            f"{args.prefill_device}; rho normalized to the colocated FIFO "
            f"rate ({1.0 / service_s:.2f} req/s)"
        )
        rows = []
        for p in points:
            r = p.result
            rows.append([
                f"{p.target_utilization:.2f}", p.placement,
                r.completed, r.rejected, r.kv_transfers,
                f"{r.ttft_p50_s * 1e3:.1f}/{r.ttft_p95_s * 1e3:.1f}",
                f"{r.e2e_p50_s * 1e3:.1f}/{r.e2e_p95_s * 1e3:.1f}",
                f"{r.throughput_rps:.2f}", f"{r.goodput_rps:.2f}",
            ])
        print(format_table(
            ["rho", "placement", "done", "rej", "kv xfer",
             "ttft ms p50/95", "e2e ms p50/95", "req/s", "goodput"],
            rows,
        ))
        return _finish_telemetry(args, schedules=[p.result for p in points])

    # Single-run mode: one placement policy at one load level.
    if len(placements) > 1:
        print("error: multiple --placement values need --sweep",
              file=sys.stderr)
        return 2
    if args.rate is not None:
        if args.rate <= 0:
            print(f"error: --rate must be positive, got {args.rate}",
                  file=sys.stderr)
            return 2
        rate = args.rate
    else:
        try:
            utilizations = _csv_floats(args.utilization, "--utilization")
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if len(utilizations) > 1:
            print("error: multiple --utilization values need --sweep",
                  file=sys.stderr)
            return 2
        if utilizations[0] <= 0:
            print(f"error: --utilization must be positive, got "
                  f"{utilizations[0]}", file=sys.stderr)
            return 2
        rate = utilizations[0] / service_s

    scheduler = DisaggScheduler(
        server, config, policy=policy, placement=placements[0],
        prefill_server=prefill_server,
    )
    scheduler.cost = prescheduler.cost  # reuse the probe's tuned costs
    if prefill_server is None:
        scheduler.prefill_cost = prescheduler.cost
    else:
        scheduler.prefill_cost = prescheduler.prefill_cost
    stream = poisson_requests(
        args.requests, rate,
        prompt_len=args.prompt_len, generate_len=args.generate_len,
        batch=args.batch, arrivals=args.arrivals, seed=args.seed,
    )
    result = scheduler.run(stream)

    if args.json:
        _print_json({
            "model": config.name,
            "platform": args.platform,
            "prefill_device": args.prefill_device,
            "arrival_rate_rps": rate,
            "fifo_service_time_s": service_s,
            "slo": {"ttft_s": slo_ttft_s, "e2e_s": slo_e2e_s},
            "kv_transfer": scheduler.kv.to_jsonable(),
            "schedule": result.to_jsonable(),
        })
        return _finish_telemetry(args, schedules=[result])

    print(
        f"{config.name} on {args.platform}: {placements[0]} placement, "
        f"prefill pool on {args.prefill_device}; {args.requests} requests "
        f"({args.arrivals} arrivals, {rate:.2f} req/s), prompt "
        f"{args.prompt_len}, generate {args.generate_len}"
    )
    print(format_table(
        ["placement", "done", "rej",
         "ttft ms p50/95/99", "tpot ms p50/95/99", "e2e ms p50/95/99",
         "req/s", "goodput", "occupancy"],
        [_scheduler_row(placements[0], result)],
    ))
    print(
        f"pools: prefill busy {result.prefill_pool_busy_s * 1e3:.1f} ms, "
        f"decode busy {result.decode_pool_busy_s * 1e3:.1f} ms, "
        f"{result.kv_transfers} KV migrations "
        f"({result.kv_transfer_s * 1e3:.2f} ms)"
    )
    if result.degradation is not None and result.degradation.degraded:
        print(f"degradation (batch-level): {result.degradation.to_jsonable()}")
    if args.attribution:
        for request_class in ("prefill", "decode", "kv_transfer"):
            attribution = result.phase_attribution(request_class)
            if attribution.phase_seconds:
                print(f"[{request_class}] {attribution.render()}")
    return _finish_telemetry(args, schedules=[result])


def cmd_moe(args) -> int:
    """MoE expert-as-LUT sweep: experts x top-k x routing x placement."""
    from .baselines import wimpy_host
    from .engine import PIMDLEngine
    from .obs import BottleneckReport
    from .pim import EXPERT_PLACERS
    from .workloads import MoEConfig, ROUTING_KINDS

    config = EVAL_MODELS[args.model]
    try:
        config = _apply_layers_override(config, args.layers)
        experts_list = _csv_ints(args.experts, "--experts")
        topk_list = _csv_ints(args.top_k, "--top-k")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if any(e <= 0 for e in experts_list) or any(k <= 0 for k in topk_list):
        print("error: --experts and --top-k values must be positive",
              file=sys.stderr)
        return 2
    routings = [r.strip() for r in args.routing.split(",") if r.strip()]
    unknown = [r for r in routings if r not in ROUTING_KINDS]
    if unknown or not routings:
        print(f"error: unknown routing {unknown or args.routing!r} "
              f"(known: {', '.join(ROUTING_KINDS)})", file=sys.stderr)
        return 2
    placers = [p.strip() for p in args.placers.split(",") if p.strip()]
    unknown = [p for p in placers if p not in EXPERT_PLACERS]
    if unknown or not placers:
        print(f"error: unknown placer {unknown or args.placers!r} "
              f"(known: {', '.join(EXPERT_PLACERS)})", file=sys.stderr)
        return 2

    platform = get_platform(args.platform)
    engine = PIMDLEngine(platform, wimpy_host(), v=args.v, ct=args.ct)
    if not args.json:
        print(f"model {config.name} on {platform.name} "
              f"({platform.ranks} ranks), tokens/layer {config.tokens}")

    cells = []
    for num_experts in experts_list:
        for top_k in topk_list:
            if top_k > num_experts:
                print(f"note: skipping top_k={top_k} > experts={num_experts}",
                      file=sys.stderr)
                continue
            for routing in routings:
                per_placer = {}
                for placer in placers:
                    moe = MoEConfig(
                        num_experts=num_experts, top_k=top_k, routing=routing,
                        zipf_s=args.zipf_s, seed=args.seed, placement=placer,
                    )
                    cost = engine.moe_layer_cost(config, moe)
                    report = engine.run(config, moe=moe)
                    per_placer[placer] = (cost, report)
                cells.append((num_experts, top_k, routing, per_placer))

    rows = []
    for num_experts, top_k, routing, per_placer in cells:
        for placer, (cost, report) in per_placer.items():
            counts = cost.expert_tokens
            rows.append([
                num_experts, top_k, routing, placer,
                f"{max(counts)}/{sum(counts) // len(counts)}",
                f"{cost.imbalance_index:.1%}",
                f"{cost.lut_makespan_s * 1e3:.3f}",
                f"{cost.lut_serial_s * 1e3:.3f}",
                f"{report.total_s * 1e3:.2f}",
            ])
    table = format_table(
        ["experts", "top-k", "routing", "placer", "tok max/mean",
         "rank imb", "lut makespan ms", "lut serial ms", "model ms"],
        rows,
    )

    payload = {
        "model": config.name,
        "platform": platform.name,
        "ranks": platform.ranks,
        "cells": [
            {
                "experts": num_experts,
                "top_k": top_k,
                "routing": routing,
                "placers": {
                    placer: {
                        "expert_tokens": list(cost.expert_tokens),
                        "placement": list(cost.placement),
                        "rank_seconds": list(cost.rank_seconds),
                        "rank_imbalance_index": cost.imbalance_index,
                        "lut_makespan_s": cost.lut_makespan_s,
                        "lut_serial_s": cost.lut_serial_s,
                        "ccs_s": cost.ccs_s,
                        "gate_s": cost.gate_s,
                        "layer_total_s": cost.total_s,
                        "model_total_s": report.total_s,
                    }
                    for placer, (cost, report) in per_placer.items()
                },
            }
            for num_experts, top_k, routing, per_placer in cells
        ],
    }
    if args.json:
        _print_json(payload)
    else:
        print(table)
        if "round-robin" in placers and "balanced" in placers:
            for num_experts, top_k, routing, per_placer in cells:
                rr = per_placer["round-robin"][0].lut_makespan_s
                bal = per_placer["balanced"][0].lut_makespan_s
                speedup = rr / bal if bal > 0 else 1.0
                print(
                    f"E={num_experts} k={top_k} {routing}: balanced placement "
                    f"{speedup:.2f}x vs round-robin on LUT makespan"
                )
    if args.attribution:
        for num_experts, top_k, routing, per_placer in cells:
            for placer, (cost, report) in per_placer.items():
                attribution = BottleneckReport.from_phases(
                    cost.phases,
                    imbalance_index=cost.imbalance_index,
                    top_ranks=cost.top_ranks(3),
                )
                print(f"[E={num_experts} k={top_k} {routing} {placer}] "
                      f"{attribution.render()}")
    reports = [report for _, _, _, pp in cells for _, report in pp.values()]
    return _finish_telemetry(args, reports=reports)


# ----------------------------------------------------------------------
# Benchmark suites feeding the persistent baseline store
# ----------------------------------------------------------------------

#: Default regression thresholds per suite kind: modeled benches are
#: deterministic (any drift is a code change), measured kernel timings on
#: shared CI runners are noisy.
_BENCH_THRESHOLDS = {"modeled": 0.02, "measured": 0.5}


def _bench_sim_kernel(platform_name: str):
    """Modeled: tuned LUT kernel latency on the event-level simulator."""
    platform = get_platform(platform_name)
    shape = LUTShape(n=1024, h=256, f=512, v=4, ct=16)
    mapping = AutoTuner(platform).tune(shape).mapping
    report = PIMSimulator(platform).run(shape, mapping)
    return report.total_s, {"shape": "n1024-h256-f512-v4-ct16"}


def _bench_engine_bert(platform_name: str):
    """Modeled: PIM-DL end-to-end BERT-base inference latency."""
    from .baselines import wimpy_host
    from .engine import PIMDLEngine

    platform = get_platform(platform_name)
    report = PIMDLEngine(platform, wimpy_host()).run(EVAL_MODELS["bert-base"])
    return report.total_s, {"model": "bert-base"}


def _bench_engine_moe_bert(platform_name: str):
    """Modeled: MoE BERT-base latency (32 zipf-routed experts, balanced
    placement) — pins the expert-as-LUT rank-contention cost model."""
    from .baselines import wimpy_host
    from .engine import PIMDLEngine
    from .workloads import MoEConfig

    platform = get_platform(platform_name)
    moe = MoEConfig(num_experts=32, top_k=2, routing="zipf",
                    placement="balanced", seed=0)
    engine = PIMDLEngine(platform, wimpy_host())
    report = engine.run(EVAL_MODELS["bert-base"], moe=moe)
    cost = engine.moe_layer_cost(EVAL_MODELS["bert-base"], moe)
    return report.total_s, {
        "model": "bert-base",
        "experts": 32,
        "top_k": 2,
        "routing": "zipf",
        "rank_imbalance": cost.imbalance_index,
    }


def _bench_sim_overlap_bert(platform_name: str):
    """Modeled: double-buffered simulator latency on a transfer-bound
    BERT-base layer mapping (the tentpole overlap pipeline under gate)."""
    platform = get_platform(platform_name)
    shape = LUTShape(n=128, h=768, f=768, v=4, ct=16)
    # Fixed multi-tile coarse-load mapping (not the tuned one, which is
    # single-tile and leaves nothing to overlap) so the bench pins the
    # pipelined path's latency, not the tuner's choice.
    mapping = Mapping(
        n_s_tile=64, f_s_tile=4, n_m_tile=4, f_m_tile=1, cb_m_tile=16,
        traversal=("n", "cb", "f"), load_scheme="coarse",
        cb_load_tile=8, f_load_tile=1,
    )
    report = PIMSimulator(platform).run(shape, mapping, overlap=True)
    return report.total_s, {
        "shape": "n128-h768-f768-v4-ct16",
        "overlap_hidden_s": float(report.overlap_hidden_s),
    }


def _bench_schedule_search(platform_name: str):
    """Measured: cold host kernel-schedule search (winner's total time)."""
    import numpy as np

    from .kernels import search_kernel_schedule

    schedule = search_kernel_schedule(
        n=256, h=256, f=256, v=4, ct=16,
        repeats=3, rng=np.random.default_rng(0), cache=None,
    )
    return schedule.total_seconds, {
        "shape": "n256-h256-f256-v4-ct16",
        "speedup_vs_default": schedule.speedup_vs_default,
    }


def _measure_best(fn, repeats: int = 5) -> float:
    import time

    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_host_ccs(platform_name: str):
    """Measured: this machine's host CCS kernel (seconds, best-of-N)."""
    import numpy as np

    from .kernels import CCSKernel

    rng = np.random.default_rng(0)
    x = rng.normal(size=(512, 256))
    centroids = rng.normal(size=(64, 16, 4))
    kernel = CCSKernel(dtype="float32")
    kernel.prepare(centroids, version=0)
    value = _measure_best(lambda: kernel.search(x, centroids, version=0))
    return value, {"shape": "n512-h256-v4-ct16"}


def _bench_host_lut(platform_name: str):
    """Measured: this machine's host LUT gather+reduce kernel."""
    import numpy as np

    from .kernels import lut_gather_reduce

    rng = np.random.default_rng(0)
    indices = rng.integers(0, 16, size=(512, 64)).astype(np.int32)
    lut = rng.normal(size=(64, 16, 256))
    value = _measure_best(lambda: lut_gather_reduce(indices, lut))
    return value, {"shape": "n512-cb64-f256-ct16"}


#: bench id -> (suite kind, runner).  Ids are stable across commits — they
#: key the store history.
_BENCH_REGISTRY = {
    "sim.lut-kernel": ("modeled", _bench_sim_kernel),
    "engine.bert-base": ("modeled", _bench_engine_bert),
    "engine.moe-bert-base": ("modeled", _bench_engine_moe_bert),
    "sim.overlap-bert-base": ("modeled", _bench_sim_overlap_bert),
    "kernels.host-ccs": ("measured", _bench_host_ccs),
    "kernels.host-lut": ("measured", _bench_host_lut),
    "kernels.schedule-search": ("measured", _bench_schedule_search),
}


def _bench_specs(suite: str):
    return [
        (bench_id, kind, fn)
        for bench_id, (kind, fn) in _BENCH_REGISTRY.items()
        if suite == "all" or suite == kind
    ]


def cmd_bench(args) -> int:
    """Record/compare benchmark results in the persistent baseline store."""
    from .obs.baseline import (
        BaselineStore,
        current_git_sha,
        detect_regression,
        host_fingerprint,
    )

    store = BaselineStore(args.store)
    sha = current_git_sha()

    def fingerprint(kind: str) -> str:
        # Modeled results depend only on the modeled platform; measured
        # results additionally key on this machine (host_fingerprint folds
        # the interpreter/arch in by itself).
        return host_fingerprint({"platform": args.platform, "kind": kind})

    if args.bench_command == "list":
        pairs = store.bench_ids()
        if not pairs:
            print(f"no benchmark history in {args.store}")
            return 0
        rows = []
        for bench_id, fp in pairs:
            records = store.records(bench_id, fp)
            rows.append([
                bench_id, fp, len(records),
                f"{records[-1].value:.6g} {records[-1].unit}" if records else "-",
                records[-1].git_sha if records else "-",
            ])
        print(format_table(
            ["bench", "fingerprint", "n", "latest", "sha"], rows
        ))
        return 0

    specs = _bench_specs(args.suite)
    if not specs:
        print(f"error: no benchmarks in suite {args.suite!r}", file=sys.stderr)
        return 2

    results = []
    for bench_id, kind, fn in specs:
        value, meta = fn(args.platform)
        meta = {**meta, "platform": args.platform, "suite": kind}
        results.append((bench_id, kind, value, meta))

    if args.bench_command == "run":
        rows = []
        for bench_id, kind, value, meta in results:
            record = store.record(
                bench_id, value, git_sha=sha,
                fingerprint=fingerprint(kind), meta=meta,
            )
            rows.append([bench_id, kind, f"{record.value:.6g} s", record.git_sha])
        print(format_table(["bench", "suite", "value", "sha"], rows))
        print(f"{len(rows)} result(s) appended to {args.store}")
        return 0

    # bench compare
    verdicts = []
    for bench_id, kind, value, meta in results:
        fp = fingerprint(kind)
        baseline = store.baseline_values(bench_id, fp)
        threshold = (
            args.threshold
            if args.threshold is not None
            else _BENCH_THRESHOLDS[kind]
        )
        verdict = detect_regression(bench_id, value, baseline, threshold=threshold)
        verdicts.append(verdict)
        prefix = "warning" if verdict.status == "insufficient-baseline" else verdict.status
        print(f"[{prefix}] {verdict.render()}")
        if args.record:
            store.record(
                bench_id, value, git_sha=sha, fingerprint=fingerprint(kind),
                meta=meta,
            )
    regressions = [v for v in verdicts if v.is_regression]
    if args.json is not None:
        path = args.json or f"BENCH_{sha}.json"
        payload = {
            "git_sha": sha,
            "store": args.store,
            "suite": args.suite,
            "platform": args.platform,
            "regressions": len(regressions),
            "verdicts": [v.to_jsonable() for v in verdicts],
        }
        try:
            obs.dump_json(payload, path)
        except OSError as exc:
            print(f"error: cannot write {path}: {exc}", file=sys.stderr)
            return 1
        print(f"comparison written to {path}", file=sys.stderr)
    if regressions:
        print(
            f"{len(regressions)} regression(s) detected", file=sys.stderr
        )
        return 1
    return 0


def cmd_trace_export(args) -> int:
    """Tune + simulate one shape and export the full telemetry picture."""
    platform = get_platform(args.platform)
    shape = _shape_from_args(args)
    mapping = _mapping_from_store_or_cache(args, platform, shape)
    if mapping is None:
        cache = MappingCache(args.cache) if args.cache else None
        mapping = AutoTuner(platform, cache=cache).tune(shape).mapping
    PIMSimulator(platform).run(shape, mapping)
    kernel_traces = []
    trace = _maybe_trace_kernel(shape, mapping, platform)
    if trace is not None:
        kernel_traces.append(trace)
    document = obs.write_chrome_trace(
        args.out,
        spans=obs.get_tracer().finished_spans(),
        kernel_traces=kernel_traces,
        metrics=obs.get_registry().snapshot(),
    )
    print(f"chrome trace written to {args.out} "
          f"({len(document['traceEvents'])} events)")
    print("open it in Perfetto (https://ui.perfetto.dev) or chrome://tracing")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PIM-DL reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    platforms = sub.add_parser("platforms", help="list modeled DRAM-PIM platforms")
    platforms.add_argument("--json", action="store_true",
                           help="machine-readable output")

    tune = sub.add_parser("tune", help="auto-tune a LUT workload (Algorithm 1)")
    tune.add_argument("--platform", default="upmem", choices=sorted(PLATFORMS))
    _add_shape_arguments(tune)
    tune.add_argument("--amortize-lut", action="store_true",
                      help="treat LUTs as resident in PIM memory")
    tune.add_argument("--store", help="JSON mapping store to update")
    tune.add_argument("--jobs", type=int, metavar="N", default=1,
                      help="parallel search workers (0 = one per CPU; "
                           "results are identical to --jobs 1)")
    tune.add_argument("--cache", metavar="DIR",
                      help="persistent mapping cache directory "
                           "(warm-start lookup + write-back)")
    tune.add_argument("--progress", type=int, metavar="N", default=0,
                      help="print search progress every N candidates")
    _add_telemetry_arguments(tune)

    simulate = sub.add_parser("simulate", help="run the event-level simulator")
    simulate.add_argument("--platform", default="upmem", choices=sorted(PLATFORMS))
    _add_shape_arguments(simulate)
    simulate.add_argument("--store", help="JSON mapping store to read")
    simulate.add_argument("--cache", metavar="DIR",
                          help="persistent mapping cache directory to read")
    simulate.add_argument(
        "--overlap", action="store_true",
        help="double-buffer the micro-kernel loop: tile i+1's transfer "
             "overlaps tile i's lookup/reduce",
    )
    simulate.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="TRACE",
        help="print the per-phase bottleneck attribution; with a PATH, "
             "also write the per-rank occupancy Chrome trace there "
             "(per-rank lanes ride along in --emit-trace either way)",
    )
    _add_telemetry_arguments(simulate)

    flops = sub.add_parser("flops", help="GEMM vs LUT-NN op counts (Fig. 3)")
    _add_shape_arguments(flops)
    flops.add_argument("--json", action="store_true", help="machine-readable output")

    compare = sub.add_parser("compare", help="end-to-end engine comparison")
    compare.add_argument("--model", default="bert-base",
                         choices=sorted(EVAL_MODELS))
    compare.add_argument("--platform", default="upmem", choices=sorted(PLATFORMS))
    compare.add_argument("--v", type=int, default=4)
    compare.add_argument("--ct", type=int, default=16)
    compare.add_argument("--measure-host", action="store_true",
                         help="measure this machine's host CCS kernel and "
                              "use it instead of the roofline estimate")
    compare.add_argument("--dtype", choices=["auto", "float32", "float64"],
                         default="float32",
                         help="host kernel compute dtype for --measure-host")
    compare.add_argument("--block-rows", type=int, default=None, metavar="N",
                         help="host kernel row-block size for --measure-host")
    compare.add_argument("--overlap", action="store_true",
                         help="run the PIM-DL engine with the double-"
                              "buffered host<->PIM overlap pipeline")
    compare.add_argument("--json", action="store_true",
                         help="machine-readable output")
    compare.add_argument("--attribution", action="store_true",
                         help="print per-phase bottleneck attribution for "
                              "each engine")
    _add_telemetry_arguments(compare)

    kernels = sub.add_parser(
        "kernels",
        help="benchmark + parity-check the host kernels vs the references",
    )
    _add_shape_arguments(kernels)
    kernels.add_argument("--dtype", choices=["auto", "float32", "float64"],
                         default="float32",
                         help="CCS compute dtype (auto preserves the input's)")
    kernels.add_argument("--block-rows", type=int, default=None, metavar="N",
                         help="rows per kernel block")
    kernels.add_argument("--int8", action="store_true",
                         help="also benchmark the fused INT8 lookup path")
    kernels.add_argument("--repeats", type=int, default=3,
                         help="best-of-N timing repeats")
    kernels.add_argument("--search", action="store_true",
                         help="search the measured kernel schedule (block "
                              "sizes, gather strategy) for this shape "
                              "instead of the parity benchmark")
    kernels.add_argument("--schedule-cache", metavar="DIR",
                         help="persistent kernel-schedule cache directory "
                              "for --search (hit skips all measurements)")
    kernels.add_argument("--seed", type=int, default=0)
    kernels.add_argument("--json", action="store_true",
                         help="machine-readable output")
    _add_telemetry_arguments(kernels)

    faults = sub.add_parser(
        "faults",
        help="serve requests under an injected fault scenario (retry/remap/"
             "fallback ladder)",
    )
    faults.add_argument("--model", default="bert-base",
                        choices=sorted(EVAL_MODELS))
    faults.add_argument("--platform", default="upmem", choices=sorted(PLATFORMS))
    faults.add_argument("--v", type=int, default=4)
    faults.add_argument("--ct", type=int, default=16)
    faults.add_argument("--layers", type=int, default=None, metavar="N",
                        help="override the model's layer count (quick runs)")
    faults.add_argument("--prompt-len", type=int, default=None, metavar="N")
    faults.add_argument("--generate-len", type=int, default=16, metavar="N")
    faults.add_argument("--batch", type=int, default=None, metavar="N")
    faults.add_argument("--requests", type=int, default=2, metavar="N",
                        help="requests to serve (first pays recovery; the "
                             "rest show the degraded steady state)")
    faults.add_argument("--scenario", metavar="PATH",
                        help="JSON fault-plan file (overrides the fault flags)")
    faults.add_argument("--seed", type=int, default=0,
                        help="fault injection seed (bit-flip positions)")
    faults.add_argument("--fail-ranks", default="", metavar="R0,R1",
                        help="comma-separated dead PIM rank ids")
    faults.add_argument("--fail-pes", type=int, default=0, metavar="N",
                        help="additional individual dead PEs")
    faults.add_argument("--straggler", type=float, default=1.0, metavar="X",
                        help="micro-kernel slowdown factor (>= 1)")
    faults.add_argument("--timeouts", type=int, default=0, metavar="N",
                        help="leading PIM transfers that time out")
    faults.add_argument("--bit-flips", type=int, default=0, metavar="N",
                        help="bit flips injected into each device LUT table")
    faults.add_argument("--max-retries", type=int, default=3, metavar="N",
                        help="transient-fault retry budget")
    faults.add_argument("--no-functional", action="store_true",
                        help="skip the functional kernel parity check")
    faults.add_argument("--json", action="store_true",
                        help="machine-readable output")
    _add_telemetry_arguments(faults)

    serve_sim = sub.add_parser(
        "serve-sim",
        help="continuous-batching serving simulation under a request "
             "arrival stream (TTFT/TPOT percentiles, SLO goodput)",
    )
    serve_sim.add_argument("--model", default="bert-base",
                           choices=sorted(EVAL_MODELS))
    serve_sim.add_argument("--platform", default="upmem",
                           choices=sorted(PLATFORMS))
    serve_sim.add_argument("--v", type=int, default=4)
    serve_sim.add_argument("--ct", type=int, default=16)
    serve_sim.add_argument("--layers", type=int, default=None, metavar="N",
                           help="override the model's layer count (quick runs)")
    serve_sim.add_argument("--native", action="store_true",
                           help="serve on the native GEMM/GEMV engines "
                                "instead of LUT-NN")
    serve_sim.add_argument("--requests", type=int, default=64, metavar="N")
    serve_sim.add_argument("--prompt-len", type=int, default=128, metavar="N")
    serve_sim.add_argument("--generate-len", type=int, default=32, metavar="N")
    serve_sim.add_argument("--batch", type=int, default=1, metavar="N",
                           help="sequences bundled per request (batch hint)")
    serve_sim.add_argument("--arrivals", choices=["poisson", "uniform"],
                           default="poisson")
    serve_sim.add_argument("--seed", type=int, default=0)
    serve_sim.add_argument("--rate", type=float, default=None, metavar="RPS",
                           help="offered arrival rate; default derives from "
                                "--utilization")
    serve_sim.add_argument("--utilization", type=float, default=0.8,
                           metavar="RHO",
                           help="offered load as a fraction of the FIFO "
                                "service rate (may exceed 1 to overload "
                                "the FIFO baseline)")
    serve_sim.add_argument("--max-batch", type=int, default=8, metavar="N",
                           help="sequences decoding concurrently")
    serve_sim.add_argument("--max-context-tokens", type=int, default=1 << 20,
                           metavar="N", help="KV-token cap across the batch")
    serve_sim.add_argument("--queue-cap", type=int, default=1024, metavar="N",
                           help="bounded wait queue; overflow rejects")
    serve_sim.add_argument("--chunked-prefill", action="store_true",
                           help="interleave prompt prefill in chunks with "
                                "decode steps")
    serve_sim.add_argument("--prefill-chunk", type=int, default=128,
                           metavar="N", help="tokens prefilled per step "
                                             "under --chunked-prefill")
    serve_sim.add_argument("--slo-ttft-ms", type=float, default=None,
                           metavar="MS",
                           help="TTFT SLO (default: 2.5x unloaded prefill)")
    serve_sim.add_argument("--slo-e2e-ms", type=float, default=None,
                           metavar="MS",
                           help="end-to-end SLO (default: 2.5x unloaded "
                                "request)")
    serve_sim.add_argument("--compare-fifo", action="store_true",
                           help="also run the identical stream through the "
                                "single-server FIFO (batch-1) discipline")
    serve_sim.add_argument("--json", action="store_true",
                           help="machine-readable output")
    serve_sim.add_argument("--attribution", action="store_true",
                           help="print per-phase bottleneck attribution per "
                                "request class (prefill / decode)")
    _add_telemetry_arguments(serve_sim)

    serve_cluster = sub.add_parser(
        "serve-cluster",
        help="cluster-scale serving simulation: replicated/sharded "
             "scheduling with pluggable routing and replica failover",
    )
    serve_cluster.add_argument("--model", default="bert-base",
                               choices=sorted(EVAL_MODELS))
    serve_cluster.add_argument("--platform", default="upmem",
                               choices=sorted(PLATFORMS))
    serve_cluster.add_argument("--v", type=int, default=4)
    serve_cluster.add_argument("--ct", type=int, default=16)
    serve_cluster.add_argument("--layers", type=int, default=None, metavar="N",
                               help="override the model's layer count")
    serve_cluster.add_argument("--native", action="store_true",
                               help="serve on the native GEMM/GEMV engines "
                                    "instead of LUT-NN")
    serve_cluster.add_argument("--replicas", default="2", metavar="N[,N...]",
                               help="replica count (comma list with --sweep)")
    serve_cluster.add_argument("--shards", default="1", metavar="N[,N...]",
                               help="layer shards per replica (comma list "
                                    "with --sweep)")
    serve_cluster.add_argument("--routers", default="round-robin",
                               metavar="POLICY[,POLICY...]",
                               help="routing policy: round-robin, "
                                    "least-loaded, p2c, session-affinity "
                                    "(comma list with --sweep)")
    serve_cluster.add_argument("--requests", type=int, default=128,
                               metavar="N")
    serve_cluster.add_argument("--prompt-len", type=int, default=128,
                               metavar="N")
    serve_cluster.add_argument("--generate-len", type=int, default=32,
                               metavar="N")
    serve_cluster.add_argument("--batch", type=int, default=1, metavar="N",
                               help="sequences bundled per request")
    serve_cluster.add_argument("--sessions", type=int, default=None,
                               metavar="N",
                               help="tag requests with N client sessions "
                                    "(for session-affinity routing)")
    serve_cluster.add_argument("--arrivals", choices=["poisson", "uniform"],
                               default="poisson")
    serve_cluster.add_argument("--seed", type=int, default=0)
    serve_cluster.add_argument("--rate", type=float, default=None,
                               metavar="RPS",
                               help="offered arrival rate (single run only; "
                                    "default derives from --utilization)")
    serve_cluster.add_argument("--utilization", default="0.8",
                               metavar="RHO[,RHO...]",
                               help="offered load vs ONE unsharded replica's "
                                    "FIFO rate; >1 overloads a single "
                                    "replica (comma list with --sweep)")
    serve_cluster.add_argument("--sweep", action="store_true",
                               help="sweep replicas x shards x routers x "
                                    "utilization on identical streams")
    serve_cluster.add_argument("--max-batch", type=int, default=8,
                               metavar="N")
    serve_cluster.add_argument("--max-context-tokens", type=int,
                               default=1 << 20, metavar="N")
    serve_cluster.add_argument("--queue-cap", type=int, default=1024,
                               metavar="N",
                               help="per-replica wait queue; overflow rejects")
    serve_cluster.add_argument("--chunked-prefill", action="store_true")
    serve_cluster.add_argument("--prefill-chunk", type=int, default=128,
                               metavar="N")
    serve_cluster.add_argument("--slo-ttft-ms", type=float, default=None,
                               metavar="MS",
                               help="TTFT SLO (default: 2.5x unloaded "
                                    "prefill)")
    serve_cluster.add_argument("--slo-e2e-ms", type=float, default=None,
                               metavar="MS",
                               help="end-to-end SLO (default: 2.5x unloaded "
                                    "request)")
    serve_cluster.add_argument("--fail", action="append", metavar="R@T",
                               help="kill replica R at T seconds "
                                    "(repeatable)")
    serve_cluster.add_argument("--fail-ranks", default=None,
                               metavar="RANK[,RANK...]",
                               help="device-level fault plan: failed DRAM "
                                    "ranks, mapped to replica kills via the "
                                    "platform's ranks-per-replica")
    serve_cluster.add_argument("--fail-at", type=float, default=None,
                               metavar="S",
                               help="failure instant for --fail-ranks")
    serve_cluster.add_argument("--json", action="store_true",
                               help="machine-readable output")
    serve_cluster.add_argument("--attribution", action="store_true",
                               help="print cluster-level bottleneck "
                                    "attribution")
    _add_telemetry_arguments(serve_cluster)

    serve_disagg = sub.add_parser(
        "serve-disagg",
        help="disaggregated prefill/decode serving: separate prefill and "
             "decode pools joined by a KV-transfer cost, with pluggable "
             "placement policies",
    )
    serve_disagg.add_argument("--model", default="bert-base",
                              choices=sorted(EVAL_MODELS))
    serve_disagg.add_argument("--platform", default="upmem",
                              choices=sorted(PLATFORMS))
    serve_disagg.add_argument("--v", type=int, default=4)
    serve_disagg.add_argument("--ct", type=int, default=16)
    serve_disagg.add_argument("--layers", type=int, default=None, metavar="N",
                              help="override the model's layer count")
    serve_disagg.add_argument("--native", action="store_true",
                              help="serve on the native GEMM/GEMV engines "
                                   "instead of LUT-NN")
    serve_disagg.add_argument("--placement",
                              default="colocated,disaggregated,hybrid",
                              metavar="POLICY[,POLICY...]",
                              help="placement policy: colocated, "
                                   "disaggregated, hybrid (comma list with "
                                   "--sweep)")
    serve_disagg.add_argument("--prefill-device", choices=["pim", "host"],
                              default="pim",
                              help="prefill pool hardware: a second PIM "
                                   "engine or the compute-configured host "
                                   "roofline")
    serve_disagg.add_argument("--requests", type=int, default=96, metavar="N")
    serve_disagg.add_argument("--prompt-len", type=int, default=128,
                              metavar="N")
    serve_disagg.add_argument("--generate-len", type=int, default=64,
                              metavar="N",
                              help="decode-heavy default: goodput under "
                                   "overload is decode-bound")
    serve_disagg.add_argument("--batch", type=int, default=1, metavar="N",
                              help="sequences bundled per request")
    serve_disagg.add_argument("--arrivals", choices=["poisson", "uniform"],
                              default="poisson")
    serve_disagg.add_argument("--seed", type=int, default=0)
    serve_disagg.add_argument("--rate", type=float, default=None,
                              metavar="RPS",
                              help="offered arrival rate (single run only; "
                                   "default derives from --utilization)")
    serve_disagg.add_argument("--utilization", default="0.8,1.2,1.6",
                              metavar="RHO[,RHO...]",
                              help="offered load vs the colocated FIFO "
                                   "rate; >1 overloads the colocated "
                                   "engine (comma list with --sweep)")
    serve_disagg.add_argument("--sweep", action="store_true",
                              help="sweep placement x utilization on "
                                   "identical seeded streams and SLOs")
    serve_disagg.add_argument("--max-batch", type=int, default=8,
                              metavar="N")
    serve_disagg.add_argument("--max-context-tokens", type=int,
                              default=1 << 20, metavar="N")
    serve_disagg.add_argument("--queue-cap", type=int, default=1024,
                              metavar="N",
                              help="bounded wait queue; overflow rejects")
    serve_disagg.add_argument("--chunked-prefill", action="store_true")
    serve_disagg.add_argument("--prefill-chunk", type=int, default=128,
                              metavar="N")
    serve_disagg.add_argument("--slo-ttft-ms", type=float, default=None,
                              metavar="MS",
                              help="TTFT SLO (default: 2.5x unloaded "
                                   "prefill)")
    serve_disagg.add_argument("--slo-e2e-ms", type=float, default=None,
                              metavar="MS",
                              help="end-to-end SLO (default: 2.5x unloaded "
                                   "request)")
    serve_disagg.add_argument("--json", action="store_true",
                              help="machine-readable output")
    serve_disagg.add_argument("--attribution", action="store_true",
                              help="print per-phase bottleneck attribution "
                                   "per request class (prefill / decode / "
                                   "kv_transfer)")
    _add_telemetry_arguments(serve_disagg)

    moe = sub.add_parser(
        "moe",
        help="MoE expert-as-LUT serving sweep: experts x top-k x routing "
             "skew x expert placement, priced as max-over-ranks makespan",
    )
    moe.add_argument("--model", default="bert-base",
                     choices=sorted(EVAL_MODELS))
    moe.add_argument("--platform", default="upmem", choices=sorted(PLATFORMS))
    moe.add_argument("--v", type=int, default=4)
    moe.add_argument("--ct", type=int, default=16)
    moe.add_argument("--layers", type=int, default=None, metavar="N",
                     help="override the model's layer count")
    moe.add_argument("--experts", default="32", metavar="E[,E...]",
                     help="expert counts to sweep")
    moe.add_argument("--top-k", default="2", metavar="K[,K...]",
                     help="experts consulted per token")
    moe.add_argument("--routing", default="uniform,zipf",
                     metavar="KIND[,KIND...]",
                     help="token-to-expert routing: uniform, zipf")
    moe.add_argument("--zipf-s", type=float, default=1.2, metavar="S",
                     help="Zipf skew exponent (expert 0 hottest)")
    moe.add_argument("--placers", default="round-robin,balanced",
                     metavar="P[,P...]",
                     help="expert placement: round-robin, balanced")
    moe.add_argument("--seed", type=int, default=0,
                     help="routing trace seed")
    moe.add_argument("--json", action="store_true",
                     help="machine-readable output")
    moe.add_argument("--attribution", action="store_true",
                     help="print per-phase bottleneck attribution with the "
                          "rank-imbalance index and most-loaded ranks")
    _add_telemetry_arguments(moe)

    trace_export = sub.add_parser(
        "trace-export",
        help="tune + simulate one shape and write a Chrome-trace file",
    )
    trace_export.add_argument("--platform", default="upmem",
                              choices=sorted(PLATFORMS))
    _add_shape_arguments(trace_export)
    trace_export.add_argument("--store", help="JSON mapping store to read")
    trace_export.add_argument("--cache", metavar="DIR",
                              help="persistent mapping cache directory to read")
    trace_export.add_argument("--out", required=True, metavar="PATH",
                              help="output Chrome-trace JSON file")

    bench = sub.add_parser(
        "bench",
        help="run benchmarks against the persistent baseline store and "
             "detect performance regressions",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="run the suite and append results to the store"
    )
    bench_compare = bench_sub.add_parser(
        "compare", help="run the suite and compare against recorded history"
    )
    bench_list = bench_sub.add_parser(
        "list", help="show recorded benchmark histories"
    )
    for p in (bench_run, bench_compare, bench_list):
        p.add_argument("--store", default=".bench-store", metavar="DIR",
                       help="baseline store directory (default: .bench-store)")
    for p in (bench_run, bench_compare):
        p.add_argument("--suite", default="modeled",
                       choices=["modeled", "measured", "all"],
                       help="which benchmarks to run (default: modeled)")
        p.add_argument("--platform", default="upmem",
                       choices=sorted(PLATFORMS),
                       help="modeled PIM platform (default: upmem)")
    bench_compare.add_argument(
        "--threshold", type=float, default=None, metavar="REL",
        help="relative regression threshold override (default: 0.02 for "
             "modeled, 0.5 for measured benchmarks)")
    bench_compare.add_argument(
        "--record", action="store_true",
        help="also append the current results to the store after comparing")
    bench_compare.add_argument(
        "--json", nargs="?", const="", default=None, metavar="PATH",
        help="write the comparison as JSON (default name: BENCH_<sha>.json)")
    return parser


COMMANDS = {
    "platforms": cmd_platforms,
    "tune": cmd_tune,
    "simulate": cmd_simulate,
    "flops": cmd_flops,
    "compare": cmd_compare,
    "kernels": cmd_kernels,
    "faults": cmd_faults,
    "serve-sim": cmd_serve_sim,
    "serve-cluster": cmd_serve_cluster,
    "serve-disagg": cmd_serve_disagg,
    "moe": cmd_moe,
    "trace-export": cmd_trace_export,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
