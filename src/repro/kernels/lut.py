"""Fused table-lookup-and-accumulate kernels (paper Fig. 2 steps 6-7).

The reference :func:`repro.core.lut.lut_lookup` gathers with a 2-D fancy
index and pays two full passes over the index matrix per call for bounds
checking (``indices.min()`` plus ``indices.max()``).  The kernels here:

* pick the gather strategy by working-set size: small row blocks use one
  **flat gather** on a ``(CB*CT, F)`` view of the table (one index array,
  one gather, one reduction); once the ``(nb, CB, F)`` gather intermediate
  would spill out of cache the kernel switches to **per-codebook
  accumulation** — CB gathers of ``(nb, F)`` each, added straight into the
  output slice, so the accumulator stays cache-resident and the huge
  intermediate (the reference path's bottleneck: it writes and re-reads
  N*CB*F elements) is never materialized;
* validate bounds with a **single pass**: the signed index array is
  reinterpreted as unsigned of the same width, so a negative index becomes
  a huge value and one ``max() >= CT`` comparison catches both ends of the
  range at once.  The scan touches N*CB elements against the N*CB*F the
  gather moves, so its cost is ~1/F of the kernel.  (A per-codebook wrap —
  index >= CT landing in the next codebook's rows — is invisible to
  numpy's own flat-gather bounds check, which is why the explicit check
  stays.)  Corner case: an int8 index ``-1`` with CT=256 reinterprets to
  the valid unsigned 255 — at CT=256 use uint8 or wider indices, as the
  CCS kernel's int32 output always is.
* keep the **INT8 path fused**: the int8 table is gathered directly and
  accumulated in int32, with a single dequantization multiply at the end
  when the quantization scale is shared — never materializing a float
  copy of the LUT.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import obs
from .ccs import DEFAULT_BLOCK_ROWS

#: Largest (nb, CB, F) gather intermediate the flat strategy may create;
#: beyond this the per-codebook accumulation path wins on memory traffic.
_GATHER_BUDGET_BYTES = 8 << 20

#: Valid gather strategies: ``auto`` picks by working-set size (the
#: heuristic above); ``flat``/``per-codebook`` force one path — used by the
#: measured schedule search to replace the heuristic with a decision
#: actually timed on this machine.
GATHER_STRATEGIES = ("auto", "flat", "per-codebook")


def _flat_row_budget(strategy: str, n: int, row_bytes: int) -> int:
    """Rows per block the flat gather may take under ``strategy``."""
    if strategy not in GATHER_STRATEGIES:
        raise ValueError(
            f"unknown gather strategy {strategy!r}; choose from {GATHER_STRATEGIES}"
        )
    if strategy == "flat":
        return n if n > 0 else 1
    if strategy == "per-codebook":
        return 0
    return max(1, _GATHER_BUDGET_BYTES // max(row_bytes, 1))


def gather_offsets(cb: int, ct: int) -> np.ndarray:
    """(1, CB) int64 row offsets of each codebook in the flat (CB*CT, F) view."""
    return (np.arange(cb, dtype=np.int64) * ct)[None, :]


def _checked_indices(indices: np.ndarray, cb: int, ct: int) -> np.ndarray:
    """Validate an (N, CB) index matrix and return an in-range unsigned view.

    The unsigned reinterpretation makes the bounds check a single pass:
    negatives map far past any real table size, so one ``max() >= CT``
    comparison replaces the reference's separate ``min()`` and ``max()``
    scans.  The view never copies for the contiguous int32 indices the CCS
    kernel emits.
    """
    idx = np.asarray(indices)
    if idx.ndim != 2:
        raise ValueError("indices must be 2-D (N, CB)")
    if idx.shape[1] != cb:
        raise ValueError(f"indices CB={idx.shape[1]} != LUT CB={cb}")
    if idx.dtype.kind == "i":
        if not idx.flags.c_contiguous:
            idx = np.ascontiguousarray(idx)
        idx = idx.view(np.dtype(f"uint{idx.dtype.itemsize * 8}"))
    elif idx.dtype.kind != "u":
        raise TypeError(f"indices must be an integer array, got {idx.dtype}")
    if idx.size and int(idx.max()) >= ct:
        raise IndexError("centroid index out of LUT range")
    return idx


def lut_gather_reduce(
    indices: np.ndarray,
    lut: np.ndarray,
    offsets: Optional[np.ndarray] = None,
    block_rows: Optional[int] = None,
    strategy: str = "auto",
) -> np.ndarray:
    """Fused table lookup + accumulate: ``out[n] = sum_cb lut[cb, idx[n, cb]]``.

    Parameters
    ----------
    indices: (N, CB) integer index matrix from closest-centroid search.
    lut: (CB, CT, F) pre-computed tables (any float dtype).
    offsets: optional precomputed :func:`gather_offsets` (cached per layer).
    block_rows: rows per block; bounds the (nb, CB, F) gather working set.
    strategy: ``"auto"`` (working-set heuristic), ``"flat"``, or
        ``"per-codebook"`` — force a gather path, e.g. from a measured
        :class:`~repro.kernels.schedule.KernelSchedule`.

    Raises
    ------
    IndexError
        If any index falls outside ``[0, CT)`` — detected by one
        ``max() >= CT`` pass over the unsigned-reinterpreted indices.
    """
    if lut.ndim != 3:
        raise ValueError("LUT must have shape (CB, CT, F)")
    cb, ct, f = lut.shape
    unsigned = _checked_indices(indices, cb, ct)
    if offsets is None:
        offsets = gather_offsets(cb, ct)
    lut2d = lut.reshape(cb * ct, f)
    n = unsigned.shape[0]
    block = int(block_rows or DEFAULT_BLOCK_ROWS)
    flat_rows = _flat_row_budget(strategy, n, cb * f * lut.itemsize)
    out = np.empty((n, f), dtype=lut.dtype)
    if cb == 0:
        out.fill(0)
        n = 0  # nothing to gather
    for start in range(0, n, block):
        stop = min(start + block, n)
        sub = unsigned[start:stop]
        if stop - start <= flat_rows:
            flat = sub.astype(np.int64) + offsets
            out[start:stop] = lut2d[flat].sum(axis=1)
        else:
            # Per-codebook accumulation: the (nb, F) output slice stays
            # cache-resident; no (nb, CB, F) intermediate is materialized.
            seg = out[start:stop]
            seg[:] = lut[0][sub[:, 0]]
            for c in range(1, cb):
                seg += lut[c][sub[:, c]]
    registry = obs.get_registry()
    registry.counter("kernels.lut.gathers").inc()
    registry.counter("kernels.lut.rows").inc(unsigned.shape[0])
    return out


def lut_gather_reduce_quantized(
    indices: np.ndarray,
    qlut,
    offsets: Optional[np.ndarray] = None,
    block_rows: Optional[int] = None,
    strategy: str = "auto",
) -> np.ndarray:
    """Fused INT8 lookup + accumulate against a :class:`QuantizedLUT`.

    The int8 table is gathered directly (1 byte/element of traffic — the
    whole point of INT8 deployment, paper §6.3).  When every codebook
    shares one quantization scale the partial sums accumulate exactly in
    int32 and a *single* dequantization multiply produces the output;
    with per-codebook scales the gathered int8 values are widened once
    and the scales are folded into the codebook reduction (a tensordot),
    so dequantization still happens once per output rather than once per
    table entry.
    """
    values = qlut.values
    scales = np.asarray(qlut.scales, dtype=np.float64)
    if values.ndim != 3:
        raise ValueError("quantized LUT must have shape (CB, CT, F)")
    cb, ct, f = values.shape
    unsigned = _checked_indices(indices, cb, ct)
    if offsets is None:
        offsets = gather_offsets(cb, ct)
    q2d = values.reshape(cb * ct, f)
    common = float(scales[0]) if cb and np.all(scales == scales[0]) else None
    n = unsigned.shape[0]
    block = int(block_rows or DEFAULT_BLOCK_ROWS)
    # The int8 gather intermediate is 1 byte/element, so the flat strategy
    # holds much longer than in the float kernel.
    flat_rows = _flat_row_budget(strategy, n, cb * f)
    out = np.empty((n, f), dtype=np.float64)
    if cb == 0:
        out.fill(0)
        n = 0  # nothing to gather
    for start in range(0, n, block):
        stop = min(start + block, n)
        sub = unsigned[start:stop]
        if common is not None:
            if stop - start <= flat_rows:
                gathered = q2d[sub.astype(np.int64) + offsets]
                acc = gathered.sum(axis=1, dtype=np.int32)
            else:
                acc = values[0][sub[:, 0]].astype(np.int32)
                for c in range(1, cb):
                    acc += values[c][sub[:, c]]
            # Exact integer accumulation, one dequant multiply.
            out[start:stop] = acc * common
        else:
            # Per-codebook scales: fold each codebook's dequant multiply
            # into its accumulation step — still one multiply per gathered
            # (nb, F) slice, never a float copy of the whole table.
            seg = out[start:stop]
            seg[:] = values[0][sub[:, 0]] * scales[0]
            for c in range(1, cb):
                seg += values[c][sub[:, c]] * scales[c]
    registry = obs.get_registry()
    registry.counter("kernels.lut.int8_gathers").inc()
    registry.counter("kernels.lut.rows").inc(unsigned.shape[0])
    return out
