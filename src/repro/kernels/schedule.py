"""Measured host kernel-schedule search + persistent schedule cache.

``CCSKernel``'s ``DEFAULT_BLOCK_ROWS`` and the gather kernels'
flat-vs-per-codebook working-set threshold are hand-tuned heuristics — good
defaults for the machine they were derived on, but exactly the kind of
constant a searched schedule beats (ATiM shows the same for in-DRAM
schedules).  This module replaces them with a *measured* per-(shape, dtype,
CT) search:

* :func:`search_kernel_schedule` times every candidate ``block_rows`` for
  the CCS kernel and every ``(block_rows, strategy)`` pair for the gather
  kernel on real data, min-of-k per candidate, and returns the fastest
  combination as a :class:`KernelSchedule`.  The hand-tuned default
  configuration is always one of the candidates and its timing is recorded
  as ``baseline_seconds``, so the winner is *structurally* never slower
  than the default under the same measurement.
* :class:`KernelScheduleCache` persists schedules content-addressed by
  (shape, dtype, host fingerprint, format version) — the same
  atomic-write / lenient-read machinery as
  :class:`repro.mapping.store.MappingCache`, self-contained here because
  ``repro.kernels`` depends only on numpy and :mod:`repro.obs`.  A cache
  hit returns the stored schedule with zero candidates re-measured.

:class:`~repro.mapping.tuner.AutoTuner` and
``GenerationServer.warmup()`` warm-start from the cache so serving pays
the search once per machine.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from .. import obs
from ..obs.baseline import host_fingerprint
from .ccs import CCSKernel, DEFAULT_BLOCK_ROWS
from .lut import lut_gather_reduce
from .profile import HostKernelProfile, _best_seconds

#: Cache entries from other format versions are ignored (never deleted).
FORMAT_VERSION = 1

#: Row-block candidates the search times (the hand-tuned default is always
#: added, so the baseline configuration is itself a candidate).
DEFAULT_BLOCK_ROWS_CANDIDATES: Tuple[int, ...] = (256, 1024, 4096, 16384)

#: Gather strategies the search forces (``auto`` — the heuristic — is the
#: baseline configuration).
_SEARCHED_STRATEGIES: Tuple[str, ...] = ("flat", "per-codebook")


@dataclass(frozen=True)
class KernelSchedule:
    """The measured-fastest host kernel configuration for one shape.

    ``ccs_seconds``/``gather_seconds`` are the winner's min-of-k timings;
    ``baseline_seconds`` is the hand-tuned default configuration timed in
    the same session (``speedup_vs_default >= 1.0`` by construction).
    ``candidates_evaluated`` is 0 when the schedule came from a cache hit.
    """

    dtype: str
    ccs_block_rows: int
    gather_block_rows: int
    gather_strategy: str
    ccs_seconds: float
    gather_seconds: float
    baseline_seconds: float
    shape: Tuple[int, int, int, int, int]
    repeats: int = 1
    candidates_evaluated: int = 0

    @property
    def total_seconds(self) -> float:
        return self.ccs_seconds + self.gather_seconds

    @property
    def speedup_vs_default(self) -> float:
        if self.total_seconds <= 0:
            return 1.0
        return self.baseline_seconds / self.total_seconds

    def to_profile(self) -> HostKernelProfile:
        """Express the winner as the engines' :class:`HostKernelProfile`."""
        n, h, f, v, ct = self.shape
        cb = h // v
        return HostKernelProfile(
            dtype=self.dtype,
            block_rows=self.ccs_block_rows,
            ccs_ops_per_s=3.0 * n * h * ct / max(self.ccs_seconds, 1e-12),
            gather_elements_per_s=float(n) * cb * f
            / max(self.gather_seconds, 1e-12),
            measured_shape=self.shape,
            repeats=self.repeats,
        )

    def to_jsonable(self) -> dict:
        return {
            "dtype": self.dtype,
            "ccs_block_rows": self.ccs_block_rows,
            "gather_block_rows": self.gather_block_rows,
            "gather_strategy": self.gather_strategy,
            "ccs_seconds": self.ccs_seconds,
            "gather_seconds": self.gather_seconds,
            "baseline_seconds": self.baseline_seconds,
            "shape": list(self.shape),
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelSchedule":
        return cls(
            dtype=str(data["dtype"]),
            ccs_block_rows=int(data["ccs_block_rows"]),
            gather_block_rows=int(data["gather_block_rows"]),
            gather_strategy=str(data["gather_strategy"]),
            ccs_seconds=float(data["ccs_seconds"]),
            gather_seconds=float(data["gather_seconds"]),
            baseline_seconds=float(data["baseline_seconds"]),
            shape=tuple(int(x) for x in data["shape"]),
            repeats=int(data.get("repeats", 1)),
            candidates_evaluated=0,
        )


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write-then-rename so readers never observe a torn entry."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _shape_key(n: int, h: int, f: int, v: int, ct: int) -> str:
    return f"n{n}_h{h}_f{f}_v{v}_ct{ct}"


class KernelScheduleCache:
    """Directory cache of measured :class:`KernelSchedule` entries.

    One JSON file per (shape, dtype), named
    ``v{FORMAT_VERSION}-{host_fp}-{shape_key}-{dtype}.json``.  Measured
    timings are only meaningful on the machine that produced them, so the
    key is the *host* fingerprint (:func:`repro.obs.baseline.host_fingerprint`),
    not a platform model fingerprint.  Reads are lenient: a corrupt, stale,
    or foreign entry is rejected with a :class:`RuntimeWarning` and treated
    as a miss, never an error.
    """

    def __init__(self, root: str, fingerprint: Optional[str] = None):
        self.root = root
        self.fingerprint = fingerprint or host_fingerprint(
            {"kind": "kernel-schedule"}
        )

    def entry_path(self, n: int, h: int, f: int, v: int, ct: int, dtype: str) -> str:
        name = (
            f"v{FORMAT_VERSION}-{self.fingerprint}-"
            f"{_shape_key(n, h, f, v, ct)}-{dtype}.json"
        )
        return os.path.join(self.root, name)

    @staticmethod
    def _reject(path: str, reason: str) -> None:
        warnings.warn(
            f"ignoring kernel-schedule cache entry {path}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        obs.get_registry().counter("kernel_schedule_cache.rejected").inc()

    def get(
        self, n: int, h: int, f: int, v: int, ct: int, dtype: str
    ) -> Optional[KernelSchedule]:
        path = self.entry_path(n, h, f, v, ct, dtype)
        registry = obs.get_registry()
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            registry.counter("kernel_schedule_cache.misses").inc()
            return None
        except (OSError, json.JSONDecodeError) as exc:
            self._reject(path, f"unreadable ({exc})")
            registry.counter("kernel_schedule_cache.misses").inc()
            return None
        try:
            if entry.get("format_version") != FORMAT_VERSION:
                raise ValueError("format version mismatch")
            if entry.get("fingerprint") != self.fingerprint:
                raise ValueError("host fingerprint mismatch")
            schedule = KernelSchedule.from_dict(entry["schedule"])
            if schedule.shape != (n, h, f, v, ct) or schedule.dtype != dtype:
                raise ValueError("shape/dtype mismatch")
        except (KeyError, TypeError, ValueError) as exc:
            self._reject(path, str(exc))
            registry.counter("kernel_schedule_cache.misses").inc()
            return None
        registry.counter("kernel_schedule_cache.hits").inc()
        return schedule

    def put(self, schedule: KernelSchedule) -> str:
        n, h, f, v, ct = schedule.shape
        path = self.entry_path(n, h, f, v, ct, schedule.dtype)
        _atomic_write_json(
            path,
            {
                "format_version": FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "schedule": schedule.to_jsonable(),
            },
        )
        obs.get_registry().counter("kernel_schedule_cache.writes").inc()
        return path


def search_kernel_schedule(
    n: int = 128,
    h: int = 768,
    f: int = 768,
    v: int = 4,
    ct: int = 16,
    dtype: str = "float32",
    block_rows_candidates: Optional[Iterable[int]] = None,
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
    cache: Optional[KernelScheduleCache] = None,
) -> KernelSchedule:
    """Measure every candidate host-kernel configuration; return the winner.

    The hand-tuned default (``DEFAULT_BLOCK_ROWS`` rows, ``auto`` gather
    strategy) is always among the candidates and its timing becomes
    ``baseline_seconds`` — the winner's ``speedup_vs_default`` is therefore
    >= 1.0 by construction, not by luck against re-measurement noise.

    With ``cache``, a valid stored schedule is returned immediately
    (``candidates_evaluated == 0``) and a fresh search result is written
    back for the next caller.
    """
    if h % v:
        raise ValueError(f"H={h} not divisible by V={v}")
    dtype = str(np.dtype(dtype))
    if cache is not None:
        hit = cache.get(n, h, f, v, ct, dtype)
        if hit is not None:
            return hit

    rng = rng or np.random.default_rng(0)
    cb = h // v
    x = rng.normal(size=(n, h))
    centroids = rng.normal(size=(cb, ct, v))
    lut = rng.normal(size=(cb, ct, f)).astype(dtype)

    blocks = sorted(
        set(int(b) for b in (block_rows_candidates or DEFAULT_BLOCK_ROWS_CANDIDATES))
        | {DEFAULT_BLOCK_ROWS}
    )
    if any(b <= 0 for b in blocks):
        raise ValueError("block_rows candidates must be positive")

    registry = obs.get_registry()
    candidates = 0
    with obs.get_tracer().span(
        "kernels.schedule_search", n=n, h=h, f=f, v=v, ct=ct, dtype=dtype
    ) as span:
        # --- CCS: block_rows search -----------------------------------
        ccs_results = {}
        indices = None
        for block in blocks:
            kernel = CCSKernel(dtype=dtype, block_rows=block)
            kernel.prepare(centroids, version=0)
            if indices is None:
                indices = kernel.search(x, centroids, version=0)
            ccs_results[block] = _best_seconds(
                lambda: kernel.search(x, centroids, version=0), repeats
            )
            candidates += 1
        ccs_block = min(ccs_results, key=lambda b: (ccs_results[b], b))

        # --- Gather: (block_rows, strategy) search --------------------
        baseline_gather_key = (DEFAULT_BLOCK_ROWS, "auto")
        gather_grid = [
            (block, strategy)
            for block in blocks
            for strategy in _SEARCHED_STRATEGIES
        ] + [baseline_gather_key]
        gather_results = {}
        for block, strategy in gather_grid:
            gather_results[(block, strategy)] = _best_seconds(
                lambda: lut_gather_reduce(
                    indices, lut, block_rows=block, strategy=strategy
                ),
                repeats,
            )
            candidates += 1
        gather_block, gather_strategy = min(
            gather_results, key=lambda k: (gather_results[k], k)
        )

        baseline = ccs_results[DEFAULT_BLOCK_ROWS] + gather_results[baseline_gather_key]
        schedule = KernelSchedule(
            dtype=dtype,
            ccs_block_rows=ccs_block,
            gather_block_rows=gather_block,
            gather_strategy=gather_strategy,
            ccs_seconds=ccs_results[ccs_block],
            gather_seconds=gather_results[(gather_block, gather_strategy)],
            baseline_seconds=baseline,
            shape=(n, h, f, v, ct),
            repeats=max(1, repeats),
            candidates_evaluated=candidates,
        )
        span.set_attribute("candidates", candidates)
        span.set_attribute("speedup_vs_default", schedule.speedup_vs_default)

    registry.counter("kernel_schedule.searches").inc()
    registry.counter("kernel_schedule.candidates").inc(candidates)
    registry.gauge("kernel_schedule.speedup_vs_default").set(
        schedule.speedup_vs_default
    )
    if cache is not None:
        cache.put(schedule)
    return schedule
