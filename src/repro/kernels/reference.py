"""Frozen pre-kernel reference implementations.

These are verbatim copies of the numeric paths as they existed *before*
the ``repro.kernels`` layer landed: float64 einsum CCS with no constant
reuse, table lookup with a full ``min()/max()`` bounds scan, and the
per-cluster Python loop of Lloyd's update.  They exist so that

* parity property tests can assert the fast kernels produce bit-identical
  indices / allclose outputs against the exact old semantics, and
* ``benchmarks/test_ext_kernel_speed.py`` can measure the speedup of the
  kernel layer against a stable baseline.

Do not optimize this module; it is the fixed point the kernels are
measured against.
"""

from __future__ import annotations

import numpy as np


def squared_distances_reference(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pre-kernel distance computation: float64 einsum, no cached constants."""
    cb, ct, v = centroids.shape
    x = np.asarray(x, dtype=np.float64)
    cents = np.asarray(centroids, dtype=np.float64)
    sub = x.reshape(x.shape[0], cb, v)
    cross = np.einsum("ncv,ckv->nck", sub, cents)
    a_sq = np.sum(sub**2, axis=-1)[:, :, None]
    c_sq = np.sum(cents**2, axis=-1)[None, :, :]
    return a_sq - 2.0 * cross + c_sq


def ccs_reference(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pre-kernel closest-centroid search: float64 upcast + full distances."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("CCS input must be 2-D (N, H)")
    dists = squared_distances_reference(x, centroids)
    return np.argmin(dists, axis=-1).astype(np.int32)


def lut_lookup_reference(indices: np.ndarray, lut: np.ndarray) -> np.ndarray:
    """Pre-kernel lookup: per-call min/max bounds scan + 2-D fancy gather."""
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise ValueError("indices must be 2-D (N, CB)")
    cb = lut.shape[0]
    if indices.shape[1] != cb:
        raise ValueError(f"indices CB={indices.shape[1]} != LUT CB={cb}")
    if indices.min() < 0 or indices.max() >= lut.shape[1]:
        raise IndexError("centroid index out of LUT range")
    cb_idx = np.arange(cb)[None, :]
    gathered = lut[cb_idx, indices]  # (N, CB, F)
    return gathered.sum(axis=1)


def lloyd_update_reference(
    points: np.ndarray, labels: np.ndarray, k: int, centroids: np.ndarray
) -> np.ndarray:
    """Pre-kernel Lloyd update: Python loop over clusters, distances
    recomputed inside the loop for every empty cluster."""
    new_centroids = centroids.copy()
    for j in range(k):
        members = points[labels == j]
        if len(members):
            new_centroids[j] = members.mean(axis=0)
        else:
            dists = np.sum((points - centroids[labels]) ** 2, axis=1)
            new_centroids[j] = points[np.argmax(dists)]
    return new_centroids
