"""LUT table integrity checking: cheap per-codebook checksums.

A deployed LUT table is model state resident in PIM DRAM banks for the
lifetime of the serving process, and commodity DRAM-PIMs ship without the
ECC budget of server DIMMs — "Towards Efficient LUT-based PIM" (PAPERS.md)
calls out reliability as a first-order limit of LUT-PIM at scale.  A
single flipped bit in a table silently corrupts every output row that
selects the affected entry, so the serving stack checksums tables at
codebook granularity:

* :func:`lut_checksums` — one CRC32 per codebook slab ``lut[cb]``,
  computed once when the table is built/loaded.  Cost is one streaming
  pass over the table (far below one inference) and the result is a tiny
  ``(CB,)`` vector shipped alongside the table.
* :func:`verify_lut` — recompute and compare; returns the indices of
  corrupted codebooks so recovery can re-distribute (or fall back) at
  codebook granularity instead of rebuilding the whole layer.

CRC32 detects every single-bit error and all error bursts up to 32 bits
within a codebook slab, which covers the radiation/retention flip model
used by :class:`repro.resilience.FaultInjector`.
"""

from __future__ import annotations

import zlib

import numpy as np


def lut_checksums(lut: np.ndarray) -> np.ndarray:
    """Per-codebook CRC32 checksums of a (CB, CT, F) LUT table.

    Works on any dtype (float tables and INT8-quantized tables alike):
    the checksum covers the raw bytes, so any representational change —
    including sign/NaN-payload bit flips invisible to value comparisons —
    changes the checksum.
    """
    lut = np.ascontiguousarray(lut)
    if lut.ndim != 3:
        raise ValueError(f"LUT must be (CB, CT, F), got shape {lut.shape}")
    return np.array(
        [zlib.crc32(lut[cb].tobytes()) for cb in range(lut.shape[0])],
        dtype=np.uint32,
    )


def verify_lut(lut: np.ndarray, checksums: np.ndarray) -> np.ndarray:
    """Return the indices of codebooks whose checksum no longer matches.

    An empty result means the table is intact.  ``checksums`` must come
    from :func:`lut_checksums` on the trusted copy of the same table.
    """
    checksums = np.asarray(checksums, dtype=np.uint32)
    if checksums.ndim != 1 or checksums.shape[0] != np.asarray(lut).shape[0]:
        raise ValueError(
            f"expected {np.asarray(lut).shape[0]} checksums, got {checksums.shape}"
        )
    current = lut_checksums(lut)
    return np.flatnonzero(current != checksums)
