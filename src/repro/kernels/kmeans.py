"""Vectorized Lloyd's update for the k-means codebook builder.

The reference update looped over clusters in Python (one boolean mask +
mean per cluster, and a full point-centroid distance recomputation *inside*
the loop for every empty cluster).  This kernel does one pass:

* **Scatter means** — per-dimension ``np.bincount(labels, weights=...)``
  accumulates cluster sums (sub-vector length V is small, so d bincounts
  beat ``np.add.at`` by a wide margin); one divide yields the means.
* **One-shot empty-cluster reseed** — the point-to-assigned-centroid
  distances are computed once per iteration (hoisted out of the
  per-cluster loop) and the ``e`` empty clusters are reseeded with the
  ``e`` *distinct* farthest points, farthest first.  (The reference gave
  every empty cluster the same single farthest point, leaving duplicates
  to be separated on later iterations.)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import obs

#: Above this dimensionality the per-dimension bincount loop loses to a
#: single ``np.add.at`` scatter.
_BINCOUNT_MAX_DIM = 64


def lloyd_update(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    centroids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Lloyd iteration: labels -> new centroids.

    Parameters
    ----------
    points: (n, d) data matrix.
    labels: (n,) current assignment (values in [0, k)).
    k: number of clusters.
    centroids: (k, d) current centroids — used only to reseed empty
        clusters at the points farthest from their assigned centroid.

    Returns
    -------
    (new_centroids, counts): the updated (k, d) centroids and the (n,)
    member count of each cluster *before* reseeding.
    """
    points = np.asarray(points)
    n, d = points.shape
    counts = np.bincount(labels, minlength=k)

    if d <= _BINCOUNT_MAX_DIM:
        sums = np.empty((k, d), dtype=np.float64)
        for j in range(d):
            sums[:, j] = np.bincount(labels, weights=points[:, j], minlength=k)
    else:
        sums = np.zeros((k, d), dtype=np.float64)
        np.add.at(sums, labels, points)

    new_centroids = sums / np.maximum(counts, 1)[:, None]

    empty = np.flatnonzero(counts == 0)
    if empty.size:
        # Hoisted: one distance pass per iteration, not one per empty cluster.
        dists = np.sum((points - centroids[labels]) ** 2, axis=1)
        take = min(int(empty.size), n)
        far = np.argpartition(dists, n - take)[n - take:]
        far = far[np.argsort(-dists[far], kind="stable")]
        new_centroids[empty[:take]] = points[far[:take]]
        obs.get_registry().counter("kernels.kmeans.reseeds").inc(int(empty.size))

    obs.get_registry().counter("kernels.kmeans.updates").inc()
    return new_centroids, counts
