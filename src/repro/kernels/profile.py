"""Measured host-kernel throughput for the engine latency models.

The engines (:class:`repro.engine.engine.PIMDLEngine`,
:class:`repro.engine.decode.LUTDecodeEngine`) model host-side CCS with a
roofline whose constants come from the paper's testbed.  Since the kernel
layer makes CCS an actual executable kernel, its throughput on *this*
machine can be measured and substituted for the roofline — the ROADMAP's
"fast as the hardware allows" number is then measurable, not assumed.

:func:`measure_host_kernels` times the CCS and gather-reduce kernels on a
representative shape and returns a :class:`HostKernelProfile` whose
``ccs_time``/``gather_time`` scale the measured effective throughput by
each workload's op count.  Engines and :class:`GenerationServer` accept
the profile via ``host_kernel_profile=``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import obs
from .ccs import CCSKernel
from .lut import lut_gather_reduce


@dataclass(frozen=True)
class HostKernelProfile:
    """Effective throughput of the host kernels, measured on this machine.

    Attributes
    ----------
    dtype / block_rows:
        Kernel configuration the numbers were measured under.
    ccs_ops_per_s:
        Effective CCS throughput in paper-§3.3 ops (``3*N*H*CT`` per call).
    gather_elements_per_s:
        Effective lookup-reduce throughput in gathered elements
        (``N*CB*F`` per call).
    measured_shape:
        The (n, h, f, v, ct) shape the measurement ran on.
    """

    dtype: str
    block_rows: int
    ccs_ops_per_s: float
    gather_elements_per_s: float
    measured_shape: Tuple[int, int, int, int, int]
    #: min-of-k repetitions each timing took (1 = a single, noisy sample).
    repeats: int = 1

    def ccs_time(self, n: int, h: int, ct: int) -> float:
        """Modeled CCS seconds for an (N, H) x CT workload."""
        return 3.0 * n * h * ct / self.ccs_ops_per_s

    def gather_time(self, n: int, cb: int, f: int) -> float:
        """Modeled lookup-reduce seconds for an (N, CB) x F workload."""
        return float(n) * cb * f / self.gather_elements_per_s


def _best_seconds(fn, repeats: int, warmup: int = 1) -> float:
    """Min-of-``repeats`` wall time of ``fn()`` after ``warmup`` calls.

    The minimum is the standard noise-robust estimator for CPU
    micro-benchmarks (any deviation above it is interference, not the
    kernel); the warmup calls take the one-time costs — page faults on
    fresh output buffers, BLAS thread-pool spin-up — out of every sample.
    """
    for _ in range(max(0, warmup)):
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_host_kernels(
    n: int = 128,
    h: int = 768,
    f: int = 768,
    v: int = 4,
    ct: int = 16,
    dtype: str = "float32",
    block_rows: Optional[int] = None,
    repeats: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> HostKernelProfile:
    """Measure CCS + gather-reduce throughput on one representative shape.

    Defaults to the BERT-base eval shape (N=128, H=768, CT=16).  Returns
    the best-of-``repeats`` effective throughputs after one warmup call
    per kernel; constant preparation is excluded (warm cache), matching
    steady-state serving.
    """
    if h % v:
        raise ValueError(f"H={h} not divisible by V={v}")
    rng = rng or np.random.default_rng(0)
    cb = h // v
    x = rng.normal(size=(n, h))
    centroids = rng.normal(size=(cb, ct, v))
    lut = rng.normal(size=(cb, ct, f))

    kernel = CCSKernel(dtype=dtype, block_rows=block_rows)
    kernel.prepare(centroids, version=0)  # warm the constant cache
    indices = kernel.search(x, centroids, version=0)

    with obs.get_tracer().span(
        "kernels.profile", n=n, h=h, f=f, v=v, ct=ct, dtype=str(dtype)
    ) as span:
        ccs_s = _best_seconds(
            lambda: kernel.search(x, centroids, version=0), repeats
        )
        gather_s = _best_seconds(
            lambda: lut_gather_reduce(indices, lut, block_rows=block_rows),
            repeats,
        )
        span.set_attribute("ccs_seconds", ccs_s)
        span.set_attribute("gather_seconds", gather_s)

    profile = HostKernelProfile(
        dtype=str(np.dtype(dtype)) if dtype not in (None, "auto") else "auto",
        block_rows=kernel.block_rows,
        ccs_ops_per_s=3.0 * n * h * ct / max(ccs_s, 1e-12),
        gather_elements_per_s=float(n) * cb * f / max(gather_s, 1e-12),
        measured_shape=(n, h, f, v, ct),
        repeats=max(1, repeats),
    )
    registry = obs.get_registry()
    registry.gauge("kernels.profile.ccs_ops_per_s").set(profile.ccs_ops_per_s)
    registry.gauge("kernels.profile.gather_elements_per_s").set(
        profile.gather_elements_per_s
    )
    return profile
