"""Fast host-side numeric kernels for LUT-NN inference.

The functional reference in :mod:`repro.core` states *what* the LUT-NN
operators compute; this package is *how* the host computes them fast
(paper §3.3: CCS on the host is one of the two bottlenecks of LUT-NN
inference, next to the table lookups on PIM).  Three kernel families:

* :class:`CCSKernel` — cached, blocked, dtype-aware closest-centroid
  search.  Per-layer constants (the reshaped ``(CB*CT, V)`` centroid
  matrix, centroid norms, flat LUT gather offsets) are precomputed once
  and cached behind a centroid version counter; distances collapse to one
  batched BLAS matmul per row block.
* :func:`lut_gather_reduce` / :func:`lut_gather_reduce_quantized` — the
  fused table-lookup-and-accumulate operator using flat indexing on a
  ``(CB*CT, F)`` view of the table, with an int32-accumulate + single
  dequant fast path for INT8 LUTs.
* :func:`lloyd_update` — a fully vectorized Lloyd's update (scatter means
  via ``np.bincount``, one-shot empty-cluster reseed) used by the k-means
  codebook builder.

:mod:`repro.kernels.reference` keeps the frozen pre-kernel implementations
for parity property tests and speedup benchmarks, and
:mod:`repro.kernels.profile` measures the kernels' actual throughput so
the engine/serving latency models can use measured host constants.

This package depends only on numpy and :mod:`repro.obs` (never on
``repro.core``), so the numeric core can build on top of it freely.
"""

from .ccs import CCSKernel, DEFAULT_BLOCK_ROWS, resolve_dtype
from .integrity import lut_checksums, verify_lut
from .kmeans import lloyd_update
from .lut import (
    gather_offsets,
    lut_gather_reduce,
    lut_gather_reduce_quantized,
)
from .profile import HostKernelProfile, measure_host_kernels
from .schedule import (
    KernelSchedule,
    KernelScheduleCache,
    search_kernel_schedule,
)

__all__ = [
    "CCSKernel",
    "DEFAULT_BLOCK_ROWS",
    "resolve_dtype",
    "lloyd_update",
    "lut_checksums",
    "verify_lut",
    "gather_offsets",
    "lut_gather_reduce",
    "lut_gather_reduce_quantized",
    "HostKernelProfile",
    "measure_host_kernels",
    "KernelSchedule",
    "KernelScheduleCache",
    "search_kernel_schedule",
]
