"""Cached, blocked, dtype-aware closest-centroid search (CCS).

The reference path (:func:`repro.core.ccs.closest_centroid_search`) was a
correct but slow float64 einsum that re-derived every per-layer constant on
each forward.  :class:`CCSKernel` turns CCS into a proper host kernel, in
the spirit of LUT-NN's blocked AVX kernels (Tang et al., MobiSys 2023):

* **Cached constants.**  ``prepare()`` derives, once per (centroids,
  dtype), a contiguous ``(CB, V, CT)`` transposed centroid tensor, the
  ``(CB, 1, CT)`` squared centroid norms, the flat ``(CB*CT, V)`` centroid
  matrix, and the ``(1, CB)`` flat LUT gather offsets.  The cache key is a
  caller-supplied *centroid version counter* plus the source array's
  identity; a cheap content fingerprint (corner elements + sums) catches
  in-place mutation that forgot to bump the version.
* **One BLAS matmul.**  Distances use the expansion
  ``||a - c||^2 = ||a||^2 - 2 a.c + ||c||^2``; for the argmin the
  ``||a||^2`` term is constant per (row, codebook) and is dropped, so the
  score tensor is one batched ``(CB, nb, V) @ (CB, V, CT)`` matmul (BLAS
  GEMM per codebook) plus a broadcast add.
* **Blocked over N.**  Rows are processed in ``block_rows`` chunks so the
  ``(CB, nb, CT)`` score tensor stays cache-resident regardless of batch
  size.
* **Dtype-aware.**  The kernel computes in float32 by default (the
  deployment dtype); float64 is opt-in.  ``dtype=None`` preserves the
  input's floating dtype.  Accuracy contract: float64 reproduces the
  reference argmin bit-for-bit on continuous data; float32 may differ on
  sub-vectors whose two best centroids are closer than ~1e-6 relative —
  exactly the ties where either choice reconstructs equally well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from .. import obs

#: Default row-block size: bounds the (CB, block, CT) score working set.
DEFAULT_BLOCK_ROWS = 4096

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

DTypeLike = Union[None, str, type, np.dtype]


def resolve_dtype(dtype: DTypeLike, x: Optional[np.ndarray] = None) -> np.dtype:
    """Resolve a kernel compute dtype.

    ``None`` (or ``"auto"``) preserves ``x``'s floating dtype and upcasts
    everything else (ints, float16) to float64 — the reference behaviour.
    Only float32 and float64 are valid compute dtypes.
    """
    if dtype is None or dtype == "auto":
        if x is not None and x.dtype in _FLOAT_DTYPES:
            return x.dtype
        return np.dtype(np.float64)
    resolved = np.dtype(dtype)
    if resolved not in _FLOAT_DTYPES:
        raise ValueError(
            f"CCS kernels compute in float32 or float64, got {resolved}"
        )
    return resolved


def _fingerprint(centroids: np.ndarray) -> Tuple:
    """Cheap content fingerprint of a centroid tensor.

    O(CB*CT*V) — negligible next to the O(N*H*CT) distance work — and
    sensitive to any realistic in-place update (optimizer steps change the
    sums and corners with probability ~1).  The version counter remains
    the authoritative invalidation signal; this is the safety net.
    """
    flat = centroids.reshape(-1)
    return (
        centroids.shape,
        float(flat[0]),
        float(flat[-1]),
        float(flat.sum()),
        float(np.abs(flat).sum()),
    )


@dataclass
class PreparedCentroids:
    """Per-layer constants derived from one (centroids, dtype) pair."""

    version: Optional[int]
    source_id: int
    fingerprint: Tuple
    dtype: np.dtype
    cb: int
    ct: int
    v: int
    #: (CB, V, CT) contiguous — the batched-GEMM right operand.
    cents_t: np.ndarray
    #: (CB, 1, CT) squared centroid norms.
    c_sq: np.ndarray
    #: (CB*CT, V) contiguous flat centroid matrix.
    cents_flat: np.ndarray
    #: (1, CB) int64 flat LUT gather offsets (codebook c starts at c*CT).
    gather_offsets: np.ndarray

    def matches(self, centroids: np.ndarray, version: Optional[int]) -> bool:
        if version is None or self.version is None:
            return False
        if version != self.version or id(centroids) != self.source_id:
            return False
        return self.fingerprint == _fingerprint(centroids)


class CCSKernel:
    """Cached, blocked, dtype-aware closest-centroid search kernel.

    Parameters
    ----------
    dtype:
        Compute dtype: ``"float32"`` (default), ``"float64"``, or ``None``
        / ``"auto"`` to preserve the input's floating dtype per call.
    block_rows:
        Rows per block; bounds the score-tensor working set.
    """

    def __init__(
        self,
        dtype: DTypeLike = "float32",
        block_rows: Optional[int] = None,
    ):
        if block_rows is not None and block_rows <= 0:
            raise ValueError("block_rows must be positive")
        if dtype is not None and dtype != "auto":
            dtype = np.dtype(dtype)
            if dtype not in _FLOAT_DTYPES:
                raise ValueError(
                    f"CCS kernels compute in float32 or float64, got {dtype}"
                )
        self.dtype = dtype
        self.block_rows = int(block_rows or DEFAULT_BLOCK_ROWS)
        # One prepared-constant slot per compute dtype.
        self._cache: dict = {}
        #: Plain counters mirrored into repro.obs; handy for tests.
        self.stats = {"prepares": 0, "cache_hits": 0, "searches": 0}

    # ------------------------------------------------------------------
    # Constant preparation / caching
    # ------------------------------------------------------------------
    def prepare(
        self,
        centroids: np.ndarray,
        version: Optional[int] = None,
        dtype: DTypeLike = None,
    ) -> PreparedCentroids:
        """Return cached per-layer constants, rebuilding them when stale.

        ``version`` is the owner's centroid version counter; pass ``None``
        to force a rebuild (the safe choice when centroids may have been
        mutated without notification).
        """
        centroids = np.asarray(centroids)
        if centroids.ndim != 3:
            raise ValueError("centroids must have shape (CB, CT, V)")
        dt = resolve_dtype(self.dtype if dtype is None else dtype)

        cached = self._cache.get(dt)
        if cached is not None and cached.matches(centroids, version):
            self.stats["cache_hits"] += 1
            obs.get_registry().counter("kernels.ccs.cache_hits").inc()
            return cached

        cb, ct, v = centroids.shape
        cents = centroids.astype(dt, copy=False)
        prepared = PreparedCentroids(
            version=version,
            source_id=id(centroids),
            fingerprint=_fingerprint(centroids),
            dtype=dt,
            cb=cb,
            ct=ct,
            v=v,
            cents_t=np.ascontiguousarray(cents.transpose(0, 2, 1)),
            c_sq=np.sum(cents * cents, axis=-1, dtype=dt)[:, None, :],
            cents_flat=np.ascontiguousarray(cents.reshape(cb * ct, v)),
            gather_offsets=(np.arange(cb, dtype=np.int64) * ct)[None, :],
        )
        self._cache[dt] = prepared
        self.stats["prepares"] += 1
        obs.get_registry().counter("kernels.ccs.prepares").inc()
        return prepared

    def invalidate(self) -> None:
        """Drop every cached constant set."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _apply_blocked(self, x: np.ndarray, prep: PreparedCentroids, emit) -> None:
        """Blocked batched-GEMM score computation shared by both kernels.

        Walks ``x`` in ``block_rows`` chunks, builds the ``(CB, nb, CT)``
        score tensor ``||c||^2 - 2 a.c`` for each, and hands it to
        ``emit(start, stop, sub, scores)`` — the only part where
        :meth:`search` (argmin) and :meth:`squared_distances` (add
        ``||a||^2``, keep values) differ.  ``scores`` is block-private, so
        ``emit`` may mutate it in place.
        """
        dt = prep.dtype
        n = x.shape[0]
        for start in range(0, n, self.block_rows):
            stop = min(start + self.block_rows, n)
            # Contiguous cast only when the dtype actually changes.
            xb = np.ascontiguousarray(x[start:stop], dtype=dt)
            sub = xb.reshape(stop - start, prep.cb, prep.v).transpose(1, 0, 2)
            # One batched BLAS matmul: (CB, nb, V) @ (CB, V, CT).
            scores = np.matmul(sub, prep.cents_t)
            scores *= -2.0
            scores += prep.c_sq
            emit(start, stop, sub, scores)

    def search(
        self,
        x: np.ndarray,
        centroids: np.ndarray,
        version: Optional[int] = None,
        dtype: DTypeLike = None,
    ) -> np.ndarray:
        """Closest-centroid indices: (N, H) x (CB, CT, V) -> (N, CB) int32."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError("CCS input must be 2-D (N, H)")
        dt = resolve_dtype(self.dtype if dtype is None else dtype, x)
        prep = self.prepare(centroids, version=version, dtype=dt)
        if x.shape[1] != prep.cb * prep.v:
            raise ValueError(
                f"expected last dim {prep.cb * prep.v}, got {x.shape[1]}"
            )
        n = x.shape[0]
        out = np.empty((n, prep.cb), dtype=np.int32)

        # argmin(||a||^2 - 2 a.c + ||c||^2) == argmin(||c||^2 - 2 a.c).
        def emit(start, stop, sub, scores):
            out[start:stop] = scores.argmin(axis=2).T

        self._apply_blocked(x, prep, emit)
        self.stats["searches"] += 1
        registry = obs.get_registry()
        registry.counter("kernels.ccs.searches").inc()
        registry.counter("kernels.ccs.rows").inc(n)
        return out

    def squared_distances(
        self,
        x: np.ndarray,
        centroids: np.ndarray,
        version: Optional[int] = None,
        dtype: DTypeLike = None,
    ) -> np.ndarray:
        """Full (N, CB, CT) squared distances (adds the ``||a||^2`` term).

        Same blocked BLAS scheme as :meth:`search`; used where the actual
        distance values matter (soft assignment, error analytics).
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError("CCS input must be 2-D (N, H)")
        dt = resolve_dtype(self.dtype if dtype is None else dtype, x)
        prep = self.prepare(centroids, version=version, dtype=dt)
        if x.shape[1] != prep.cb * prep.v:
            raise ValueError(
                f"expected last dim {prep.cb * prep.v}, got {x.shape[1]}"
            )
        n = x.shape[0]
        out = np.empty((n, prep.cb, prep.ct), dtype=dt)

        def emit(start, stop, sub, scores):
            scores += np.sum(sub * sub, axis=-1, dtype=dt)[:, :, None]
            out[start:stop] = scores.transpose(1, 0, 2)

        self._apply_blocked(x, prep, emit)
        obs.get_registry().counter("kernels.ccs.rows").inc(n)
        return out
