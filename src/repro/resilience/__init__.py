"""Fault injection and graceful degradation for the PIM pipeline.

The first robustness pillar on the road from "latency model" to "system
that serves traffic": a seeded, deterministic fault model
(:mod:`repro.resilience.faults`) threaded through the event-level
simulator and the analytical model, and a recovery ladder
(:mod:`repro.resilience.recovery`) — bounded retry with exponential
backoff, remapping around dead ranks via the Auto-Tuner and the
persistent mapping cache, and last-resort host-kernel fallback — wired
into :class:`~repro.engine.engine.PIMDLEngine` and
:class:`~repro.engine.serving.GenerationServer`.

Quick tour::

    from repro.resilience import FaultInjector, FaultPlan, RecoveryManager

    plan = FaultPlan(failed_ranks=(0,), transfer_timeouts=2, seed=7)
    injector = FaultInjector(plan)
    manager = RecoveryManager(injector)
    server = GenerationServer(platform, host, resilience=manager)
    report = server.run(config)          # completes despite the faults
    report.degraded.fallback_layers      # what ran on the host

Scenario files for the ``repro faults`` CLI are JSON renderings of
:meth:`FaultPlan.to_dict`.
"""

from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    PIMFault,
    RankFailure,
    TransferTimeout,
)
from .recovery import (
    DegradationLedger,
    DegradationSummary,
    RecoveryManager,
    RetryPolicy,
    run_kernel_with_recovery,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "PIMFault",
    "RankFailure",
    "TransferTimeout",
    "DegradationLedger",
    "DegradationSummary",
    "RecoveryManager",
    "RetryPolicy",
    "run_kernel_with_recovery",
]
