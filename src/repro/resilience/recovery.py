"""Detection and graceful degradation: retry -> remap -> host fallback.

The recovery ladder mirrors what a real UPMEM serving deployment does when
hardware misbehaves, ordered by how much performance each step gives up:

1. **Bounded retry with exponential backoff** — transient faults
   (:class:`~repro.resilience.faults.TransferTimeout`) are retried up to
   ``RetryPolicy.max_retries`` times; each retry adds its backoff delay to
   the request's modeled latency.  Exhausting the budget escalates the
   fault to permanent.
2. **Remap around dead ranks** — permanent capacity loss
   (:class:`~repro.resilience.faults.RankFailure`) re-runs the Auto-Tuner
   against the *degraded* platform (dead ranks removed).  The degraded
   hardware description has its own platform fingerprint, so remapped
   tunings land in the same :class:`~repro.mapping.store.MappingCache`
   under a distinct key — a restarted server warm-starts its degraded
   mappings exactly like healthy ones.
3. **Host fallback** — when no legal mapping survives (all ranks dead, or
   the degraded buffer can't fit any tile), the affected layer runs on the
   host CCS/LUT kernel path.  Functionally this is *bit-identical* to the
   pure-host engine (same :func:`repro.kernels.lut_gather_reduce` on the
   trusted host copy of the table); in the latency model it is costed from
   the measured :class:`~repro.kernels.HostKernelProfile` when available,
   else the host roofline.

Corrupted LUT tables (bit flips caught by the per-codebook checksums of
:mod:`repro.kernels.integrity`) re-distribute the table once per layer —
step 0 of the ladder, recorded as a checksum failure.

Every step lands in a :class:`DegradationLedger` (shared across the
prefill/decode engines of one server), in the ``repro.obs`` registry under
``resilience.*``, and as ``resilience.*`` spans in Chrome traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..kernels import lut_checksums, lut_gather_reduce, verify_lut
from ..mapping.analytical import estimate_latency
from ..mapping.tuner import AutoTuner
from ..pim.platforms import PIMPlatform
from ..pim.simulator import PIMSimulator, SimulationReport
from .faults import FaultInjector, PIMFault, RankFailure, TransferTimeout


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for transient PIM faults."""

    max_retries: int = 3
    base_backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_s < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-decreasing")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        return self.base_backoff_s * self.backoff_multiplier**attempt


@dataclass(frozen=True)
class DegradationSummary:
    """Immutable roll-up of one request/run's degradation (ServingReport)."""

    retries: int = 0
    remaps: int = 0
    fallbacks: int = 0
    checksum_failures: int = 0
    backoff_s: float = 0.0
    recovery_s: float = 0.0
    fallback_layers: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(
            self.retries or self.remaps or self.fallbacks or self.checksum_failures
        )

    def to_jsonable(self) -> dict:
        return {
            "degraded": self.degraded,
            "retries": self.retries,
            "remaps": self.remaps,
            "fallbacks": self.fallbacks,
            "checksum_failures": self.checksum_failures,
            "backoff_s": self.backoff_s,
            "recovery_s": self.recovery_s,
            "fallback_layers": list(self.fallback_layers),
        }


@dataclass
class DegradationLedger:
    """Mutable event collector shared by every engine of one server."""

    retries: int = 0
    remaps: int = 0
    fallbacks: int = 0
    checksum_failures: int = 0
    backoff_s: float = 0.0
    recovery_s: float = 0.0
    fallback_layers: List[str] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    #: Open attribution scopes, keyed by owner name: each maps to its
    #: opening snapshot and fallback-layer index.  Scopes with distinct
    #: owners may be open concurrently (one per cluster replica, or a
    #: cluster-level scope enclosing per-replica ones); re-opening an
    #: owner that is already open is the genuine single-node ambiguity
    #: and still raises.
    _scopes: Dict[str, Tuple[DegradationSummary, int]] = field(
        default_factory=dict, init=False, repr=False
    )

    def note(self, kind: str, **detail: object) -> None:
        self.events.append({"kind": kind, **detail})
        obs.get_registry().counter(f"resilience.{kind}").inc()

    def open_request_scope(self, owner: str = "request") -> str:
        """Begin attributing ledger growth to one named scope.

        Attribution slices the ledger between two snapshots, so a scope's
        slice covers *everything* that landed while it was open.  That is
        exact for scopes that do not overlap in wall-clock time (one
        request at a time, or cluster replicas simulated one after the
        other on a shared ledger) and deliberately inclusive for nested
        scopes (a cluster-level scope's slice contains its replicas').
        Only re-opening an owner that is already open raises — two
        attribution windows under one name cannot be told apart.
        """
        if owner in self._scopes:
            raise RuntimeError(
                f"degradation ledger already has an open request scope "
                f"({owner!r}); concurrent scopes must use distinct owner "
                f"names (e.g. one per cluster replica) so their slices "
                f"stay attributable"
            )
        self._scopes[owner] = (self.summary(), len(self.fallback_layers))
        return owner

    def close_request_scope(self, owner: str) -> DegradationSummary:
        """End the named scope and return its slice of the ledger.

        The ``fallback_layers`` slice is taken by index from the scope's
        opening snapshot, so it contains exactly the layers appended while
        the scope was open.
        """
        if owner not in self._scopes:
            open_names = ", ".join(repr(o) for o in sorted(self._scopes)) or "none"
            raise RuntimeError(
                f"closing request scope {owner!r} but the open scope is "
                f"{open_names}"
            )
        before, base = self._scopes.pop(owner)
        after = self.summary()
        return DegradationSummary(
            retries=after.retries - before.retries,
            remaps=after.remaps - before.remaps,
            fallbacks=after.fallbacks - before.fallbacks,
            checksum_failures=after.checksum_failures - before.checksum_failures,
            backoff_s=after.backoff_s - before.backoff_s,
            recovery_s=after.recovery_s - before.recovery_s,
            fallback_layers=tuple(self.fallback_layers[base:]),
        )

    def summary(self) -> DegradationSummary:
        return DegradationSummary(
            retries=self.retries,
            remaps=self.remaps,
            fallbacks=self.fallbacks,
            checksum_failures=self.checksum_failures,
            backoff_s=self.backoff_s,
            recovery_s=self.recovery_s,
            fallback_layers=tuple(self.fallback_layers),
        )


class RecoveryManager:
    """Runs the retry/remap/fallback ladder for LUT operators.

    One manager (holding one :class:`FaultInjector`, one
    :class:`RetryPolicy`, one :class:`DegradationLedger`) is shared by the
    prefill and decode engines of a :class:`~repro.engine.serving.GenerationServer`,
    so a request's degradation is summarized in one place.
    """

    def __init__(
        self,
        injector: FaultInjector,
        policy: Optional[RetryPolicy] = None,
        ledger: Optional[DegradationLedger] = None,
    ):
        self.injector = injector
        self.policy = policy or RetryPolicy()
        self.ledger = ledger or DegradationLedger()
        self._remap_tuners: Dict[Tuple[int, bool], AutoTuner] = {}
        #: Shapes whose LUT was already integrity-checked / remapped once;
        #: a resident table is verified on load, not on every inference,
        #: and a remap is a one-time event per layer shape.
        self._verified: set = set()
        self._remapped: set = set()

    @property
    def active(self) -> bool:
        return self.injector.active

    # ------------------------------------------------------------------
    # Latency-model ladder (used by the engines)
    # ------------------------------------------------------------------
    def _remap_tuner(self, tuner: AutoTuner, degraded: PIMPlatform) -> AutoTuner:
        """An AutoTuner for the degraded platform sharing ``tuner``'s cache."""
        key = (id(degraded), tuner.amortize_lut_distribution)
        if key not in self._remap_tuners:
            self._remap_tuners[key] = AutoTuner(
                degraded,
                amortize_lut_distribution=tuner.amortize_lut_distribution,
                jobs=1,
                cache=tuner.cache,
            )
        return self._remap_tuners[key]

    def _host_lut_seconds(self, shape, host, host_kernel_profile) -> float:
        """Host-side cost of the LUT gather-reduce for one fallen-back layer."""
        if host_kernel_profile is not None:
            return host_kernel_profile.gather_time(shape.n, shape.cb, shape.f)
        # Roofline: N*CB*F adds over an N*CB*F-element gathered stream
        # (4 bytes each) plus the output write-back.
        elements = float(shape.n) * shape.cb * shape.f
        return host.op_time(elements, 4.0 * elements + 4.0 * shape.n * shape.f)

    def _integrity_seconds(self, shape, tuner: AutoTuner, platform) -> float:
        """Cost of re-distributing a layer's LUT after a checksum failure."""
        tuned = tuner.tune(shape)
        if not tuner.amortize_lut_distribution:
            # The healthy estimate already includes the LUT transfer; one
            # re-send doubles only that term.
            return tuned.latency.sub_lut
        # Amortized serving excludes the transfer, so price a fresh one.
        full = estimate_latency(
            shape, tuned.mapping, platform, amortize_lut_distribution=False
        )
        return full.sub_lut

    def lut_op_seconds(
        self,
        shape,
        platform: PIMPlatform,
        tuner: AutoTuner,
        host,
        host_kernel_profile=None,
        op_name: str = "lut",
    ) -> Tuple[float, str]:
        """Modeled seconds (and device) for one LUT op under the ladder.

        Returns ``(seconds, device)`` where ``device`` is ``"pim"`` while
        PIM execution (healthy, retried, or remapped) survives and
        ``"host"`` once the layer fell back.
        """
        tracer = obs.get_tracer()
        if not self.active:
            return tuner.tune(shape).latency.total, "pim"

        seconds = 0.0
        # Step 0: table integrity on load.  Bit flips are caught by the
        # per-codebook checksum and the table is re-distributed — once per
        # layer shape, since the repaired table stays resident after that.
        if self.injector.plan.lut_bit_flips > 0 and shape not in self._verified:
            self._verified.add(shape)
            with tracer.span("resilience.checksum_recover", op=op_name) as sp:
                resend = self._integrity_seconds(shape, tuner, platform)
                sp.set_attribute("model_seconds", resend)
            seconds += resend
            self.ledger.checksum_failures += 1
            self.ledger.recovery_s += resend
            self.ledger.note("checksum_failure", op=op_name, resend_s=resend)

        # Steps 1-3: attempt PIM, retrying transients, then remap, then
        # fall back to the host kernels.
        attempt = 0
        while True:
            try:
                self.injector.check_launch(platform)
                self.injector.check_transfer()
                tuned = tuner.tune(shape)
                slowdown = self.injector.straggler_slowdown()
                op_s = tuned.latency.total
                if slowdown > 1.0:
                    stretch = tuned.latency.micro_kernel * (slowdown - 1.0)
                    op_s += stretch
                    self.ledger.note(
                        "straggler_stretch", op=op_name, stretch_s=stretch
                    )
                return seconds + op_s, "pim"
            except TransferTimeout:
                if attempt >= self.policy.max_retries:
                    self.ledger.note("retries_exhausted", op=op_name)
                    break  # escalate: transient budget exhausted
                backoff = self.policy.backoff_s(attempt)
                attempt += 1
                self.ledger.retries += 1
                self.ledger.backoff_s += backoff
                seconds += backoff
                with tracer.span("resilience.retry", op=op_name, attempt=attempt) as sp:
                    sp.set_attribute("backoff_s", backoff)
                self.ledger.note("retry", op=op_name, attempt=attempt)
            except RankFailure:
                break  # permanent: no point retrying

        # Step 2: remap onto the surviving ranks.  The re-tune (and the
        # ledger event) happens once per layer shape; later ops with the
        # same shape run on the remapped mapping via the tuner's memo.
        try:
            degraded = self.injector.degraded_platform(platform)
            if degraded is not platform:
                with tracer.span("resilience.remap", op=op_name) as sp:
                    remapped = self._remap_tuner(tuner, degraded).tune(shape)
                    sp.set_attribute("model_seconds", remapped.latency.total)
                if shape not in self._remapped:
                    self._remapped.add(shape)
                    self.ledger.remaps += 1
                    self.ledger.note("remap", op=op_name, ranks=degraded.ranks)
                op_s = remapped.latency.total
                slowdown = self.injector.straggler_slowdown()
                if slowdown > 1.0:
                    op_s += remapped.latency.micro_kernel * (slowdown - 1.0)
                return seconds + op_s, "pim"
        except (PIMFault, RuntimeError):
            pass  # no surviving capacity or no legal mapping -> fall back

        # Step 3: host fallback.
        with tracer.span("resilience.fallback", op=op_name) as sp:
            host_s = self._host_lut_seconds(shape, host, host_kernel_profile)
            sp.set_attribute("model_seconds", host_s)
        self.ledger.fallbacks += 1
        self.ledger.fallback_layers.append(op_name)
        self.ledger.note("fallback", op=op_name, host_s=host_s)
        return seconds + host_s, "host"


def run_kernel_with_recovery(
    simulator: PIMSimulator,
    shape,
    mapping,
    indices: np.ndarray,
    lut: np.ndarray,
    injector: FaultInjector,
    policy: Optional[RetryPolicy] = None,
    ledger: Optional[DegradationLedger] = None,
) -> Tuple[np.ndarray, Optional[SimulationReport]]:
    """Functionally execute one LUT kernel, surviving injected faults.

    The functional counterpart of :meth:`RecoveryManager.lut_op_seconds`:
    runs the event-level simulator with fault injection, walking the same
    ladder, and *always* returns a correct output matrix —

    * transient timeouts are retried (bounded, with the backoff recorded);
    * a rank failure re-tunes on the degraded platform and re-runs there;
    * checksum-detected LUT corruption or exhausted capacity fall back to
      the host :func:`~repro.kernels.lut_gather_reduce` on the trusted
      host copy of the table, whose output is bit-identical to the
      pure-host engine.

    Returns ``(output, report)``; ``report`` is ``None`` when the kernel
    fell back to the host (there is no PIM execution to report).
    """
    policy = policy or RetryPolicy()
    ledger = ledger or DegradationLedger()
    checksums = lut_checksums(lut)

    def attempt(sim: PIMSimulator, use_mapping) -> Optional[SimulationReport]:
        for attempt_no in range(policy.max_retries + 1):
            try:
                return sim.run(shape, use_mapping, indices, lut, injector=injector)
            except TransferTimeout:
                if attempt_no >= policy.max_retries:
                    ledger.note("retries_exhausted", op="kernel")
                    return None
                ledger.retries += 1
                ledger.backoff_s += policy.backoff_s(attempt_no)
                ledger.note("retry", op="kernel", attempt=attempt_no + 1)
        return None

    report: Optional[SimulationReport] = None
    try:
        report = attempt(simulator, mapping)
    except RankFailure:
        # Remap: re-tune for the surviving ranks and retry there.
        try:
            degraded = injector.degraded_platform(simulator.platform)
            remapped = AutoTuner(degraded).tune(shape)
            ledger.remaps += 1
            ledger.note("remap", op="kernel", ranks=degraded.ranks)
            report = attempt(PIMSimulator(degraded), remapped.mapping)
        except (PIMFault, RuntimeError):
            report = None

    if report is not None and report.output is not None:
        corrupted = verify_lut(report.device_lut, checksums) if (
            report.device_lut is not None
        ) else np.array([], dtype=np.int64)
        if corrupted.size == 0:
            return report.output, report
        ledger.checksum_failures += 1
        ledger.note("checksum_failure", op="kernel", codebooks=corrupted.tolist())

    # Host fallback: trusted host table, same kernel as the host engine.
    ledger.fallbacks += 1
    ledger.fallback_layers.append("kernel")
    ledger.note("fallback", op="kernel")
    return lut_gather_reduce(np.asarray(indices), np.asarray(lut)), None
