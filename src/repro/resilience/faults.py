"""Deterministic fault model for the PIM serving stack.

Production DRAM-PIM deployments fail in ways the fault-free models of
paper §5 never exercise: UPMEM ranks drop off the bus, individual DPUs
straggle behind their rank-mates, host<->PIM DMA bursts time out under
contention, and LUT tables resident in non-ECC banks take bit flips.
This module describes those failures declaratively — a :class:`FaultPlan`
— and injects them reproducibly through a :class:`FaultInjector`.

Design rules:

* **Seeded and deterministic.**  Two injectors built from equal plans
  inject byte-identical faults (bit-flip positions come from a
  ``numpy`` generator seeded with ``plan.seed``; transient timeouts are
  consumed from a counter, not sampled).  Every resilience test in the
  suite relies on this.
* **Empty plan == strict no-op.**  An injector whose plan is empty is
  ``active == False`` and every consumer guards its fault hooks behind
  that flag, so the fault-free paths stay bit-identical to a build
  without the resilience layer.
* **Transient vs permanent.**  :class:`TransferTimeout` is transient —
  a bounded retry (see :mod:`repro.resilience.recovery`) may succeed.
  :class:`RankFailure` is permanent for the process lifetime — recovery
  must remap around the dead ranks or fall back to the host.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..pim.platforms import PIMPlatform


class PIMFault(RuntimeError):
    """Base class of injected PIM hardware faults."""

    #: Transient faults may succeed on retry; permanent ones never do.
    transient = False


class TransferTimeout(PIMFault):
    """A host<->PIM DMA burst exceeded its deadline (transient)."""

    transient = True


class RankFailure(PIMFault):
    """One or more PIM ranks dropped out (permanent for this process)."""

    transient = False

    def __init__(self, failed_ranks: Tuple[int, ...]):
        super().__init__(f"PIM rank(s) {sorted(failed_ranks)} failed")
        self.failed_ranks = tuple(failed_ranks)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults one scenario injects.

    Attributes
    ----------
    seed:
        Seed for every random draw the injector makes (bit-flip
        positions).  Equal plans inject identical faults.
    failed_ranks:
        Rank ids that are dead for the whole run (permanent).  Kernel
        launches against a platform still counting those ranks raise
        :class:`RankFailure`; recovery remaps onto the surviving ranks.
    failed_pes:
        Additional individual dead PEs (beyond whole-rank losses),
        removed from the degraded platform's PE count.
    straggler_factor:
        Slowdown multiplier (>= 1) applied to the micro-kernel phase —
        the kernel completes, but only after the slowest PE does, so one
        straggling DPU stretches the whole synchronous launch.
    transfer_timeouts:
        Number of *leading* PIM transfer attempts that time out.  Each
        injected timeout is consumed, so a bounded retry loop eventually
        gets through — unless the budget exceeds the retry limit, in
        which case recovery escalates to remap/fallback.
    lut_bit_flips:
        Bit flips injected into each LUT table on its way into PIM
        memory (corruption-in-transit / in-bank model).  Detected by the
        per-codebook checksums of :mod:`repro.kernels.integrity`.
    """

    seed: int = 0
    failed_ranks: Tuple[int, ...] = ()
    failed_pes: int = 0
    straggler_factor: float = 1.0
    transfer_timeouts: int = 0
    lut_bit_flips: int = 0

    def __post_init__(self) -> None:
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.failed_pes < 0 or self.transfer_timeouts < 0 or self.lut_bit_flips < 0:
            raise ValueError("fault counts must be non-negative")
        if len(set(self.failed_ranks)) != len(self.failed_ranks):
            raise ValueError(f"duplicate failed ranks: {self.failed_ranks}")
        # Normalize for equality/serialization stability.
        object.__setattr__(self, "failed_ranks", tuple(sorted(self.failed_ranks)))

    @property
    def is_empty(self) -> bool:
        """True when this plan injects nothing at all."""
        return (
            not self.failed_ranks
            and self.failed_pes == 0
            and self.straggler_factor == 1.0
            and self.transfer_timeouts == 0
            and self.lut_bit_flips == 0
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "failed_ranks": list(self.failed_ranks),
            "failed_pes": self.failed_pes,
            "straggler_factor": self.straggler_factor,
            "transfer_timeouts": self.transfer_timeouts,
            "lut_bit_flips": self.lut_bit_flips,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault plan fields: {sorted(unknown)}")
        payload = dict(data)
        if "failed_ranks" in payload:
            payload["failed_ranks"] = tuple(int(r) for r in payload["failed_ranks"])
        return cls(**payload)

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        """Load a scenario file (the CLI's ``faults --scenario``)."""
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the injector's log."""

    kind: str
    detail: Dict[str, object] = field(default_factory=dict)


class FaultInjector:
    """Injects the faults of a :class:`FaultPlan`, deterministically.

    One injector models one process lifetime: permanent faults (dead
    ranks/PEs) hold for every call, the transient-timeout budget is
    consumed across calls, and every injection is appended to
    :attr:`events` so tests and the CLI can audit exactly what happened.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan or FaultPlan()
        self._rng = np.random.default_rng(self.plan.seed)
        self._timeouts_left = self.plan.transfer_timeouts
        self.events: List[FaultEvent] = []
        self._degraded: Dict[int, PIMPlatform] = {}
        #: ids of degraded platforms this injector handed out; launches
        #: against them (i.e. after remap) must succeed.
        self._degraded_ids: set = set()

    @property
    def active(self) -> bool:
        """False for an empty plan — consumers skip all fault hooks."""
        return not self.plan.is_empty

    def record(self, kind: str, **detail: object) -> None:
        self.events.append(FaultEvent(kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # Permanent capacity loss
    # ------------------------------------------------------------------
    def degraded_platform(self, platform: PIMPlatform) -> PIMPlatform:
        """``platform`` with the dead ranks/PEs removed.

        Returns the *same object* when no capacity fault is planned, so
        platform fingerprints (and therefore mapping-cache keys) are
        untouched on the no-fault path.  With rank faults, the reduced
        platform has its own fingerprint — remapped tunings are cached
        under the degraded hardware description, never mixed with the
        healthy one.
        """
        if not self.plan.failed_ranks and not self.plan.failed_pes:
            return platform
        if id(platform) in self._degraded_ids:
            return platform  # already the surviving-capacity description
        key = id(platform)
        if key not in self._degraded:
            dead_ranks = [r for r in self.plan.failed_ranks if r < platform.ranks]
            ranks = platform.ranks - len(dead_ranks)
            pes = platform.num_pes - len(dead_ranks) * platform.pes_per_rank
            pes -= self.plan.failed_pes
            if ranks <= 0 or pes <= 0:
                raise RankFailure(tuple(self.plan.failed_ranks))
            degraded = dataclasses.replace(
                platform,
                name=f"{platform.name} (degraded -{len(dead_ranks)}r)",
                ranks=ranks,
                num_pes=pes,
            )
            self._degraded[key] = degraded
            self._degraded_ids.add(id(degraded))
        return self._degraded[key]

    def check_launch(self, platform: PIMPlatform) -> None:
        """Fail a kernel launch that still counts on dead ranks.

        A launch against the full (healthy) platform raises
        :class:`RankFailure`; a launch against the degraded platform —
        i.e. after recovery remapped — goes through.
        """
        if not self.active or not self.plan.failed_ranks:
            return
        survivors = self.degraded_platform(platform)
        if platform.ranks > survivors.ranks or platform.num_pes > survivors.num_pes:
            self.record("rank_failure", ranks=list(self.plan.failed_ranks))
            raise RankFailure(tuple(self.plan.failed_ranks))

    # ------------------------------------------------------------------
    # Transient faults
    # ------------------------------------------------------------------
    def take_transfer_timeout(self) -> bool:
        """Consume one planned timeout; True when this transfer fails."""
        if self._timeouts_left <= 0:
            return False
        self._timeouts_left -= 1
        self.record("transfer_timeout", remaining=self._timeouts_left)
        return True

    @property
    def timeouts_remaining(self) -> int:
        return self._timeouts_left

    def check_transfer(self) -> None:
        """Raise :class:`TransferTimeout` when this transfer is doomed."""
        if self.active and self.take_transfer_timeout():
            raise TransferTimeout("host<->PIM transfer timed out")

    # ------------------------------------------------------------------
    # Performance faults
    # ------------------------------------------------------------------
    def straggler_slowdown(self) -> float:
        """Micro-kernel slowdown from straggling PEs (1.0 = none)."""
        if not self.active or self.plan.straggler_factor == 1.0:
            return 1.0
        return self.plan.straggler_factor

    # ------------------------------------------------------------------
    # Data corruption
    # ------------------------------------------------------------------
    def corrupt_lut(self, lut: np.ndarray) -> np.ndarray:
        """Return a copy of ``lut`` with the planned bit flips applied.

        Flip positions are drawn from the injector's seeded generator,
        so the corruption is reproducible.  The input array is never
        modified (it models the host's trusted copy).
        """
        if not self.active or self.plan.lut_bit_flips <= 0:
            return lut
        corrupted = np.array(lut, copy=True)
        raw = corrupted.view(np.uint8).reshape(-1)
        total_bits = raw.size * 8
        flips = min(self.plan.lut_bit_flips, total_bits)
        # Distinct positions: two flips of the same bit would cancel and
        # leave the table (and its checksum) untouched.
        bit_positions: List[int] = []
        seen = set()
        while len(bit_positions) < flips:
            bit = int(self._rng.integers(0, total_bits))
            if bit not in seen:
                seen.add(bit)
                bit_positions.append(bit)
        for bit in bit_positions:
            raw[bit // 8] ^= np.uint8(1 << (bit % 8))
        self.record(
            "lut_bit_flips",
            flips=flips,
            bits=[int(b) for b in bit_positions],
        )
        return corrupted
