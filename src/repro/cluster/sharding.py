"""Layer-wise model sharding across DIMM pools with explicit transfers.

A replica may hold the whole model (``shards == 1``) or split its layer
stack contiguously across ``shards`` DIMM pools.  Each shard runs the
same LUT-NMP engine over its own layer slice; at every shard boundary the
activations for the tokens in flight (``tokens x hidden_dim x dtype``)
cross the inter-node interconnect, charged through the platform's
:class:`~repro.pim.platforms.TransferBandwidth` model — the same
setup-latency + rate curve the host<->PIM paths use, following DynaNDE's
explicit activation-movement costing (PAPERS.md).

The cost composition is a *sequential sum*: per-shard compute plus the
boundary transfers, with no pipeline overlap between shards.  That is a
conservative upper bound on latency — a pipelined runtime would hide part
of the transfer — and keeps shard costs exactly decomposable per phase,
which the bottleneck attribution relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..engine.scheduler import EngineCostModel
from ..engine.serving import GenerationServer
from ..pim.platforms import TransferBandwidth
from ..workloads.configs import TransformerConfig

__all__ = ["ShardPlan", "ShardedCostModel"]

#: Phase key under which boundary transfers appear in phase breakdowns.
TRANSFER_PHASE = "shard_transfer"


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous layer-wise split of ``config`` across ``shards`` pools."""

    config: TransformerConfig
    shards: int
    interconnect: TransferBandwidth
    #: Bytes per activation element crossing a shard boundary; defaults to
    #: the platform's GEMM dtype at plan-construction sites.
    activation_dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > self.config.num_layers:
            raise ValueError(
                f"cannot split {self.config.num_layers} layers into "
                f"{self.shards} shards"
            )
        if self.activation_dtype_bytes <= 0:
            raise ValueError("activation_dtype_bytes must be positive")

    @property
    def shard_layers(self) -> Tuple[int, ...]:
        """Layers per shard — near-even, earlier shards take the remainder."""
        base, extra = divmod(self.config.num_layers, self.shards)
        return tuple(base + (1 if i < extra else 0) for i in range(self.shards))

    @property
    def shard_configs(self) -> Tuple[TransformerConfig, ...]:
        return tuple(
            self.config.with_(
                name=f"{self.config.name}[shard {i}/{self.shards}]",
                num_layers=layers,
            )
            for i, layers in enumerate(self.shard_layers)
        )

    @property
    def boundaries(self) -> int:
        return self.shards - 1

    def activation_bytes(self, tokens: int) -> float:
        """Bytes crossing one boundary for ``tokens`` tokens in flight."""
        return float(tokens) * self.config.hidden_dim * self.activation_dtype_bytes

    def transfer_s(self, tokens: int) -> float:
        """Total boundary-transfer seconds for one pass of ``tokens``."""
        if self.boundaries == 0 or tokens <= 0:
            return 0.0
        return self.boundaries * self.interconnect.latency(
            self.activation_bytes(tokens)
        )

    def to_jsonable(self) -> dict:
        return {
            "shards": self.shards,
            "shard_layers": list(self.shard_layers),
            "activation_dtype_bytes": self.activation_dtype_bytes,
            "interconnect_peak_bytes_per_s": self.interconnect.peak_bytes_per_s,
            "interconnect_setup_latency_s": self.interconnect.setup_latency_s,
        }


class ShardedCostModel(EngineCostModel):
    """:class:`EngineCostModel` over a :class:`ShardPlan`.

    Every prefill / decode-step cost is the sum of the per-shard engine
    costs (each shard costed through its own memoized
    :class:`EngineCostModel` on the shard's layer slice) plus the
    boundary activation transfers for the tokens processed that step.
    With ``shards == 1`` this collapses exactly to the base model.
    """

    def __init__(
        self,
        server: GenerationServer,
        plan: ShardPlan,
        context_bucket: int = 32,
    ):
        super().__init__(server, plan.config, context_bucket=context_bucket)
        self.plan = plan
        self._stages = [
            EngineCostModel(server, cfg, context_bucket=context_bucket)
            for cfg in plan.shard_configs
        ]

    def prefill_s(self, tokens: int, batch: int = 1) -> float:
        total = sum(stage.prefill_s(tokens, batch) for stage in self._stages)
        return total + self.plan.transfer_s(tokens * batch)

    def prefill_phases(self, tokens: int, batch: int = 1) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for stage in self._stages:
            for phase, seconds in stage.prefill_phases(tokens, batch).items():
                merged[phase] = merged.get(phase, 0.0) + seconds
        transfer = self.plan.transfer_s(tokens * batch)
        if transfer:
            merged[TRANSFER_PHASE] = transfer
        return merged

    def decode_step_s(self, batch_seqs: int, context_len: float) -> float:
        total = sum(
            stage.decode_step_s(batch_seqs, context_len)
            for stage in self._stages
        )
        # One token per sequence crosses each boundary per decode step.
        return total + self.plan.transfer_s(batch_seqs)

    def decode_step_phases(
        self, batch_seqs: int, context_len: float
    ) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for stage in self._stages:
            phases = stage.decode_step_phases(batch_seqs, context_len)
            for phase, seconds in phases.items():
                merged[phase] = merged.get(phase, 0.0) + seconds
        transfer = self.plan.transfer_s(batch_seqs)
        if transfer:
            merged[TRANSFER_PHASE] = transfer
        return merged
