"""Discrete-event cluster simulator over N replica ``RequestScheduler``\\ s.

The ROADMAP's top open item above the single-node serving stack: compose
N replicas — each a :class:`~repro.engine.scheduler.RequestScheduler`
over its own DIMM pool, optionally layer-sharded across pools via
:class:`~repro.cluster.sharding.ShardPlan` — behind a pluggable router
(:mod:`repro.cluster.routing`), with replica failover.  "Accelerating
Bandwidth-Bound Deep Learning Inference with Main-Memory Accelerators"
(PAPERS.md) scales LUT-style inference across memory accelerators exactly
this way; the replication-vs-shard tradeoff it surfaces is what
:func:`cluster_load_sweep` reproduces.

The simulation is compositional, in three steps:

1. **Route.**  Arrivals are walked in time order.  The router sees the
   alive replicas and a *virtual* load view per replica — queue depth and
   backlog seconds accumulated from FIFO service-time estimates — and
   assigns each request to one replica.  Replica failures interleave with
   this walk at their failure times.
2. **Fail over.**  When a replica fails at ``t_f``, its (now final)
   substream is simulated; requests that finished at or before ``t_f``
   keep their stats, the rest re-enter routing at ``t_f`` with their
   arrival re-stamped (original arrival is restored in the aggregate, so
   user-perceived latency includes the time lost on the dead replica).
   Failures are processed in ascending ``t_f`` order, so cascades
   terminate; with no replica left alive, requests are *shed*.
3. **Aggregate.**  Surviving replicas simulate their final substreams
   independently (exact: replicas share no state after routing), and
   cluster percentiles/goodput are recomputed from the union of
   per-request stats with the same order statistics the single-node
   scheduler uses.  A 1-replica unsharded cluster is therefore
   numerically identical to a bare ``RequestScheduler`` run — the parity
   test in ``tests/test_cluster.py`` pins this to 1e-9.

Caveats, by construction: a failed replica's :class:`ScheduleResult` in
:attr:`ClusterResult.replica_results` is its *counterfactual full* run
(only stats up to ``t_f`` enter cluster aggregates; its busy/step counts
are capped at ``t_f`` in the aggregate), and all replicas are homogeneous
— they share one :class:`~repro.engine.serving.GenerationServer` cost
model, since per-replica DIMM pools are identical hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..obs.metrics import Histogram
from ..engine.scheduler import (
    EngineCostModel,
    Request,
    RequestScheduler,
    RequestStats,
    ScheduleResult,
    SchedulerPolicy,
    poisson_requests,
)
from ..engine.serving import GenerationServer
from ..pim.platforms import TransferBandwidth
from ..resilience.faults import FaultPlan
from ..resilience.recovery import DegradationSummary
from ..workloads.configs import TransformerConfig
from .routing import ReplicaLoad, Router, make_router
from .sharding import ShardPlan, ShardedCostModel

__all__ = [
    "ReplicaFailure",
    "failures_from_fault_plan",
    "ClusterRequestStats",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterSweepPoint",
    "cluster_load_sweep",
]


@dataclass(frozen=True)
class ReplicaFailure:
    """Whole-replica failure at a wall-clock instant.

    ``plan`` optionally carries the device-level
    :class:`~repro.resilience.faults.FaultPlan` that killed the replica
    (e.g. fatal rank failures in its DIMM pool); it is recorded in the
    cluster event log for auditability.
    """

    replica: int
    at_s: float
    plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError("replica must be non-negative")
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")


def failures_from_fault_plan(
    plan: FaultPlan, at_s: float, ranks_per_replica: int
) -> List[ReplicaFailure]:
    """Map a device-level fault plan to cluster-level replica failures.

    Each replica owns a contiguous pool of ``ranks_per_replica`` DRAM
    ranks; a plan whose ``failed_ranks`` hit a pool kills that replica at
    ``at_s`` (without a per-replica
    :class:`~repro.resilience.recovery.RecoveryManager` a rank failure is
    fatal at launch — the cluster's failover takes over where the
    device-level ladder ends).
    """
    if ranks_per_replica <= 0:
        raise ValueError("ranks_per_replica must be positive")
    hit = sorted({rank // ranks_per_replica for rank in plan.failed_ranks})
    return [ReplicaFailure(replica=r, at_s=at_s, plan=plan) for r in hit]


@dataclass(frozen=True)
class ClusterRequestStats:
    """One request's cluster-level outcome.

    ``replica`` is the replica that completed (or rejected) it, ``-1``
    when the request was shed because no replica was alive.  ``stats``
    carries the per-request latencies with ``arrival_s`` restored to the
    *original* arrival even after failover, so TTFT/e2e are
    user-perceived.
    """

    replica: int
    failovers: int
    stats: RequestStats

    @property
    def request_id(self) -> int:
        return self.stats.request_id

    @property
    def shed(self) -> bool:
        return self.replica < 0


def _pct(values: List[float], q: float) -> float:
    # Same exact order-statistic interpolation RequestScheduler.run uses
    # (full sample retention), so 1-replica parity is structural.
    if not values:
        return 0.0
    hist = Histogram("cluster.pct", sample_capacity=len(values))
    for v in values:
        hist.observe(v)
    return hist.percentile(q)


@dataclass(frozen=True)
class ClusterResult:
    """Aggregate outcome of one cluster run over a request stream."""

    router: str
    replicas: int
    shards: int
    policy: SchedulerPolicy
    completed: int
    rejected: int
    #: Requests dropped because no replica was alive when they (re-)arrived.
    shed: int
    #: Re-route events (one per request per replica failure it survived).
    failovers: int
    steps: int
    makespan_s: float
    busy_s: float
    prefill_tokens: int
    generated_tokens: int
    ttft_p50_s: float
    ttft_p95_s: float
    ttft_p99_s: float
    tpot_p50_s: float
    tpot_p95_s: float
    tpot_p99_s: float
    e2e_p50_s: float
    e2e_p95_s: float
    e2e_p99_s: float
    mean_e2e_s: float
    #: Per-replica single-node results (a failed replica's entry is its
    #: counterfactual full run; see the module docstring).
    replica_results: Tuple[ScheduleResult, ...]
    replica_routed: Tuple[int, ...]
    #: Peak router-observed virtual queue depth per replica.
    replica_max_queue_depth: Tuple[int, ...]
    replica_failed_at: Tuple[Optional[float], ...]
    requests: Tuple[ClusterRequestStats, ...]
    #: Audit log: ``{"kind": "failover"|"shed"|"replica_failed", ...}``.
    events: Tuple[Dict[str, object], ...]
    shard_plan: Optional[ShardPlan] = None
    #: Cluster-scope degradation slice (encloses every replica's scope)
    #: when the server runs resilient; None otherwise.
    degradation: Optional[DegradationSummary] = None
    #: Phase attribution summed across replicas, same keys as
    #: :attr:`ScheduleResult.phase_seconds` (plus ``shard_transfer``).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Busy fraction of the cluster's replica-seconds."""
        denom = self.replicas * self.makespan_s
        return self.busy_s / denom if denom > 0 else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.makespan_s if self.makespan_s > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.slo_attained / self.makespan_s

    @property
    def slo_attained(self) -> int:
        good = 0
        for c in self.requests:
            if c.shed or c.stats.rejected:
                continue
            s = c.stats
            if (
                self.policy.slo_ttft_s is not None
                and s.ttft_s > self.policy.slo_ttft_s
            ):
                continue
            if (
                self.policy.slo_e2e_s is not None
                and s.e2e_s > self.policy.slo_e2e_s
            ):
                continue
            good += 1
        return good

    @property
    def max_queue_depth(self) -> int:
        return max(self.replica_max_queue_depth, default=0)

    def phase_attribution(self, request_class: Optional[str] = None):
        """Cluster-wide bottleneck attribution (see ``ScheduleResult``)."""
        from ..obs.profiler import BottleneckReport

        phases: Dict[str, float] = {}
        for key, seconds in self.phase_seconds.items():
            cls, _, phase = key.partition("/")
            if request_class is not None and cls != request_class:
                continue
            phase = phase or cls
            phases[phase] = phases.get(phase, 0.0) + seconds
        return BottleneckReport.from_phases(phases)

    def replica_phase_attribution(
        self, replica: int, request_class: Optional[str] = None
    ):
        """One replica's bottleneck attribution."""
        return self.replica_results[replica].phase_attribution(request_class)

    def to_jsonable(self) -> dict:
        return {
            "router": self.router,
            "replicas": self.replicas,
            "shards": self.shards,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "failovers": self.failovers,
            "steps": self.steps,
            "makespan_s": self.makespan_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "prefill_tokens": self.prefill_tokens,
            "generated_tokens": self.generated_tokens,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "ttft_s": {"p50": self.ttft_p50_s, "p95": self.ttft_p95_s,
                       "p99": self.ttft_p99_s},
            "tpot_s": {"p50": self.tpot_p50_s, "p95": self.tpot_p95_s,
                       "p99": self.tpot_p99_s},
            "e2e_s": {"p50": self.e2e_p50_s, "p95": self.e2e_p95_s,
                      "p99": self.e2e_p99_s, "mean": self.mean_e2e_s},
            "replica_routed": list(self.replica_routed),
            "replica_max_queue_depth": list(self.replica_max_queue_depth),
            "replica_failed_at": list(self.replica_failed_at),
            "max_queue_depth": self.max_queue_depth,
            "shard_plan": (
                self.shard_plan.to_jsonable() if self.shard_plan else None
            ),
            "phase_seconds": dict(self.phase_seconds),
            "events": [dict(e) for e in self.events],
            "degradation": (
                self.degradation.to_jsonable() if self.degradation else None
            ),
        }


class ClusterScheduler:
    """N replica schedulers behind a router, with failover.

    Replicas are homogeneous: each serves the full model on its own DIMM
    pool (``shards == 1``) or layer-sharded across ``shards`` pools, and
    all share one memoized cost model through the common ``server``.

    ``router`` is a policy name (see
    :data:`~repro.cluster.routing.ROUTER_POLICIES`) or a
    :class:`~repro.cluster.routing.Router` instance; ``failures`` is a
    sequence of :class:`ReplicaFailure` (build them from a
    :class:`~repro.resilience.faults.FaultPlan` with
    :func:`failures_from_fault_plan`).

    ``placement`` switches every replica from a single-engine
    :class:`~repro.engine.scheduler.RequestScheduler` to a two-pool
    :class:`~repro.engine.disagg.DisaggScheduler` under that placement
    policy; ``prefill_server`` / ``kv_transfer`` configure each replica's
    prefill pool and KV-migration cost (replicas stay homogeneous and
    share both memoized cost models).
    """

    def __init__(
        self,
        server: GenerationServer,
        config: TransformerConfig,
        replicas: int = 2,
        shards: int = 1,
        policy: Optional[SchedulerPolicy] = None,
        router: Union[str, Router] = "round-robin",
        context_bucket: int = 32,
        interconnect: Optional[TransferBandwidth] = None,
        activation_dtype_bytes: Optional[int] = None,
        failures: Sequence[ReplicaFailure] = (),
        seed: int = 0,
        cost_model: Optional[EngineCostModel] = None,
        placement: Optional[str] = None,
        prefill_server=None,
        kv_transfer=None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.server = server
        self.config = config
        self.replicas = replicas
        self.shards = shards
        self.policy = policy or SchedulerPolicy()
        self.router = make_router(router) if isinstance(router, str) else router
        self.seed = seed

        by_replica: Dict[int, ReplicaFailure] = {}
        for f in failures:
            if f.replica >= replicas:
                raise ValueError(
                    f"failure targets replica {f.replica} but the cluster "
                    f"has {replicas}"
                )
            if f.replica in by_replica:
                raise ValueError(f"duplicate failure for replica {f.replica}")
            by_replica[f.replica] = f
        self.failures: Tuple[ReplicaFailure, ...] = tuple(
            sorted(by_replica.values(), key=lambda f: (f.at_s, f.replica))
        )

        self.shard_plan: Optional[ShardPlan] = None
        if cost_model is not None:
            self.cost = cost_model
            self.shard_plan = getattr(cost_model, "plan", None)
        elif shards > 1:
            self.shard_plan = ShardPlan(
                config=config,
                shards=shards,
                interconnect=interconnect or server.platform.scatter,
                activation_dtype_bytes=(
                    activation_dtype_bytes or server.platform.gemm_dtype_bytes
                ),
            )
            self.cost = ShardedCostModel(
                server, self.shard_plan, context_bucket=context_bucket
            )
        else:
            self.cost = EngineCostModel(
                server, config, context_bucket=context_bucket
            )

        self.placement = placement
        self.schedulers: List[RequestScheduler] = []
        prefill_cost = None
        for r in range(replicas):
            if placement is not None:
                from ..engine.disagg import DisaggScheduler

                sched = DisaggScheduler(
                    server,
                    config,
                    policy=self.policy,
                    placement=placement,
                    prefill_server=prefill_server,
                    kv_transfer=kv_transfer,
                    context_bucket=context_bucket,
                    name=f"replica{r}",
                )
                sched.cost = self.cost  # share the memoized engine costs
                if prefill_server is None:
                    sched.prefill_cost = self.cost
                elif prefill_cost is None:
                    prefill_cost = sched.prefill_cost
                else:
                    sched.prefill_cost = prefill_cost
            else:
                sched = RequestScheduler(
                    server,
                    config,
                    policy=self.policy,
                    context_bucket=context_bucket,
                    name=f"replica{r}",
                )
                sched.cost = self.cost  # share the memoized engine costs
            self.schedulers.append(sched)

    # ------------------------------------------------------------------
    def fifo_service_time(self, request: Request) -> float:
        """Unbatched service time on one replica (includes shard transfers)."""
        return self.schedulers[0].fifo_service_time(request)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request]) -> ClusterResult:
        """Simulate the stream across the cluster; see the module docstring."""
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        ids = [r.request_id for r in ordered]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique within a stream")
        R = self.replicas

        self.router.reset(R, seed=self.seed)
        fail_at = {f.replica: f.at_s for f in self.failures}

        busy_until = [0.0] * R
        finish_heaps: List[List[float]] = [[] for _ in range(R)]
        assignments: List[List[Request]] = [[] for _ in range(R)]
        routed_count = [0] * R
        max_depth = [0] * R
        failover_count: Dict[int, int] = {r.request_id: 0 for r in ordered}
        events: List[Dict[str, object]] = []
        shed_ids: set = set()
        final: Dict[int, Tuple[int, RequestStats]] = {}
        results: Dict[int, ScheduleResult] = {}

        def queue_depth(rep: int, now: float) -> int:
            h = finish_heaps[rep]
            while h and h[0] <= now:
                heapq.heappop(h)
            return len(h)

        def alive_at(now: float) -> List[int]:
            return [r for r in range(R) if r not in fail_at or now < fail_at[r]]

        def assign(req: Request, now: float, failed_from: Optional[int]) -> None:
            alive = alive_at(now)
            if not alive:
                shed_ids.add(req.request_id)
                registry.counter("cluster.shed").inc()
                events.append(
                    {"kind": "shed", "request_id": req.request_id, "at_s": now}
                )
                return
            loads = [
                ReplicaLoad(
                    replica=r,
                    queue_depth=queue_depth(r, now),
                    backlog_s=max(0.0, busy_until[r] - now),
                )
                for r in alive
            ]
            target = self.router.choose(req, alive, loads)
            if target not in set(alive):
                raise RuntimeError(
                    f"router {self.router.name!r} chose dead replica {target}"
                )
            est = self.schedulers[target].fifo_service_time(req)
            busy_until[target] = max(busy_until[target], now) + est
            heapq.heappush(finish_heaps[target], busy_until[target])
            max_depth[target] = max(max_depth[target], queue_depth(target, now))
            assignments[target].append(req)
            routed_count[target] += 1
            registry.counter("cluster.requests_routed").inc()
            registry.histogram(
                "cluster.router_backlog_s", (0.01, 0.1, 1.0, 10.0, 100.0)
            ).observe(max(0.0, busy_until[target] - now) - est)
            if failed_from is not None:
                events.append(
                    {
                        "kind": "failover",
                        "request_id": req.request_id,
                        "from": failed_from,
                        "to": target,
                        "at_s": now,
                    }
                )

        def process_failure(rep: int, t_f: float) -> None:
            failure = next(f for f in self.failures if f.replica == rep)
            events.append(
                {
                    "kind": "replica_failed",
                    "replica": rep,
                    "at_s": t_f,
                    "fault_plan": (
                        failure.plan.to_dict() if failure.plan else None
                    ),
                }
            )
            registry.counter("cluster.replica_failures").inc()
            # The dead replica's substream is final: arrivals after t_f
            # can never route here.  Simulate it fully; keep only what
            # finished at or before the failure.
            with tracer.span(
                "cluster.replica", replica=rep, failed_at_s=t_f
            ):
                res = self.schedulers[rep].run(assignments[rep])
            results[rep] = res
            by_id = {s.request_id: s for s in res.requests}
            moved: List[Request] = []
            for req in assignments[rep]:
                s = by_id[req.request_id]
                if s.rejected or s.finished_s <= t_f:
                    final[req.request_id] = (rep, s)
                else:
                    moved.append(req)
            for req in sorted(moved, key=lambda q: (q.arrival_s, q.request_id)):
                failover_count[req.request_id] += 1
                registry.counter("cluster.failovers").inc()
                assign(replace(req, arrival_s=t_f), t_f, failed_from=rep)

        ledger = None
        cluster_scope = None
        if self.server.resilience is not None and self.server.resilience.active:
            ledger = self.server.resilience.ledger
            cluster_scope = ledger.open_request_scope("cluster.run")

        try:
            with tracer.span(
                "cluster.run",
                replicas=R,
                shards=self.shards,
                router=self.router.name,
                requests=len(ordered),
            ) as run_span:
                # Route arrivals in time order, interleaving failures.
                pending = list(self.failures)
                fi = 0
                for req in ordered:
                    while fi < len(pending) and pending[fi].at_s <= req.arrival_s:
                        process_failure(pending[fi].replica, pending[fi].at_s)
                        fi += 1
                    assign(req, req.arrival_s, failed_from=None)
                while fi < len(pending):
                    process_failure(pending[fi].replica, pending[fi].at_s)
                    fi += 1

                # Simulate surviving replicas on their final substreams.
                for rep in range(R):
                    if rep in fail_at:
                        continue
                    with tracer.span("cluster.replica", replica=rep):
                        res = self.schedulers[rep].run(assignments[rep])
                    results[rep] = res
                    for s in res.requests:
                        final[s.request_id] = (rep, s)

                run_span.set_attribute("failovers", sum(failover_count.values()))
                run_span.set_attribute("shed", len(shed_ids))
        except BaseException:
            if cluster_scope is not None:
                ledger.close_request_scope(cluster_scope)
            raise

        degradation = None
        if cluster_scope is not None:
            degradation = ledger.close_request_scope(cluster_scope)

        # ----------------------------------------------------------
        # Aggregate: union of per-request stats, original arrivals.
        # ----------------------------------------------------------
        cluster_requests: List[ClusterRequestStats] = []
        for req in ordered:
            rid = req.request_id
            fo = failover_count[rid]
            if rid in final:
                rep, s = final[rid]
                if s.arrival_s != req.arrival_s:
                    s = replace(s, arrival_s=req.arrival_s)
                cluster_requests.append(
                    ClusterRequestStats(replica=rep, failovers=fo, stats=s)
                )
            else:
                if rid not in shed_ids:
                    raise RuntimeError(
                        f"request {rid} lost by the cluster simulation"
                    )
                cluster_requests.append(
                    ClusterRequestStats(
                        replica=-1,
                        failovers=fo,
                        stats=RequestStats(
                            request_id=rid,
                            arrival_s=req.arrival_s,
                            prompt_len=req.prompt_len,
                            generate_len=req.generate_len,
                            batch=req.batch,
                            rejected=True,
                        ),
                    )
                )

        done = [
            c.stats
            for c in cluster_requests
            if not c.shed and not c.stats.rejected
        ]
        rejected = sum(
            1 for c in cluster_requests if not c.shed and c.stats.rejected
        )
        shed = sum(1 for c in cluster_requests if c.shed)
        failovers = sum(failover_count.values())

        # A failed replica contributes to the cluster timeline only up to
        # its failure instant; its counterfactual tail is discarded.
        makespans: List[float] = []
        busy_total = 0.0
        steps_total = 0
        phase_totals: Dict[str, float] = {}
        for rep, res in results.items():
            t_f = fail_at.get(rep)
            if t_f is None:
                makespans.append(res.makespan_s)
                busy_total += res.busy_s
                steps_total += res.steps
                for key, seconds in res.phase_seconds.items():
                    phase_totals[key] = phase_totals.get(key, 0.0) + seconds
            else:
                makespans.append(min(res.makespan_s, t_f))
                busy_total += min(res.busy_s, t_f)
                steps_total += sum(
                    1 for t, _ in res.occupancy_timeline if t <= t_f
                )

        ttfts = [s.ttft_s for s in done]
        tpots = [s.tpot_s for s in done if s.generate_len]
        e2es = [s.e2e_s for s in done]
        busy_s = busy_total

        registry.counter("cluster.runs").inc()
        registry.series("cluster.completed").append(float(len(done)))

        return ClusterResult(
            router=self.router.name,
            replicas=R,
            shards=self.shards,
            policy=self.policy,
            completed=len(done),
            rejected=rejected,
            shed=shed,
            failovers=failovers,
            steps=steps_total,
            makespan_s=max(makespans, default=0.0),
            busy_s=busy_s,
            prefill_tokens=sum(s.batch * s.prompt_len for s in done),
            generated_tokens=sum(s.batch * s.generate_len for s in done),
            ttft_p50_s=_pct(ttfts, 50),
            ttft_p95_s=_pct(ttfts, 95),
            ttft_p99_s=_pct(ttfts, 99),
            tpot_p50_s=_pct(tpots, 50),
            tpot_p95_s=_pct(tpots, 95),
            tpot_p99_s=_pct(tpots, 99),
            e2e_p50_s=_pct(e2es, 50),
            e2e_p95_s=_pct(e2es, 95),
            e2e_p99_s=_pct(e2es, 99),
            mean_e2e_s=float(np.mean(e2es)) if e2es else 0.0,
            replica_results=tuple(results[r] for r in sorted(results)),
            replica_routed=tuple(routed_count),
            replica_max_queue_depth=tuple(max_depth),
            replica_failed_at=tuple(fail_at.get(r) for r in range(R)),
            requests=tuple(cluster_requests),
            events=tuple(events),
            shard_plan=self.shard_plan,
            degradation=degradation,
            phase_seconds=phase_totals,
        )


@dataclass(frozen=True)
class ClusterSweepPoint:
    """One cell of :func:`cluster_load_sweep`."""

    replicas: int
    shards: int
    router: str
    target_utilization: float
    arrival_rate_rps: float
    result: ClusterResult

    def to_jsonable(self) -> dict:
        return {
            "replicas": self.replicas,
            "shards": self.shards,
            "router": self.router,
            "target_utilization": self.target_utilization,
            "arrival_rate_rps": self.arrival_rate_rps,
            "result": self.result.to_jsonable(),
        }


def cluster_load_sweep(
    server: GenerationServer,
    config: TransformerConfig,
    replica_counts: Sequence[int] = (1, 2, 4),
    shard_counts: Sequence[int] = (1,),
    routers: Sequence[str] = ("round-robin",),
    utilizations: Sequence[float] = (0.8, 1.5),
    num_requests: int = 200,
    prompt_len: int = 128,
    generate_len: int = 32,
    batch: int = 1,
    policy: Optional[SchedulerPolicy] = None,
    context_bucket: int = 32,
    arrivals: str = "poisson",
    seed: int = 0,
    sessions: Optional[int] = None,
) -> List[ClusterSweepPoint]:
    """Sweep replicas x shards x routing policy over load levels.

    Utilization targets are normalized against the FIFO service time of
    one request on a *single unsharded replica* — the same normalization
    :func:`~repro.engine.scheduler.scheduler_load_sweep` uses — so
    ``rho >= 1`` overloads one replica and the sweep shows how
    replication recovers goodput while sharding trades per-request
    latency for pool capacity.  Every cell at one load level consumes the
    *identical* seeded stream, so cells are directly comparable.
    """
    # Validate the whole sweep before simulating anything, with the
    # explicit non-positive check (never truthiness — 0.0 is an error, not
    # "use a default"): the same convention `serve-sim` applies to
    # --rate/--utilization.
    for rho in utilizations:
        if rho <= 0.0:
            raise ValueError(f"utilizations must be positive, got {rho}")
    probe = Request(
        request_id=-1,
        arrival_s=0.0,
        prompt_len=prompt_len,
        generate_len=generate_len,
        batch=batch,
    )
    reference = RequestScheduler(
        server, config, policy=policy, context_bucket=context_bucket
    )
    service_s = reference.fifo_service_time(probe)

    # One shared cost model per shard count: replicas are homogeneous and
    # the sweep amortizes the engine costing across every cell.
    costs: Dict[int, EngineCostModel] = {1: reference.cost}
    for shards in shard_counts:
        if shards not in costs:
            plan = ShardPlan(
                config=config,
                shards=shards,
                interconnect=server.platform.scatter,
                activation_dtype_bytes=server.platform.gemm_dtype_bytes,
            )
            costs[shards] = ShardedCostModel(
                server, plan, context_bucket=context_bucket
            )

    points: List[ClusterSweepPoint] = []
    for rho in utilizations:
        rate = rho / service_s
        stream = poisson_requests(
            num_requests,
            rate,
            prompt_len=prompt_len,
            generate_len=generate_len,
            batch=batch,
            arrivals=arrivals,
            seed=seed,
            sessions=sessions,
        )
        for shards in shard_counts:
            for replicas in replica_counts:
                for router in routers:
                    cluster = ClusterScheduler(
                        server,
                        config,
                        replicas=replicas,
                        shards=shards,
                        policy=policy,
                        router=router,
                        context_bucket=context_bucket,
                        seed=seed,
                        cost_model=costs[shards],
                    )
                    points.append(
                        ClusterSweepPoint(
                            replicas=replicas,
                            shards=shards,
                            router=router,
                            target_utilization=rho,
                            arrival_rate_rps=rate,
                            result=cluster.run(stream),
                        )
                    )
    return points
