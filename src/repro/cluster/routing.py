"""Pluggable request-routing policies for the cluster scheduler.

The router sees each arrival *once*, in time order, together with the set
of alive replicas and a cheap virtual-load view of each (queue depth and
backlog seconds estimated from FIFO service times).  It returns the
replica id the request is dispatched to.  Routers are deterministic given
their seed: :meth:`Router.reset` is called once per cluster run, so the
same seeded stream through the same policy always lands identically —
the property tests in ``tests/test_cluster.py`` rely on this.

Policies (names accepted by :func:`make_router`):

* ``round-robin`` — stride over replica ids, skipping dead ones.
* ``least-loaded`` — argmin of backlog seconds (ties: queue depth, id).
* ``p2c`` — power-of-two-choices [Mitzenmacher]: sample two distinct
  alive replicas (seeded), send to the shallower queue.
* ``session-affinity`` — rendezvous (highest-random-weight) hashing on
  the request's session tag, so a session sticks to one replica and,
  when that replica dies, *all* of its sessions re-land consistently
  without reshuffling sessions on surviving replicas.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..engine.scheduler import Request

__all__ = [
    "ReplicaLoad",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "PowerOfTwoRouter",
    "SessionAffinityRouter",
    "ROUTER_POLICIES",
    "make_router",
]


@dataclass(frozen=True)
class ReplicaLoad:
    """Virtual load of one alive replica at a routing instant.

    ``queue_depth`` counts requests whose estimated (FIFO) finish time is
    still in the future; ``backlog_s`` is how far the replica's virtual
    busy horizon extends beyond *now*.  Both are router-visible estimates,
    not simulator ground truth — the point is that every policy sees the
    same signal, so policies are comparable.
    """

    replica: int
    queue_depth: int
    backlog_s: float


class Router:
    """Base class: stateful, seeded, one instance per cluster run."""

    name = "router"

    def reset(self, replicas: int, seed: int = 0) -> None:
        """Called once before a run; clears any per-run state."""

    def choose(
        self,
        request: Request,
        alive: Sequence[int],
        loads: Sequence[ReplicaLoad],
    ) -> int:
        """Pick a replica id from ``alive`` (``loads`` aligns with it)."""
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Stride over replica ids in order, skipping dead replicas."""

    name = "round-robin"

    def __init__(self) -> None:
        self._replicas = 0
        self._cursor = 0

    def reset(self, replicas: int, seed: int = 0) -> None:
        self._replicas = replicas
        self._cursor = 0

    def choose(
        self,
        request: Request,
        alive: Sequence[int],
        loads: Sequence[ReplicaLoad],
    ) -> int:
        alive_set = set(alive)
        # Advance the cursor over *all* ids so the stripe stays stable
        # when a replica dies (survivors keep their phase).
        for _ in range(self._replicas):
            candidate = self._cursor % self._replicas
            self._cursor += 1
            if candidate in alive_set:
                return candidate
        raise RuntimeError("round-robin router called with no alive replica")


class LeastLoadedRouter(Router):
    """Send to the replica with the smallest virtual backlog."""

    name = "least-loaded"

    def choose(
        self,
        request: Request,
        alive: Sequence[int],
        loads: Sequence[ReplicaLoad],
    ) -> int:
        best = min(loads, key=lambda ld: (ld.backlog_s, ld.queue_depth, ld.replica))
        return best.replica


class PowerOfTwoRouter(Router):
    """Power-of-two-choices: probe two random replicas, join the shorter.

    The classic result: sampling *two* queues and picking the shallower
    drops the maximum queue length exponentially versus random (and in
    practice versus blind round-robin on skewed streams) at O(1) probe
    cost — the property test pins that ordering down.
    """

    name = "p2c"

    def __init__(self) -> None:
        self._rng = None

    def reset(self, replicas: int, seed: int = 0) -> None:
        import numpy as np

        self._rng = np.random.default_rng(seed)

    def choose(
        self,
        request: Request,
        alive: Sequence[int],
        loads: Sequence[ReplicaLoad],
    ) -> int:
        if self._rng is None:
            raise RuntimeError("router used before reset()")
        if len(alive) == 1:
            return alive[0]
        i, j = self._rng.choice(len(alive), size=2, replace=False)
        a, b = loads[int(i)], loads[int(j)]
        best = min(a, b, key=lambda ld: (ld.queue_depth, ld.backlog_s, ld.replica))
        return best.replica


class SessionAffinityRouter(Router):
    """Rendezvous hashing on the session tag (request id if untagged).

    Each (key, replica) pair gets a stable pseudo-random weight; the key
    routes to the alive replica with the highest weight.  Removing a
    replica only re-homes *its* keys — sessions on surviving replicas
    never move, which is the property that makes affinity routing safe
    under failover.
    """

    name = "session-affinity"

    @staticmethod
    def _weight(key: int, replica: int) -> int:
        digest = hashlib.blake2b(
            f"{key}/{replica}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def choose(
        self,
        request: Request,
        alive: Sequence[int],
        loads: Sequence[ReplicaLoad],
    ) -> int:
        key = request.session if request.session is not None else request.request_id
        return max(alive, key=lambda r: (self._weight(key, r), -r))


ROUTER_POLICIES: Dict[str, type] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    PowerOfTwoRouter.name: PowerOfTwoRouter,
    SessionAffinityRouter.name: SessionAffinityRouter,
}


def make_router(policy: str) -> Router:
    """Instantiate a router by policy name (see :data:`ROUTER_POLICIES`)."""
    try:
        cls = ROUTER_POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(ROUTER_POLICIES))
        raise ValueError(f"unknown routing policy {policy!r} (known: {known})")
    return cls()
