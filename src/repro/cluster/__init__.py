"""Cluster-scale serving: replicated/sharded scheduling over DIMM pools.

Composes N single-node :class:`~repro.engine.scheduler.RequestScheduler`
replicas behind pluggable routing policies, with layer-wise model
sharding (explicit inter-node activation transfers) and replica
failover.  See :mod:`repro.cluster.scheduler` for the simulation model.
"""

from .routing import (
    ROUTER_POLICIES,
    LeastLoadedRouter,
    PowerOfTwoRouter,
    ReplicaLoad,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    make_router,
)
from .scheduler import (
    ClusterRequestStats,
    ClusterResult,
    ClusterScheduler,
    ClusterSweepPoint,
    ReplicaFailure,
    cluster_load_sweep,
    failures_from_fault_plan,
)
from .sharding import ShardedCostModel, ShardPlan

__all__ = [
    "ROUTER_POLICIES",
    "Router",
    "ReplicaLoad",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "PowerOfTwoRouter",
    "SessionAffinityRouter",
    "make_router",
    "ClusterRequestStats",
    "ClusterResult",
    "ClusterScheduler",
    "ClusterSweepPoint",
    "ReplicaFailure",
    "cluster_load_sweep",
    "failures_from_fault_plan",
    "ShardPlan",
    "ShardedCostModel",
]
