"""Bridges from the repo's native cost records to Chrome-trace events.

Two record types predate the telemetry layer and stay authoritative for
*modeled* time (as opposed to the wall-clock time a :class:`~repro.obs.tracing.Span`
measures):

* :class:`repro.engine.report.EngineReport` — per-op modeled latencies of
  one engine inference;
* :class:`repro.pim.trace.KernelTrace` — the event stream of one PE's
  micro-kernel execution in the simulator.

Both are converted here to Chrome-trace ``X`` (complete) events on their
own process id, so engine-level op timelines and micro-kernel timelines
land in the same viewable file as the wall-clock spans.  The converters
duck-type their inputs to keep ``repro.obs`` import-free of the rest of
the package.
"""

from __future__ import annotations

from typing import List

#: Modeled timelines are rendered in microseconds like everything else in
#: the Chrome trace format.
_US = 1e6


def process_metadata(pid: int, name: str, events: List[dict]) -> None:
    """Append a ``process_name`` metadata event for ``pid``."""
    events.append(
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
         "args": {"name": name}}
    )


def report_to_chrome_events(report, pid: int) -> List[dict]:
    """Lay an :class:`EngineReport`'s ops on a modeled sequential timeline.

    The engines cost a sequential system (host and PIM alternate), so ops
    are placed back-to-back in execution order; the host and PIM devices
    get separate rows (``tid``) so the device handoff is visible.
    """
    events: List[dict] = []
    process_metadata(pid, f"engine: {report.engine} [{report.model}]", events)
    tids = {"host": 1, "pim": 2}
    for device, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": device}}
        )
    clock = 0.0
    for op in report.ops:
        events.append(
            {
                "name": op.name,
                "cat": op.category,
                "ph": "X",
                "ts": clock * _US,
                "dur": op.seconds * _US,
                "pid": pid,
                "tid": tids.get(op.device, 9),
                "args": {
                    "engine": report.engine,
                    "model": report.model,
                    "device": op.device,
                    "category": op.category,
                    "seconds": op.seconds,
                },
            }
        )
        clock += op.seconds
    return events


def kernel_trace_to_chrome_events(trace, pid: int) -> List[dict]:
    """Convert a :class:`KernelTrace` to Chrome events, one row per kind.

    Rows (``tid``) mirror the per-kind rows of ``KernelTrace.render`` so
    the Perfetto view matches the text timeline.
    """
    events: List[dict] = []
    mapping = trace.mapping
    label = (
        f"pim-kernel: n_m={mapping.n_m_tile} f_m={mapping.f_m_tile} "
        f"cb_m={mapping.cb_m_tile} {'-'.join(mapping.traversal)} "
        f"{mapping.load_scheme}"
    )
    process_metadata(pid, label, events)
    kinds = sorted({event.kind for event in trace.events})
    tids = {kind: i + 1 for i, kind in enumerate(kinds)}
    for kind, tid in tids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": kind}}
        )
    for event in trace.events:
        events.append(
            {
                "name": event.kind,
                "cat": "pim-kernel",
                "ph": "X",
                "ts": event.time_s * _US,
                "dur": event.duration_s * _US,
                "pid": pid,
                "tid": tids[event.kind],
                "args": {"tile": list(event.tile)},
            }
        )
    return events


def cluster_to_chrome_events(result, pid: int) -> List[dict]:
    """Render a :class:`~repro.cluster.scheduler.ClusterResult` as replica lanes.

    Each replica gets its own row (``tid`` = replica id + 1) carrying one
    ``X`` event per request it completed (admission to finish, on the
    simulated clock), so load balance — and the hole a failed replica
    leaves — is visible at a glance.  Replica failures land as instant
    events on the failed lane; shed requests land on a trailing
    ``router`` lane.
    """
    events: List[dict] = []
    label = (
        f"cluster: {result.replicas}x replicas, {result.shards}x shards, "
        f"{result.router}"
    )
    process_metadata(pid, label, events)
    router_tid = result.replicas + 1
    for replica in range(result.replicas):
        failed_at = result.replica_failed_at[replica]
        name = f"replica {replica}"
        if failed_at is not None:
            name += f" (failed @ {failed_at:.3g}s)"
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid,
             "tid": replica + 1, "args": {"name": name}}
        )
        if failed_at is not None:
            events.append(
                {"name": "replica_failed", "cat": "cluster", "ph": "i",
                 "ts": failed_at * _US, "pid": pid, "tid": replica + 1,
                 "s": "t", "args": {"replica": replica}}
            )
    events.append(
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": router_tid,
         "args": {"name": "router (shed)"}}
    )
    for c in result.requests:
        s = c.stats
        if c.replica < 0:
            events.append(
                {"name": f"shed req {s.request_id}", "cat": "cluster",
                 "ph": "i", "ts": s.arrival_s * _US, "pid": pid,
                 "tid": router_tid, "s": "t",
                 "args": {"request_id": s.request_id}}
            )
            continue
        if s.rejected:
            continue
        events.append(
            {
                "name": f"req {s.request_id}",
                "cat": "cluster",
                "ph": "X",
                "ts": s.admitted_s * _US,
                "dur": (s.finished_s - s.admitted_s) * _US,
                "pid": pid,
                "tid": c.replica + 1,
                "args": {
                    "request_id": s.request_id,
                    "replica": c.replica,
                    "failovers": c.failovers,
                    "prompt_len": s.prompt_len,
                    "generate_len": s.generate_len,
                    "e2e_s": s.e2e_s,
                },
            }
        )
    return events


#: Lane order for :func:`schedule_to_chrome_events` — prefill pool on
#: top, the KV migration link between the pools, decode pool below.
_POOL_LANES = ("prefill_pool", "kv_transfer", "decode_pool")


def schedule_to_chrome_events(result, pid: int) -> List[dict]:
    """Render a disaggregated :class:`~repro.engine.scheduler.ScheduleResult`
    as per-pool lanes.

    Each pool gets its own row — prefill pool, KV-transfer link, decode
    pool — carrying one ``X`` event per busy segment of
    :attr:`~repro.engine.scheduler.ScheduleResult.pool_timeline`, so the
    prefill/decode overlap (and the migration gap between them) is
    visible at a glance.  Single-pool results (no timeline) render an
    empty process.
    """
    events: List[dict] = []
    label = f"disagg: {result.placement or 'single-pool'} placement"
    process_metadata(pid, label, events)
    for tid, lane in enumerate(_POOL_LANES, start=1):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": lane.replace("_", " ")}}
        )
    lane_tid = {lane: tid for tid, lane in enumerate(_POOL_LANES, start=1)}
    for lane, name, start_s, end_s in result.pool_timeline:
        events.append(
            {
                "name": name,
                "cat": "disagg",
                "ph": "X",
                "ts": start_s * _US,
                "dur": (end_s - start_s) * _US,
                "pid": pid,
                # Unknown lanes land below the known three rather than
                # silently dropping.
                "tid": lane_tid.get(lane, len(_POOL_LANES) + 1),
                "args": {"pool": lane},
            }
        )
    return events


def profile_to_chrome_events(profile, pid: int) -> List[dict]:
    """Render a :class:`~repro.obs.profiler.PhaseProfile` as per-rank lanes.

    Each rank used by the run gets its own row (``tid`` = rank id + 1)
    carrying that rank's occupancy segments — serialized distribution
    burst, parallel kernel window, serialized gather — so rank imbalance
    is visible at a glance in Perfetto.
    """
    events: List[dict] = []
    label = f"pim-ranks: {profile.label}" if profile.label else "pim-ranks"
    process_metadata(pid, label, events)
    for rank, segments in sorted(profile.rank_segments.items()):
        tid = rank + 1
        pes = (
            profile.per_rank_active_pes[rank]
            if rank < len(profile.per_rank_active_pes)
            else 0
        )
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": f"rank {rank} ({pes} PEs)"}}
        )
        for seg in segments:
            events.append(
                {
                    "name": seg.phase,
                    "cat": "pim-rank",
                    "ph": "X",
                    "ts": seg.start_s * _US,
                    "dur": seg.duration_s * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "rank": rank,
                        "active_pes": pes,
                        "seconds": seg.duration_s,
                    },
                }
            )
    return events
