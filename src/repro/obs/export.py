"""Exporters: JSON helpers, span JSONL, and Chrome-trace-format files.

The Chrome trace format (the JSON consumed by Perfetto and
``chrome://tracing``) is the layer's interchange point: wall-clock spans,
modeled engine timelines (:func:`repro.obs.bridge.report_to_chrome_events`),
and simulator micro-kernel traces all render to the same ``traceEvents``
list and can be viewed in one file.

``to_jsonable`` is the shared serialization helper — the CLI's ``--json``
output modes use it too, so machine-readable tables and telemetry agree
on how dataclasses, numpy scalars, and tuples serialize.
"""

from __future__ import annotations

import dataclasses
import json
from typing import IO, Iterable, List, Optional, Sequence, Union

from .bridge import (
    cluster_to_chrome_events,
    kernel_trace_to_chrome_events,
    profile_to_chrome_events,
    report_to_chrome_events,
    schedule_to_chrome_events,
)
from .tracing import Span


def to_jsonable(obj):
    """Recursively convert ``obj`` to JSON-compatible builtins.

    Handles dataclasses, numpy scalars/arrays (duck-typed via ``item`` /
    ``tolist``), mappings, sets, and sequences; unknown objects fall back
    to ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array
        return to_jsonable(obj.tolist())
    if hasattr(obj, "item"):  # numpy scalar
        return to_jsonable(obj.item())
    return str(obj)


def dump_json(obj, fh_or_path: Union[str, IO[str]], indent: Optional[int] = 2) -> None:
    """Write ``to_jsonable(obj)`` as JSON to a path or open file."""
    payload = to_jsonable(obj)
    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w") as fh:
            json.dump(payload, fh, indent=indent)
            fh.write("\n")
    else:
        json.dump(payload, fh_or_path, indent=indent)


# ----------------------------------------------------------------------
# JSONL span export
# ----------------------------------------------------------------------

def spans_to_jsonl_lines(spans: Iterable[Span]) -> List[str]:
    return [json.dumps(to_jsonable(span.to_dict())) for span in spans]


def write_spans_jsonl(path: str, spans: Iterable[Span]) -> int:
    """Write one JSON object per finished span; returns the line count."""
    lines = spans_to_jsonl_lines(spans)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


# ----------------------------------------------------------------------
# Chrome trace format
# ----------------------------------------------------------------------

#: pid reserved for wall-clock spans; modeled timelines start above it.
WALL_PID = 1


def spans_to_chrome_events(
    spans: Sequence[Span], pid: int = WALL_PID, complete: bool = True
) -> List[dict]:
    """Render finished spans as Chrome events.

    ``complete=True`` emits one ``X`` event per span (ts + dur);
    ``complete=False`` emits matched ``B``/``E`` pairs, which some tools
    prefer for deeply nested timelines.
    """
    events: List[dict] = []
    if spans:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "wall clock"}}
        )
    for span in spans:
        if span.end_s is None:
            continue
        base = {
            "name": span.name,
            "cat": str(span.attributes.get("category", "span")),
            "pid": pid,
            "tid": span.thread_id,
            "args": to_jsonable(
                {**span.attributes, "span_id": span.span_id,
                 "parent_id": span.parent_id}
            ),
        }
        ts = span.start_s * 1e6
        if complete:
            events.append({**base, "ph": "X", "ts": ts, "dur": span.duration_s * 1e6})
        else:
            events.append({**base, "ph": "B", "ts": ts})
            events.append(
                {"name": base["name"], "cat": base["cat"], "pid": pid,
                 "tid": span.thread_id, "ph": "E", "ts": span.end_s * 1e6}
            )
    return events


def build_chrome_trace(
    spans: Sequence[Span] = (),
    reports: Sequence = (),
    kernel_traces: Sequence = (),
    profiles: Sequence = (),
    clusters: Sequence = (),
    schedules: Sequence = (),
    metrics: Optional[dict] = None,
    complete: bool = True,
) -> dict:
    """Assemble one Chrome-trace document from all telemetry sources.

    ``reports`` are :class:`~repro.engine.report.EngineReport` objects,
    ``kernel_traces`` are :class:`~repro.pim.trace.KernelTrace` objects,
    ``profiles`` are :class:`~repro.obs.profiler.PhaseProfile` objects
    (rendered as per-rank occupancy lanes), ``clusters`` are
    :class:`~repro.cluster.scheduler.ClusterResult` objects (rendered as
    per-replica request lanes), and ``schedules`` are disaggregated
    :class:`~repro.engine.scheduler.ScheduleResult` objects (rendered as
    per-pool busy lanes); each gets its own process id.
    ``metrics`` (e.g. a registry snapshot) rides along in ``otherData``.
    """
    events: List[dict] = list(spans_to_chrome_events(spans, complete=complete))
    pid = WALL_PID + 1
    for report in reports:
        events.extend(report_to_chrome_events(report, pid))
        pid += 1
    for trace in kernel_traces:
        events.extend(kernel_trace_to_chrome_events(trace, pid))
        pid += 1
    for profile in profiles:
        events.extend(profile_to_chrome_events(profile, pid))
        pid += 1
    for cluster in clusters:
        events.extend(cluster_to_chrome_events(cluster, pid))
        pid += 1
    for schedule in schedules:
        events.extend(schedule_to_chrome_events(schedule, pid))
        pid += 1
    metadata = [e for e in events if e.get("ph") == "M"]
    timed = [e for e in events if e.get("ph") != "M"]
    timed.sort(key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("tid", 0)))
    document = {
        "traceEvents": metadata + timed,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": to_jsonable(metrics)}
    return document


def write_chrome_trace(
    path: str,
    spans: Sequence[Span] = (),
    reports: Sequence = (),
    kernel_traces: Sequence = (),
    profiles: Sequence = (),
    clusters: Sequence = (),
    schedules: Sequence = (),
    metrics: Optional[dict] = None,
    complete: bool = True,
) -> dict:
    """Build and write a Chrome-trace file; returns the document."""
    document = build_chrome_trace(
        spans=spans,
        reports=reports,
        kernel_traces=kernel_traces,
        profiles=profiles,
        clusters=clusters,
        schedules=schedules,
        metrics=metrics,
        complete=complete,
    )
    with open(path, "w") as fh:
        json.dump(document, fh)
    return document
