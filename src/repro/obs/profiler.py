"""Per-rank utilization profiles and bottleneck attribution.

PIM-DL's core claim is that LUT-NMM turns inference from compute-bound
into bandwidth-bound, so the question a performance report must answer is
*which resource saturates* — host CCS, host<->PIM DMA, rank-level table
lookup, or the adder reduction — at each configuration.  This module owns
the two record types that answer it:

* :class:`PhaseProfile` — a structured breakdown of one kernel (or one
  aggregated run) into named phases whose seconds sum exactly to the
  modeled total, plus per-rank busy time and occupancy segments for the
  Chrome-trace per-rank lanes;
* :class:`BottleneckReport` — the attribution roll-up: dominant phase,
  roofline-relative utilization per phase, rank-imbalance index, and the
  top-k most loaded ranks.

The :class:`~repro.pim.simulator.PIMSimulator` emits a ``PhaseProfile``
with every :class:`~repro.pim.simulator.SimulationReport`; the engines
aggregate phase seconds per op (from the analytical
:class:`~repro.mapping.analytical.LatencyBreakdown`); the scheduler rolls
phases up per prefill/decode request class.  Everything here is plain
numbers — ``repro.obs`` stays import-free of the rest of the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Canonical phase names, in reporting order.  ``distribution``/``gather``
#: are host<->PIM transfers over the rank buses, ``dma`` is PE-local
#: MRAM<->WRAM tile movement, ``lookup``/``reduce`` split the micro-kernel
#: compute, ``overhead`` is per-loop-iteration instruction cost, and
#: ``launch`` is the per-kernel driver dispatch.  Engine-level profiles
#: add host-side phases (``ccs``, ``attention``, ``elementwise``, ...).
#: Serving-layer transfer phases (cluster shard boundaries, disaggregated
#: KV migrations) sort after the device phases they interleave with.
PHASE_ORDER: Tuple[str, ...] = (
    "distribution", "ccs", "dma", "lookup", "reduce", "overhead",
    "gather", "launch", "shard_transfer", "kv_transfer",
)


def _phase_rank(name: str) -> Tuple[int, str]:
    try:
        return (PHASE_ORDER.index(name), name)
    except ValueError:
        return (len(PHASE_ORDER), name)


def sorted_phases(phase_seconds: Dict[str, float]) -> List[Tuple[str, float]]:
    """Phases in canonical order (known phases first, then alphabetical)."""
    return sorted(phase_seconds.items(), key=lambda kv: _phase_rank(kv[0]))


@dataclass(frozen=True)
class PhaseSegment:
    """One busy interval of one rank's timeline."""

    start_s: float
    end_s: float
    phase: str

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PhaseProfile:
    """Structured per-phase / per-rank breakdown of one modeled execution.

    ``phase_seconds`` partitions the modeled total exactly (the simulator
    guarantees ``sum(phase_seconds.values()) == report.total_s``); the
    per-rank fields describe how that time lands on the platform's ranks.
    Ranks the workload never touches appear with zero busy time, so the
    imbalance index reflects unused capacity, not just skew among the used
    ranks.
    """

    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Busy seconds per platform rank (length = platform.ranks; 0 when
    #: rank-level attribution is unavailable, e.g. pure-host runs).
    per_rank_busy_s: Tuple[float, ...] = ()
    #: Active PEs per rank under the sub-LUT partition.
    per_rank_active_pes: Tuple[int, ...] = ()
    pes_per_rank: int = 0
    #: Occupancy segments per *used* rank: {rank_id: (PhaseSegment, ...)}.
    #: Populated for single-kernel profiles; aggregation drops them.
    rank_segments: Dict[int, Tuple[PhaseSegment, ...]] = field(
        default_factory=dict
    )
    label: str = ""
    #: Transfer seconds hidden under compute by pipelined double-buffering.
    #: Informational: ``phase_seconds`` already reports *exposed* time (so
    #: the exact partition of ``total_s`` is preserved); the sequential
    #: dma cost is ``phase_seconds["dma"] + overlap_hidden_s``.
    overlap_hidden_s: float = 0.0

    @property
    def total_s(self) -> float:
        return sum(self.phase_seconds.values())

    def phase_shares(self) -> Dict[str, float]:
        total = self.total_s
        if total <= 0:
            return {phase: 0.0 for phase in self.phase_seconds}
        return {p: s / total for p, s in self.phase_seconds.items()}

    def add_phase(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    # ------------------------------------------------------------------
    # Rank views
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> int:
        return len(self.per_rank_busy_s)

    def rank_load(self) -> Tuple[float, ...]:
        """PE-weighted busy seconds per rank (busy x active/total PEs).

        The quantity imbalance is measured on: a rank busy for 1 s with
        half its PEs active carries the same load as one busy 0.5 s with
        all PEs active.
        """
        if not self.per_rank_busy_s or self.pes_per_rank <= 0:
            return ()
        return tuple(
            busy * pes / self.pes_per_rank
            for busy, pes in zip(self.per_rank_busy_s, self.per_rank_active_pes)
        )

    @property
    def imbalance_index(self) -> float:
        """``1 - mean(load)/max(load)`` over all platform ranks.

        0 when every rank carries identical load; approaches
        ``1 - 1/ranks`` when a single rank does all the work.
        """
        load = self.rank_load()
        if not load:
            return 0.0
        peak = max(load)
        if peak <= 0:
            return 0.0
        return 1.0 - (sum(load) / len(load)) / peak

    def top_ranks(self, k: int = 3) -> Tuple[Tuple[int, float], ...]:
        """The ``k`` most loaded ranks as ``(rank_id, load_seconds)``."""
        load = self.rank_load()
        ranked = sorted(enumerate(load), key=lambda iv: (-iv[1], iv[0]))
        return tuple((i, v) for i, v in ranked[:k] if v > 0)

    def occupancy_timeline(self, points: int = 32) -> List[Tuple[float, float]]:
        """Sampled (time, fraction-of-PEs-busy) over the kernel window."""
        if not self.rank_segments or self.pes_per_rank <= 0:
            return []
        end = max(
            seg.end_s for segs in self.rank_segments.values() for seg in segs
        )
        total_pes = len(self.per_rank_busy_s) * self.pes_per_rank
        if end <= 0 or total_pes <= 0:
            return []
        out: List[Tuple[float, float]] = []
        for i in range(points):
            t = end * (i + 0.5) / points
            busy_pes = 0
            for rank, segs in self.rank_segments.items():
                if any(seg.start_s <= t < seg.end_s for seg in segs):
                    busy_pes += self.per_rank_active_pes[rank]
            out.append((t, busy_pes / total_pes))
        return out

    # ------------------------------------------------------------------
    # Aggregation / serialization
    # ------------------------------------------------------------------
    @classmethod
    def combine(
        cls, profiles: Iterable["PhaseProfile"], label: str = ""
    ) -> "PhaseProfile":
        """Sum phase seconds and per-rank busy time across profiles.

        Per-rank segments do not compose across kernels (each kernel's
        timeline starts at 0), so the combined profile drops them.
        """
        merged = cls(label=label)
        busy: List[float] = []
        pes: List[int] = []
        for profile in profiles:
            for phase, seconds in profile.phase_seconds.items():
                merged.add_phase(phase, seconds)
            merged.overlap_hidden_s += profile.overlap_hidden_s
            if profile.per_rank_busy_s:
                if len(busy) < len(profile.per_rank_busy_s):
                    busy += [0.0] * (len(profile.per_rank_busy_s) - len(busy))
                    pes += [0] * (len(profile.per_rank_active_pes) - len(pes))
                for i, b in enumerate(profile.per_rank_busy_s):
                    busy[i] += b
                for i, p in enumerate(profile.per_rank_active_pes):
                    pes[i] = max(pes[i], p)
                merged.pes_per_rank = max(
                    merged.pes_per_rank, profile.pes_per_rank
                )
        merged.per_rank_busy_s = tuple(busy)
        merged.per_rank_active_pes = tuple(pes)
        return merged

    def to_jsonable(self) -> dict:
        return {
            "label": self.label,
            "total_s": self.total_s,
            "phase_seconds": dict(sorted_phases(self.phase_seconds)),
            "phase_shares": dict(sorted_phases(self.phase_shares())),
            "per_rank_busy_s": list(self.per_rank_busy_s),
            "per_rank_active_pes": list(self.per_rank_active_pes),
            "pes_per_rank": self.pes_per_rank,
            "imbalance_index": self.imbalance_index,
            "overlap_hidden_s": self.overlap_hidden_s,
            "rank_segments": {
                str(rank): [
                    {"start_s": s.start_s, "end_s": s.end_s, "phase": s.phase}
                    for s in segs
                ]
                for rank, segs in self.rank_segments.items()
            },
        }


def build_rank_timelines(
    profile: PhaseProfile,
    num_ranks: int,
    pes_per_rank: int,
    active_pes: int,
) -> None:
    """Fill ``profile``'s per-rank fields from one kernel's phase seconds.

    The timeline model mirrors the simulator's cost structure: the
    ``distribution`` burst serializes over the shared external bus (rank r
    receives its tiles after ranks 0..r-1), every used rank then executes
    the micro-kernel in parallel (the launch is synchronous, so all ranks
    occupy the same window), and ``gather`` serializes again on the way
    out.  ``launch`` is host time and lands on no rank.
    """
    phases = profile.phase_seconds
    ranks_used = min(num_ranks, max(1, -(-active_pes // pes_per_rank)))
    per_rank_pes = [
        min(pes_per_rank, max(0, active_pes - r * pes_per_rank))
        for r in range(num_ranks)
    ]
    kernel_s = sum(
        phases.get(p, 0.0) for p in ("dma", "lookup", "reduce", "overhead")
    )
    dist_s = phases.get("distribution", 0.0)
    gather_s = phases.get("gather", 0.0)

    busy: List[float] = [0.0] * num_ranks
    segments: Dict[int, Tuple[PhaseSegment, ...]] = {}
    cum = 0
    for rank in range(ranks_used):
        pes = per_rank_pes[rank]
        if pes <= 0:
            continue
        share0 = cum / active_pes
        share1 = (cum + pes) / active_pes
        cum += pes
        segs: List[PhaseSegment] = []
        if dist_s > 0:
            segs.append(
                PhaseSegment(dist_s * share0, dist_s * share1, "distribution")
            )
        if kernel_s > 0:
            segs.append(PhaseSegment(dist_s, dist_s + kernel_s, "kernel"))
        if gather_s > 0:
            start = dist_s + kernel_s
            segs.append(
                PhaseSegment(
                    start + gather_s * share0, start + gather_s * share1,
                    "gather",
                )
            )
        segments[rank] = tuple(segs)
        busy[rank] = sum(seg.duration_s for seg in segs)
    profile.per_rank_busy_s = tuple(busy)
    profile.per_rank_active_pes = tuple(per_rank_pes)
    profile.pes_per_rank = pes_per_rank
    profile.rank_segments = segments


@dataclass(frozen=True)
class BottleneckReport:
    """Attribution roll-up: where did the modeled time go, and why.

    ``utilization`` maps a phase to its roofline-relative efficiency
    (achieved rate / platform peak) where the peak is known — e.g. the
    ``reduce`` phase against the aggregate adder throughput, transfer
    phases against the pattern bandwidths.  Phases without a known peak
    are simply absent.
    """

    total_s: float
    dominant_phase: str
    dominant_share: float
    phase_seconds: Dict[str, float]
    phase_shares: Dict[str, float]
    utilization: Dict[str, float] = field(default_factory=dict)
    imbalance_index: float = 0.0
    top_ranks: Tuple[Tuple[int, float], ...] = ()
    #: Transfer seconds pipelining hid under compute (phase seconds report
    #: exposed time; the sequential transfer cost adds this back).
    overlap_hidden_s: float = 0.0

    @classmethod
    def from_phases(
        cls,
        phase_seconds: Dict[str, float],
        utilization: Optional[Dict[str, float]] = None,
        imbalance_index: float = 0.0,
        top_ranks: Sequence[Tuple[int, float]] = (),
        overlap_hidden_s: float = 0.0,
    ) -> "BottleneckReport":
        total = sum(phase_seconds.values())
        shares = (
            {p: s / total for p, s in phase_seconds.items()}
            if total > 0
            else {p: 0.0 for p in phase_seconds}
        )
        if phase_seconds:
            dominant = max(
                phase_seconds.items(), key=lambda kv: (kv[1], kv[0])
            )[0]
            dominant_share = shares.get(dominant, 0.0)
        else:
            dominant, dominant_share = "none", 0.0
        return cls(
            total_s=total,
            dominant_phase=dominant,
            dominant_share=dominant_share,
            phase_seconds=dict(phase_seconds),
            phase_shares=shares,
            utilization=dict(utilization or {}),
            imbalance_index=imbalance_index,
            top_ranks=tuple(top_ranks),
            overlap_hidden_s=overlap_hidden_s,
        )

    def to_jsonable(self) -> dict:
        return {
            "total_s": self.total_s,
            "dominant_phase": self.dominant_phase,
            "dominant_share": self.dominant_share,
            "phase_seconds": dict(sorted_phases(self.phase_seconds)),
            "phase_shares": dict(sorted_phases(self.phase_shares)),
            "utilization": dict(sorted_phases(self.utilization)),
            "imbalance_index": self.imbalance_index,
            "top_ranks": [[rank, load] for rank, load in self.top_ranks],
            "overlap_hidden_s": self.overlap_hidden_s,
        }

    def render(self) -> str:
        """Plain-text attribution table for the CLI."""
        lines = [
            f"bottleneck: {self.dominant_phase} "
            f"({self.dominant_share:.1%} of {self.total_s * 1e3:.3f} ms)"
        ]
        for phase, seconds in sorted_phases(self.phase_seconds):
            share = self.phase_shares.get(phase, 0.0)
            util = self.utilization.get(phase)
            util_txt = f"  util {util:6.1%}" if util is not None else ""
            lines.append(
                f"  {phase:>13} {seconds * 1e3:10.4f} ms  {share:6.1%}{util_txt}"
            )
        if self.overlap_hidden_s > 0:
            exposed = self.phase_seconds.get("dma", 0.0)
            sequential = exposed + self.overlap_hidden_s
            hidden_share = (
                self.overlap_hidden_s / sequential if sequential > 0 else 0.0
            )
            lines.append(
                f"  pipelining hid {self.overlap_hidden_s * 1e3:.4f} ms of "
                f"transfer ({hidden_share:.1%} of sequential dma); "
                f"exposed {exposed * 1e3:.4f} ms"
            )
        if self.top_ranks:
            ranked = ", ".join(
                f"rank {rank} ({load * 1e3:.3f} ms)"
                for rank, load in self.top_ranks
            )
            lines.append(
                f"  rank imbalance {self.imbalance_index:.1%}; "
                f"most loaded: {ranked}"
            )
        return "\n".join(lines)


def attribute_bottleneck(
    profile: PhaseProfile,
    platform=None,
    shape=None,
    mapping=None,
    dma_bytes: Optional[float] = None,
    top_k: int = 3,
) -> BottleneckReport:
    """Build a :class:`BottleneckReport` from one profile.

    ``platform``/``shape`` enable roofline-relative utilization figures
    (duck-typed; any object with the :class:`~repro.pim.platforms.PIMPlatform`
    attributes works).  ``dma_bytes`` is the per-PE local-memory traffic
    the ``dma`` phase moved (the simulator records it in
    ``event_counts["dma_bytes"]``).
    """
    utilization: Dict[str, float] = {}
    phases = profile.phase_seconds
    if platform is not None and shape is not None:
        reduce_s = phases.get("reduce", 0.0)
        if reduce_s > 0:
            # Every output element accumulates CB adds: N*CB*F total adds
            # across all PEs, against the aggregate adder roofline.
            total_adds = float(shape.n) * shape.cb * shape.f
            utilization["reduce"] = min(
                total_adds / reduce_s / platform.peak_add_throughput, 1.0
            )
        dist_s = phases.get("distribution", 0.0)
        if dist_s > 0 and mapping is not None:
            lut_bytes = float(shape.cb) * shape.ct * mapping.f_s_tile
            index_bytes = float(mapping.n_s_tile) * shape.cb
            n_pes = (shape.n // mapping.n_s_tile) * (shape.f // mapping.f_s_tile)
            moved = n_pes * (lut_bytes + index_bytes)
            utilization["distribution"] = min(
                moved / dist_s / platform.broadcast.peak_bytes_per_s, 1.0
            )
        gather_s = phases.get("gather", 0.0)
        if gather_s > 0 and mapping is not None:
            # INT32 output accumulators (OUTPUT_BYTES in repro.mapping.space).
            moved = float(shape.n) * shape.f * 4.0
            utilization["gather"] = min(
                moved / gather_s / platform.gather.peak_bytes_per_s, 1.0
            )
        dma_s = phases.get("dma", 0.0)
        if dma_s > 0 and dma_bytes:
            utilization["dma"] = min(
                float(dma_bytes) / dma_s
                / platform.local_memory.peak_bytes_per_s,
                1.0,
            )
    return BottleneckReport.from_phases(
        phases,
        utilization=utilization,
        imbalance_index=profile.imbalance_index,
        top_ranks=profile.top_ranks(top_k),
        overlap_hidden_s=profile.overlap_hidden_s,
    )
