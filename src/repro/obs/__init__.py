"""Unified telemetry layer: metrics, span tracing, and trace export.

Every subsystem (tuner, calibration, engines, serving, simulator bridge)
records into one process-wide :class:`MetricsRegistry` and one
:class:`Tracer`, giving a single place to ask "where did the time go" for
an end-to-end run:

>>> from repro import obs
>>> registry, tracer = obs.get_registry(), obs.get_tracer()
>>> with tracer.span("my.region", note="demo"):
...     obs.get_registry().counter("my.counter").inc()
>>> snapshot = registry.snapshot()

Exporters (:mod:`repro.obs.export`) render finished spans as JSONL or as
Chrome-trace-format JSON (Perfetto / ``chrome://tracing``), and bridges
(:mod:`repro.obs.bridge`) convert :class:`~repro.engine.report.EngineReport`
op lists and simulator :class:`~repro.pim.trace.KernelTrace` streams into
the same Chrome-trace schema so modeled timelines and wall-clock spans
land in one viewable file.  The CLI exposes this via ``--emit-trace``,
``--metrics-json``, and the ``trace-export`` subcommand.

Telemetry is always-on and cheap (see ``tests/test_obs_overhead.py``);
:func:`set_enabled` swaps in null implementations when even that overhead
is unwanted.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Series,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer
from .export import (
    build_chrome_trace,
    dump_json,
    spans_to_chrome_events,
    spans_to_jsonl_lines,
    to_jsonable,
    write_chrome_trace,
    write_spans_jsonl,
)
from .bridge import (
    cluster_to_chrome_events,
    kernel_trace_to_chrome_events,
    profile_to_chrome_events,
    report_to_chrome_events,
    schedule_to_chrome_events,
)
from .profiler import (
    PHASE_ORDER,
    BottleneckReport,
    PhaseProfile,
    PhaseSegment,
    attribute_bottleneck,
    build_rank_timelines,
    sorted_phases,
)
from .baseline import (
    BaselineStore,
    BenchRecord,
    RegressionVerdict,
    current_git_sha,
    detect_regression,
    host_fingerprint,
    robust_stats,
)

_default_registry = MetricsRegistry()
_default_tracer = Tracer()
_enabled = True


def get_registry() -> MetricsRegistry:
    """The process-wide registry (a no-op registry when disabled)."""
    return _default_registry if _enabled else NULL_REGISTRY


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op tracer when disabled)."""
    return _default_tracer if _enabled else NULL_TRACER


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (e.g. for test isolation); returns the old."""
    global _default_registry
    old, _default_registry = _default_registry, registry
    return old


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer; returns the old one."""
    global _default_tracer
    old, _default_tracer = _default_tracer, tracer
    return old


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable telemetry recording."""
    global _enabled
    _enabled = bool(enabled)


def enabled() -> bool:
    return _enabled


def reset(max_spans: Optional[int] = None) -> None:
    """Clear all recorded telemetry (fresh registry + tracer)."""
    global _default_registry, _default_tracer
    _default_registry = MetricsRegistry()
    _default_tracer = Tracer(max_spans) if max_spans else Tracer()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_TIME_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "set_enabled",
    "enabled",
    "reset",
    "to_jsonable",
    "dump_json",
    "spans_to_jsonl_lines",
    "write_spans_jsonl",
    "spans_to_chrome_events",
    "build_chrome_trace",
    "write_chrome_trace",
    "report_to_chrome_events",
    "kernel_trace_to_chrome_events",
    "profile_to_chrome_events",
    "cluster_to_chrome_events",
    "schedule_to_chrome_events",
    "PHASE_ORDER",
    "PhaseProfile",
    "PhaseSegment",
    "BottleneckReport",
    "attribute_bottleneck",
    "build_rank_timelines",
    "sorted_phases",
    "BaselineStore",
    "BenchRecord",
    "RegressionVerdict",
    "robust_stats",
    "detect_regression",
    "host_fingerprint",
    "current_git_sha",
]
