"""Persistent benchmark history and robust regression detection.

Five perf-focused PRs produced numbers that evaporated at the end of every
CI run.  This module is the missing memory: a content-addressed JSONL
result store keyed by ``(benchmark id, platform fingerprint)`` — with the
git sha recorded per entry — that the nightly benchmarks and the ``bench``
CLI subcommand append to, plus a robust-statistics comparison (median +
MAD, configurable relative threshold) that turns the history into a
regression gate.

Robustness over sensitivity: benchmark runs on shared CI machines are
noisy, so a verdict is only "regression" when the current value is worse
than the baseline median by more than *both* the relative threshold and a
3-sigma band estimated from the median absolute deviation.  With fewer
than two recorded baselines the comparison is declared
``insufficient-baseline`` (warn-only), never a failure — a fresh store
must not break CI.

Everything here is stdlib-only; ``repro.obs`` stays import-free of the
rest of the package.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple

#: Consistency scale factor turning a MAD into a sigma estimate for
#: normally distributed noise.
MAD_TO_SIGMA = 1.4826

#: MAD multiplier of the noise band a regression must exceed.
NOISE_SIGMAS = 3.0

_SLUG_RE = re.compile(r"[^a-zA-Z0-9_.-]+")


def _slug(name: str) -> str:
    return _SLUG_RE.sub("-", name).strip("-") or "bench"


def host_fingerprint(extra: Optional[dict] = None) -> str:
    """Stable short hash of the measuring platform.

    Two results are only comparable when they came from the same kind of
    machine; the fingerprint keys the store files so histories from
    different runners never mix.  ``extra`` folds run configuration (e.g.
    the modeled PIM platform name) into the key.
    """
    payload = {
        "machine": _platform.machine(),
        "system": _platform.system(),
        "python": ".".join(map(str, sys.version_info[:2])),
        "extra": extra or {},
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return digest[:12]


def current_git_sha(repo_root: Optional[str] = None) -> str:
    """Short sha of the current checkout; ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark result at one commit on one platform."""

    bench_id: str
    value: float
    unit: str = "s"
    git_sha: str = "unknown"
    fingerprint: str = ""
    timestamp: float = 0.0
    #: Free-form context (model, batch size, modeled platform, ...).
    meta: Dict[str, object] = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "value": self.value,
            "unit": self.unit,
            "git_sha": self.git_sha,
            "fingerprint": self.fingerprint,
            "timestamp": self.timestamp,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "BenchRecord":
        return cls(
            bench_id=str(payload["bench_id"]),
            value=float(payload["value"]),
            unit=str(payload.get("unit", "s")),
            git_sha=str(payload.get("git_sha", "unknown")),
            fingerprint=str(payload.get("fingerprint", "")),
            timestamp=float(payload.get("timestamp", 0.0)),
            meta=dict(payload.get("meta", {})),
        )


class BaselineStore:
    """Append-only JSONL store of :class:`BenchRecord` histories.

    One file per ``(bench id, platform fingerprint)`` pair — the filename
    is content-addressed from the pair, so concurrent benchmarks of
    different ids never contend and histories from different machines
    never mix.  Appends are single ``O_APPEND`` writes (atomic for lines
    far below the pipe-buffer bound); reads are lenient, skipping
    corrupt lines rather than failing the comparison that needs the rest.
    """

    def __init__(self, root: str):
        self.root = root

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, bench_id: str, fingerprint: str) -> str:
        return os.path.join(
            self.root, f"{_slug(bench_id)}-{fingerprint or 'anyhost'}.jsonl"
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append(self, record: BenchRecord) -> str:
        """Append one record; returns the file it landed in."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(record.bench_id, record.fingerprint)
        line = json.dumps(record.to_jsonable(), sort_keys=True) + "\n"
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return path

    def record(
        self,
        bench_id: str,
        value: float,
        unit: str = "s",
        git_sha: Optional[str] = None,
        fingerprint: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> BenchRecord:
        """Build a record with current sha/fingerprint/time and append it."""
        rec = BenchRecord(
            bench_id=bench_id,
            value=float(value),
            unit=unit,
            git_sha=git_sha if git_sha is not None else current_git_sha(),
            fingerprint=(
                fingerprint if fingerprint is not None else host_fingerprint()
            ),
            timestamp=time.time(),
            meta=dict(meta or {}),
        )
        self.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def records(
        self, bench_id: str, fingerprint: str = ""
    ) -> List[BenchRecord]:
        """All recorded results for the pair, in append order."""
        path = self.path_for(bench_id, fingerprint)
        if not os.path.exists(path):
            return []
        out: List[BenchRecord] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(BenchRecord.from_jsonable(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue  # lenient: skip corrupt lines
        return out

    def baseline_values(
        self,
        bench_id: str,
        fingerprint: str = "",
        exclude_sha: Optional[str] = None,
    ) -> List[float]:
        """Historical values to compare against.

        ``exclude_sha`` drops results recorded at the current commit so a
        re-run never dilutes its own baseline.
        """
        return [
            r.value
            for r in self.records(bench_id, fingerprint)
            if exclude_sha is None or r.git_sha != exclude_sha
        ]

    def bench_ids(self) -> List[Tuple[str, str]]:
        """All ``(bench_id, fingerprint)`` pairs with recorded history."""
        if not os.path.isdir(self.root):
            return []
        pairs = set()
        for name in os.listdir(self.root):
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path) as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            rec = BenchRecord.from_jsonable(json.loads(line))
                        except (ValueError, KeyError, TypeError):
                            continue
                        pairs.add((rec.bench_id, rec.fingerprint))
                        break
            except OSError:
                continue
        return sorted(pairs)


def robust_stats(values: Sequence[float]) -> Tuple[float, float]:
    """``(median, median absolute deviation)`` of ``values``."""
    if not values:
        return (float("nan"), float("nan"))
    mid = median(values)
    mad = median(abs(v - mid) for v in values)
    return (float(mid), float(mad))


@dataclass(frozen=True)
class RegressionVerdict:
    """Outcome of comparing one current value against its history."""

    bench_id: str
    status: str  # "ok" | "regression" | "improvement" | "insufficient-baseline"
    current: float
    baseline_median: float
    baseline_mad: float
    baseline_count: int
    threshold: float
    #: Relative change vs. the baseline median (positive = slower when
    #: lower is better).
    delta_rel: float
    unit: str = "s"

    @property
    def is_regression(self) -> bool:
        return self.status == "regression"

    def to_jsonable(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "status": self.status,
            "current": self.current,
            "baseline_median": self.baseline_median,
            "baseline_mad": self.baseline_mad,
            "baseline_count": self.baseline_count,
            "threshold": self.threshold,
            "delta_rel": self.delta_rel,
            "unit": self.unit,
        }

    def render(self) -> str:
        if self.status == "insufficient-baseline":
            return (
                f"{self.bench_id}: {self.status} "
                f"({self.baseline_count} recorded, need 2) — "
                f"current {self.current:.6g} {self.unit}"
            )
        return (
            f"{self.bench_id}: {self.status} — current {self.current:.6g} "
            f"{self.unit} vs median {self.baseline_median:.6g} "
            f"({self.delta_rel:+.1%}, threshold {self.threshold:.0%}, "
            f"n={self.baseline_count})"
        )


def detect_regression(
    bench_id: str,
    current: float,
    baseline_values: Sequence[float],
    threshold: float = 0.10,
    lower_is_better: bool = True,
    unit: str = "s",
) -> RegressionVerdict:
    """Compare ``current`` against the history with median + MAD.

    A regression requires the current value to be worse than the baseline
    median by more than ``max(threshold * |median|, 3 * 1.4826 * MAD)`` —
    the relative threshold guards against tiny-but-consistent drift being
    flagged on near-noiseless modeled benchmarks, while the MAD band
    absorbs real measurement noise.  Fewer than two baselines yields
    ``insufficient-baseline`` (never a failure).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    values = list(baseline_values)
    mid, mad = robust_stats(values)
    if len(values) < 2:
        return RegressionVerdict(
            bench_id=bench_id,
            status="insufficient-baseline",
            current=float(current),
            baseline_median=mid,
            baseline_mad=mad,
            baseline_count=len(values),
            threshold=threshold,
            delta_rel=0.0,
            unit=unit,
        )
    delta = float(current) - mid
    if not lower_is_better:
        delta = -delta
    delta_rel = delta / abs(mid) if mid else 0.0
    band = max(threshold * abs(mid), NOISE_SIGMAS * MAD_TO_SIGMA * mad)
    if delta > band:
        status = "regression"
    elif delta < -band:
        status = "improvement"
    else:
        status = "ok"
    return RegressionVerdict(
        bench_id=bench_id,
        status=status,
        current=float(current),
        baseline_median=mid,
        baseline_mad=mad,
        baseline_count=len(values),
        threshold=threshold,
        delta_rel=delta_rel,
        unit=unit,
    )
