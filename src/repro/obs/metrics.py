"""Metrics primitives: counters, gauges, fixed-bucket histograms, series.

A :class:`MetricsRegistry` is a named collection of instruments.  Every
subsystem records into the process-wide default registry (see
:func:`repro.obs.get_registry`), so after any run — a tuner search, a
calibration pass, an end-to-end engine comparison — a single
``snapshot()`` answers "what happened", and ``to_json()`` makes it
machine-readable for the CLI's ``--metrics-json`` flag.

Instruments are cheap (a lock plus a few float ops) and always-on; the
``repro.obs`` package swaps in null instruments when telemetry is
disabled, and ``tests/test_obs_overhead.py`` guards the overhead bound.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper edges for latencies in seconds
#: (1 us .. 100 s, log-spaced by decade thirds).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp
    for exp in range(-6, 3)
    for base in (1.0, 2.0, 5.0)
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """Last-write-wins scalar (e.g. best-cost-so-far)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._value: Optional[float] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value = (self._value or 0.0) + amount

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and percentiles.

    ``buckets`` are ascending upper edges; an observation lands in the
    first bucket whose edge is >= the value, or in the overflow slot.
    The first ``sample_capacity`` raw observations are additionally
    retained so :meth:`percentile` is exact for runs that fit; beyond
    that the samples are discarded and percentiles interpolate from the
    bucket bounds.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        description: str = "",
        sample_capacity: int = 2048,
    ):
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"bucket edges must be strictly ascending: {edges}")
        self.name = name
        self.description = description
        self.edges = edges
        self.sample_capacity = max(0, int(sample_capacity))
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # +1 overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if self.sample_capacity else None

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.edges, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if self._samples is not None:
                if len(self._samples) < self.sample_capacity:
                    self._samples.append(value)
                else:
                    # Exactness is all-or-nothing: a partial sample set
                    # would silently bias the tail percentiles.
                    self._samples = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def bucket_counts(self) -> List[Tuple[Optional[float], int]]:
        """(upper_edge, count) pairs; the final edge ``None`` is overflow."""
        edges: List[Optional[float]] = list(self.edges) + [None]
        return list(zip(edges, self._counts))

    @property
    def samples_complete(self) -> bool:
        """True while every observation so far is retained verbatim."""
        return self._samples is not None

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the observed values.

        Exact (linear interpolation between order statistics, matching
        ``numpy.percentile``) while the retained samples cover every
        observation; otherwise interpolated from the bucket bounds, with
        the observed min/max tightening the two edge buckets.  ``q=0`` and
        ``q=100`` always return the exact observed min/max.  An empty
        histogram returns 0.0 on every path — never NaN, so callers can
        render snapshots without NaN-propagation or numpy warnings.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if self._samples is not None:
                ordered = sorted(self._samples)
                pos = (len(ordered) - 1) * q / 100.0
                lo = int(pos)
                hi = min(lo + 1, len(ordered) - 1)
                frac = pos - lo
                return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
            # Bucket interpolation: walk the cumulative distribution to the
            # target rank, then place the value proportionally inside the
            # bucket that crosses it.  The observed min/max tighten the
            # first and last (overflow) buckets.
            target = q / 100.0 * self._count
            cumulative = 0
            prev_edge: Optional[float] = None
            for edge, count in zip(list(self.edges) + [None], self._counts):
                if count:
                    lo = prev_edge if prev_edge is not None else self._min
                    hi = edge if edge is not None else self._max
                    if self._min is not None:
                        lo = max(lo, self._min) if lo is not None else self._min
                    if self._max is not None:
                        hi = min(hi, self._max) if hi is not None else self._max
                    hi = max(hi, lo)
                    if cumulative + count >= target:
                        frac = (target - cumulative) / count
                        return lo + (hi - lo) * frac
                    cumulative += count
                if edge is not None:
                    prev_edge = edge
            return float(self._max) if self._max is not None else 0.0

    def snapshot(self) -> dict:
        snap = {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": [
                {"le": edge, "count": count} for edge, count in self.bucket_counts()
            ],
        }
        if self._samples is not None:
            snap["samples"] = list(self._samples)
        return snap

    @classmethod
    def from_snapshot(
        cls, name: str, snap: dict, description: str = ""
    ) -> "Histogram":
        """Rebuild a histogram from its :meth:`snapshot` dict.

        Percentiles of the round-tripped instrument match the original:
        exactly when the snapshot carried the full sample set, and to the
        same bucket interpolation otherwise.
        """
        if snap.get("type") != cls.kind:
            raise ValueError(f"not a histogram snapshot: {snap.get('type')!r}")
        buckets = snap.get("buckets", [])
        edges = [b["le"] for b in buckets if b.get("le") is not None]
        if not edges:
            raise ValueError("snapshot has no bucket edges")
        samples = snap.get("samples")
        hist = cls(
            name,
            buckets=edges,
            description=description,
            sample_capacity=len(samples) if samples is not None else 0,
        )
        hist._counts = [int(b.get("count", 0)) for b in buckets]
        if len(hist._counts) != len(edges) + 1:
            hist._counts += [0] * (len(edges) + 1 - len(hist._counts))
        hist._count = int(snap.get("count", 0))
        hist._sum = float(snap.get("sum", 0.0))
        hist._min = snap.get("min")
        hist._max = snap.get("max")
        hist._samples = [float(v) for v in samples] if samples is not None else None
        return hist


class Series:
    """Bounded append-only time series — per-step loss curves and the like.

    Keeps the most recent ``capacity`` points as ``(index, value)`` pairs;
    the index is the global observation number, so a truncated series still
    shows *where* in the run its points came from.
    """

    kind = "series"

    def __init__(self, name: str, capacity: int = 4096, description: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.description = description
        self.capacity = capacity
        self._lock = threading.Lock()
        self._points: List[Tuple[int, float]] = []
        self._next_index = 0

    def append(self, value: float) -> None:
        with self._lock:
            self._points.append((self._next_index, float(value)))
            self._next_index += 1
            if len(self._points) > self.capacity:
                del self._points[0]

    @property
    def count(self) -> int:
        return self._next_index

    def points(self) -> List[Tuple[int, float]]:
        with self._lock:
            return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self.points()]

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self._next_index,
            "points": [[i, v] for i, v in self.points()],
        }


class MetricsRegistry:
    """Named collection of instruments with get-or-create semantics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, description), "counter")

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, description), "gauge")

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        description: str = "",
        sample_capacity: int = 2048,
    ) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(name, buckets, description, sample_capacity),
            "histogram",
        )

    def series(
        self, name: str, capacity: int = 4096, description: str = ""
    ) -> Series:
        return self._get_or_create(
            name, lambda: Series(name, capacity, description), "series"
        )

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict view of every instrument, keyed by name."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.snapshot() for name, inst in sorted(instruments.items())}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


class _NullInstrument:
    """No-op stand-in used when telemetry is disabled."""

    kind = "null"
    name = "null"
    description = ""
    value = None
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        # Matches an empty Histogram: 0.0, never NaN.
        return 0.0

    def append(self, value: float) -> None:
        pass

    def points(self) -> list:
        return []

    def values(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments and records nothing."""

    def _get_or_create(self, name, factory, kind):
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, dict]:
        return {}


NULL_REGISTRY = NullRegistry()
