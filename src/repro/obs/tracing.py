"""Span tracing: nested, thread-safe, wall-clock timed regions.

A :class:`Tracer` hands out :class:`Span` context managers::

    with tracer.span("tuner.tune", shape=str(shape)) as sp:
        ...
        sp.set_attribute("candidates", n)

Spans nest per thread (the enclosing span becomes the parent), carry
key-value attributes, and are timed with ``time.perf_counter`` against the
tracer's epoch so all spans of one process share a timebase.  Finished
spans accumulate in a bounded buffer; exporters (``repro.obs.export``)
render them as JSONL or Chrome-trace JSON viewable in Perfetto /
``chrome://tracing``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed region.  ``start_s``/``end_s`` are seconds since the
    tracer's epoch; ``end_s`` is ``None`` while the span is open."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    start_s: float
    end_s: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.end_s - self.start_s if self.end_s is not None else None,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Produces nested spans and buffers the finished ones.

    Parameters
    ----------
    max_spans:
        Bound on the finished-span buffer (oldest dropped first), so
        always-on tracing cannot grow memory without limit.
    """

    def __init__(self, max_spans: int = 100_000):
        self.epoch_perf = time.perf_counter()
        self.epoch_unix = time.time()
        self._ids = itertools.count(1)
        self._finished: deque = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- internals ------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _now(self) -> float:
        return time.perf_counter() - self.epoch_perf

    # -- public API -----------------------------------------------------
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of this thread's current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            thread_id=threading.get_ident(),
            start_s=self._now(),
            attributes=dict(attributes),
        )
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_s = self._now()
            stack.pop()
            with self._lock:
                self._finished.append(sp)

    def finished_spans(self) -> List[Span]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __len__(self) -> int:
        return len(self._finished)


class _NullSpan:
    """Shared no-op span handed out by :class:`NullTracer`."""

    name = "null"
    span_id = 0
    parent_id = None
    thread_id = 0
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: Dict[str, object] = {}

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Tracer that records nothing; ``span()`` costs one attribute lookup."""

    def __init__(self):
        super().__init__(max_spans=1)

    def span(self, name: str, **attributes) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def current_span(self) -> None:
        return None


NULL_TRACER = NullTracer()
