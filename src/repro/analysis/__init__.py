"""Analysis utilities: FLOP accounting, rooflines, and result reporting."""

from .flop_analysis import (
    FlopPoint,
    gemm_total_ops,
    sweep_centroid_count,
    sweep_sub_vector_length,
)
from .error_analysis import ErrorProbe, LayerErrorReport, worst_layers
from .reporting import format_table, geomean, normalize, speedups
from .roofline_analysis import (
    CPU_MEM_BW_GBPS,
    CPU_PEAK_GOPS,
    RooflinePoint,
    lut_roofline_points,
    traffic_breakdown,
)

__all__ = [
    "FlopPoint",
    "sweep_sub_vector_length",
    "sweep_centroid_count",
    "gemm_total_ops",
    "RooflinePoint",
    "lut_roofline_points",
    "traffic_breakdown",
    "CPU_PEAK_GOPS",
    "CPU_MEM_BW_GBPS",
    "geomean",
    "format_table",
    "normalize",
    "speedups",
    "ErrorProbe",
    "LayerErrorReport",
    "worst_layers",
]
