"""Computation-reduction analysis (paper Fig. 3).

Reproduces the two sweeps of Fig. 3 at N = H = F = 1024: the op breakdown
(add vs multiply) as the sub-vector length V grows with CT = 16, and as the
centroid count CT shrinks with V = 4, along with the FLOP-reduction line
(3.66x–18.29x over GEMM; multiplications only 2.9%–14.3% of LUT-NN ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.analytics import flop_reduction, gemm_ops, lutnn_ops
from ..core.codebook import LUTShape


@dataclass(frozen=True)
class FlopPoint:
    """One bar+line point of Fig. 3."""

    v: int
    ct: int
    additions: int
    multiplications: int
    reduction_over_gemm: float
    multiplication_fraction: float


def _point(n: int, h: int, f: int, v: int, ct: int) -> FlopPoint:
    shape = LUTShape(n=n, h=h, f=f, v=v, ct=ct)
    ops = lutnn_ops(shape)
    return FlopPoint(
        v=v,
        ct=ct,
        additions=ops.additions,
        multiplications=ops.multiplications,
        reduction_over_gemm=flop_reduction(shape),
        multiplication_fraction=ops.multiplication_fraction,
    )


def sweep_sub_vector_length(
    vs: Sequence[int] = (2, 4, 8, 16),
    ct: int = 16,
    n: int = 1024,
    h: int = 1024,
    f: int = 1024,
) -> List[FlopPoint]:
    """Left half of Fig. 3: V sweep at CT = 16."""
    return [_point(n, h, f, v, ct) for v in vs]


def sweep_centroid_count(
    cts: Sequence[int] = (64, 32, 16, 8),
    v: int = 4,
    n: int = 1024,
    h: int = 1024,
    f: int = 1024,
) -> List[FlopPoint]:
    """Right half of Fig. 3: CT sweep at V = 4."""
    return [_point(n, h, f, v, ct) for ct in cts]


def gemm_total_ops(n: int = 1024, h: int = 1024, f: int = 1024) -> int:
    return gemm_ops(n, h, f).total
