"""Result aggregation and plain-text table rendering for benches/examples."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Express ``values`` relative to ``values[baseline_key]``."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing")
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {k: v / base for k, v in values.items()}


def speedups(latencies: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Speedup of each entry over the baseline (baseline_time / entry_time)."""
    if baseline_key not in latencies:
        raise KeyError(f"baseline {baseline_key!r} missing")
    base = latencies[baseline_key]
    return {k: base / v for k, v in latencies.items()}
