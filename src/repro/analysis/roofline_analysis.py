"""Roofline analysis of LUT kernels (paper Fig. 4).

The paper converts the FC layers of BERT-base/large and ViT-huge to LUT-NN
(Q/K/V fused, INT8 LUTs, batch 64, seq 512) and measures arithmetic
intensity on a dual Xeon 4210 with Intel Advisor, finding every LUT operator
at 0.204–0.288 ops/byte — deep in the memory-bound region of a CPU whose
peak is 795.11 GOPS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.analytics import lut_arithmetic_intensity, lut_kernel_bytes, lut_storage_bytes
from ..core.codebook import LUTShape
from ..workloads.configs import TransformerConfig

#: Peak CPU throughput measured by the paper's Intel Advisor run (Fig. 4).
CPU_PEAK_GOPS = 795.11

#: Sustained memory bandwidth of the dual Xeon 4210 (4 DDR4 channels).
CPU_MEM_BW_GBPS = 85.0


@dataclass(frozen=True)
class RooflinePoint:
    """One operator on the roofline plot."""

    operator: str
    model: str
    arithmetic_intensity: float  # ops / byte
    attainable_gops: float
    memory_bound: bool


def lut_roofline_points(
    config: TransformerConfig, v: int = 2, ct: int = 16
) -> List[RooflinePoint]:
    """Roofline points of the four LUT operators of ``config``.

    Uses INT8 LUT entries and byte indices, matching the paper's deployed
    configuration for this analysis.
    """
    ridge = CPU_PEAK_GOPS / CPU_MEM_BW_GBPS  # ops/byte where roofs meet
    points = []
    n = config.tokens
    for name, h, f in config.linear_layer_shapes():
        shape = LUTShape(n=n, h=h, f=f, v=v, ct=ct)
        intensity = lut_arithmetic_intensity(shape)
        attainable = min(CPU_PEAK_GOPS, intensity * CPU_MEM_BW_GBPS)
        points.append(
            RooflinePoint(
                operator=name,
                model=config.name,
                arithmetic_intensity=intensity,
                attainable_gops=attainable,
                memory_bound=intensity < ridge,
            )
        )
    return points


def traffic_breakdown(shape: LUTShape) -> dict:
    """Bytes moved by one LUT operator, by source."""
    return {
        "index": shape.index_elements,
        "gathered_lut": shape.n * shape.cb * shape.f * 4,
        "output": 2 * shape.output_elements * 4,
        "activations": shape.n * shape.h * 4,
        "storage_footprint": lut_storage_bytes(shape),
        "total_traffic": lut_kernel_bytes(shape),
    }
