"""Per-layer approximation-error diagnostics for converted models.

LUT-NN's only approximation is replacing activation sub-vectors with their
nearest centroids; everything downstream is exact.  When a converted model
loses accuracy, the question is *which layer's* codebooks fail to represent
its activations.  This module measures, per ``LUTLinear`` layer on real
batches:

* activation reconstruction error ``||A - H(A)|| / ||A||``;
* output error ``||A W - H(A) W|| / ||A W||`` (what the reconstruction
  loss of paper Eq. 1 penalizes);
* codebook utilization (fraction of centroids ever selected) — dead
  centroids indicate failed clustering or calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.ccs import closest_centroid_search, hard_replace
from ..core.codebook import Codebooks
from ..core.conversion import lut_layers
from ..nn.module import Module


@dataclass(frozen=True)
class LayerErrorReport:
    """Approximation diagnostics of one converted layer."""

    name: str
    activation_error: float  # relative L2 of A vs H(A)
    output_error: float  # relative L2 of AW vs H(A)W
    codebook_utilization: float  # selected centroids / total centroids
    rows_measured: int


def _relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    denom = np.linalg.norm(exact)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(approx - exact) / denom)


class ErrorProbe:
    """Collect per-layer inputs during forwards, then score them."""

    def __init__(self, model: Module, max_rows: int = 4096):
        self.model = model
        self.max_rows = max_rows
        self._records: Dict[str, List[np.ndarray]] = {}

    def run(self, batches) -> List[LayerErrorReport]:
        """Feed ``batches`` (model inputs) and report per-layer errors."""
        layers = lut_layers(self.model)
        if not layers:
            raise ValueError("model has no LUTLinear layers to probe")
        self._records = {name: [] for name, _ in layers}

        originals = {}
        try:
            for name, layer in layers:
                originals[name] = layer.forward

                def wrapped(x, _orig=layer.forward, _name=name, _layer=layer):
                    data = x.data if hasattr(x, "data") else np.asarray(x)
                    flat = data.reshape(-1, _layer.in_features)
                    stored = sum(r.shape[0] for r in self._records[_name])
                    room = self.max_rows - stored
                    if room > 0:
                        self._records[_name].append(flat[:room].copy())
                    return _orig(x)

                layer.forward = wrapped
            for batch in batches:
                if isinstance(batch, tuple):
                    self.model(batch[0])
                else:
                    self.model(batch)
        finally:
            for name, layer in layers:
                if "forward" in layer.__dict__:
                    del layer.__dict__["forward"]

        reports = []
        for name, layer in layers:
            chunks = self._records[name]
            if not chunks:
                raise RuntimeError(f"no activations reached layer {name!r}")
            activations = np.concatenate(chunks, axis=0)
            codebooks = Codebooks(layer.centroids.data)
            replaced = hard_replace(activations, codebooks)
            weight = layer.weight.data
            indices = closest_centroid_search(activations, codebooks)
            used = np.zeros((codebooks.cb, codebooks.ct), dtype=bool)
            used[np.arange(codebooks.cb)[None, :], indices] = True
            reports.append(
                LayerErrorReport(
                    name=name,
                    activation_error=_relative_error(replaced, activations),
                    output_error=_relative_error(
                        replaced @ weight, activations @ weight
                    ),
                    codebook_utilization=float(used.mean()),
                    rows_measured=activations.shape[0],
                )
            )
        return reports


def worst_layers(
    reports: List[LayerErrorReport], k: int = 3
) -> List[LayerErrorReport]:
    """The ``k`` layers with the highest output error."""
    return sorted(reports, key=lambda r: r.output_error, reverse=True)[:k]
