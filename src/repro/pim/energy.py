"""Energy model for DRAM-PIM systems (paper Fig. 10-(b)).

The paper measures CPU energy with Intel RAPL and estimates PIM-DIMM energy
from the dpu-diag static power (~13.92 W/DIMM @ 350 MHz), noting that without
DVFS the static figure is close to the dynamic draw.  Accordingly the model
here is ``energy = sum(component_power x busy_time)`` with all powers taken
from :mod:`repro.pim.platforms` and :mod:`repro.baselines.roofline`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.roofline import RooflineDevice
from .platforms import PIMPlatform


@dataclass(frozen=True)
class EnergyReport:
    """Joules consumed by each component during one inference."""

    host_j: float
    pim_j: float

    @property
    def total_j(self) -> float:
        return self.host_j + self.pim_j


def pim_system_energy(
    platform: PIMPlatform, host_busy_s: float, pim_busy_s: float
) -> EnergyReport:
    """Energy of a PIM-DL / PIM-offload run on ``platform``.

    PIM modules draw (near-)constant power for the full makespan — they lack
    DVFS — while the host is charged only for its busy time.
    """
    makespan = host_busy_s + pim_busy_s
    return EnergyReport(
        host_j=platform.host_power_w * host_busy_s,
        pim_j=platform.pim_power_w * makespan,
    )


def host_only_energy(device: RooflineDevice, busy_s: float) -> EnergyReport:
    """Energy of a pure CPU/GPU inference run."""
    return EnergyReport(host_j=device.power_w * busy_s, pim_j=0.0)
