"""Commodity DRAM-PIM platform descriptions (paper Tables 1 and 3, Fig. 7).

Every hardware constant used anywhere in the repository lives here.  Values
are taken from the paper where stated (PE counts, peak bandwidth/throughput,
frequencies, buffer sizes, powers) and from the UPMEM benchmarking study the
paper cites [Gomez-Luna et al., 33] for the transfer-pattern-dependent
host<->PIM bandwidths and the on-chip access-size effects.

The architecture abstraction matches Fig. 7: a host processor drives one or
more PIM modules; each module holds distributed computation nodes (PE + local
memory bank); PEs in a rank share the external data bus; there is no direct
inter-PE datapath (limitation L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class TransferBandwidth:
    """Host<->PIM bandwidth for one transfer pattern.

    Two effects shape the achieved rate, both measured for UPMEM in [33]
    and referenced by the paper (Sections 5.2, 6.5):

    * a fixed ``setup_latency_s`` per burst, and
    * a *per-PE tile-size* dependence — the parallel transfer only reaches
      ``peak_bytes_per_s`` when each PE's buffer is large (>= several KB);
      tiny per-PE tiles collapse the bandwidth.  Modeled as
      ``peak * tile / (tile + tile_knee_bytes)``.

    ``tile_knee_bytes = 0`` disables the second effect.
    """

    peak_bytes_per_s: float
    setup_latency_s: float
    tile_knee_bytes: float = 0.0

    def rate(self, tile_bytes: Optional[float] = None) -> float:
        """Achievable bytes/s given the per-PE tile size."""
        if not self.tile_knee_bytes or tile_bytes is None:
            return self.peak_bytes_per_s
        tile_bytes = max(tile_bytes, 1.0)
        return self.peak_bytes_per_s * tile_bytes / (tile_bytes + self.tile_knee_bytes)

    def latency(self, size_bytes: float, tile_bytes: Optional[float] = None) -> float:
        if size_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if size_bytes == 0:
            return 0.0
        return self.setup_latency_s + size_bytes / self.rate(tile_bytes)

    def effective_bandwidth(
        self, size_bytes: float, tile_bytes: Optional[float] = None
    ) -> float:
        """Achieved bytes/s for a transfer of ``size_bytes``."""
        if size_bytes <= 0:
            return 0.0
        return size_bytes / self.latency(size_bytes, tile_bytes)


@dataclass(frozen=True)
class LocalMemory:
    """PE-local memory system (e.g. UPMEM's MRAM bank + WRAM scratchpad).

    ``access_bytes`` below the DMA-efficiency knee waste setup cycles; the
    alpha-beta form mirrors the measured MRAM->WRAM curves of [33] where
    8-byte accesses reach only a small fraction of the streaming bandwidth.
    """

    peak_bytes_per_s: float
    access_setup_s: float
    buffer_bytes: int  # on-chip scratchpad (WRAM / register file) per PE

    def latency(self, total_bytes: float, access_bytes: float) -> float:
        """Time to move ``total_bytes`` in chunks of ``access_bytes``."""
        if total_bytes <= 0:
            return 0.0
        access_bytes = max(min(access_bytes, total_bytes), 1.0)
        accesses = total_bytes / access_bytes
        return accesses * self.access_setup_s + total_bytes / self.peak_bytes_per_s


@dataclass(frozen=True)
class PECompute:
    """Per-PE compute capability.

    UPMEM DPUs have no hardware multiplier — an integer multiply is a
    multi-cycle software sequence — which is precisely why LUT-NN's
    adder-dominated reduction fits them (paper Sections 2.2, 7).
    """

    frequency_hz: float
    add_cycles: float  # cycles per scalar add (incl. pipeline effects)
    mult_cycles: float  # cycles per scalar multiply
    lookup_overhead_cycles: float  # address computation per table lookup
    simd_lanes: int = 1  # vector width (HBM-PIM/AiM MAC units)

    def add_time(self, count: float) -> float:
        return count * self.add_cycles / (self.frequency_hz * self.simd_lanes)

    def mult_time(self, count: float) -> float:
        return count * self.mult_cycles / (self.frequency_hz * self.simd_lanes)

    def lookup_time(self, count: float) -> float:
        return count * self.lookup_overhead_cycles / self.frequency_hz


@dataclass(frozen=True)
class PIMPlatform:
    """A complete DRAM-PIM system in the Fig. 7 abstraction."""

    name: str
    num_pes: int
    ranks: int  # PE groups sharing one external bus segment
    compute: PECompute
    local_memory: LocalMemory
    #: Host->PIM bandwidth when the same tile goes to many PEs (cache-friendly).
    broadcast: TransferBandwidth
    #: Host->PIM bandwidth for distinct per-PE tiles.
    scatter: TransferBandwidth
    #: PIM->host result collection bandwidth.
    gather: TransferBandwidth
    #: Per-kernel-launch host overhead (driver + binary dispatch).
    kernel_launch_s: float
    #: Static + dynamic power draw of all PIM modules (W).
    pim_power_w: float
    #: Power draw of the (wimpy) host driving the modules (W).
    host_power_w: float
    #: Datatype of GEMM operands on this platform, bytes (FP16/BF16 = 2).
    gemm_dtype_bytes: int = 2
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def pes_per_rank(self) -> int:
        return self.num_pes // self.ranks

    @property
    def peak_add_throughput(self) -> float:
        """Aggregate scalar adds/s across all PEs."""
        return (
            self.num_pes
            * self.compute.frequency_hz
            * self.compute.simd_lanes
            / self.compute.add_cycles
        )


def upmem_pim_dimm() -> PIMPlatform:
    """UPMEM DDR4 PIM-DIMM platform of paper Table 3 (8 DIMMs, 1024 PEs).

    * 43.8 GOP/s per DIMM peak (Table 1) -> ~0.34 GOP/s per DPU at 350 MHz.
    * Integer multiply is software (mul_step): ~10 cycles.
    * 64 KB WRAM per DPU; MRAM->WRAM streaming ~620 MB/s with high per-DMA
      setup cost at small access sizes [33].
    * Host CPU<->DIMM: broadcast ~16 GB/s aggregate, scatter ~6 GB/s,
      gather ~4.7 GB/s [33].
    * 13.92 W per DIMM at 350 MHz (paper Section 6.3) x 8 DIMMs.
    """
    return PIMPlatform(
        name="UPMEM PIM-DIMM",
        num_pes=1024,
        ranks=16,  # 8 DIMMs x 2 ranks
        compute=PECompute(
            frequency_hz=350e6,
            # Effective cycles per table-lookup accumulate: load the INT8
            # entry from WRAM, sign-extend, add into the INT32 accumulator,
            # store — ~4 cycles on the in-order 11-stage DPU pipeline.
            add_cycles=4.0,
            mult_cycles=10.0,
            lookup_overhead_cycles=4.0,
        ),
        local_memory=LocalMemory(
            peak_bytes_per_s=620e6,
            access_setup_s=0.1e-6,  # DMA setup; 8-byte loads hit ~5% of peak
            buffer_bytes=64 * 1024,
        ),
        broadcast=TransferBandwidth(
            peak_bytes_per_s=16e9, setup_latency_s=20e-6, tile_knee_bytes=8192
        ),
        scatter=TransferBandwidth(
            peak_bytes_per_s=6e9, setup_latency_s=20e-6, tile_knee_bytes=8192
        ),
        gather=TransferBandwidth(
            peak_bytes_per_s=4.7e9, setup_latency_s=20e-6, tile_knee_bytes=8192
        ),
        kernel_launch_s=60e-6,
        pim_power_w=8 * 13.92,
        host_power_w=200.0,  # dual Xeon 4210 host (2 x 85 W TDP + DRAM)
        gemm_dtype_bytes=4,  # UPMEM GEMM baseline runs FP32 in software
        extras={"fp32_mac_cycles": 55.0},
    )


def hbm_pim() -> PIMPlatform:
    """Samsung HBM-PIM platform of Table 3 (4 cubes, 512 PEs, simulated).

    * 2 TB/s bandwidth and 1.2 TFLOPS per cube (Table 1); 4 cubes.
    * FP16 MAC units, 16 SIMD lanes at ~1.2 GHz per PE pair.
    * Dataflow optimized for flat (GEMV-like) matrices — batched GEMM is
      issued row-by-row, which PIM-DL's Fig. 14 exploits.
    """
    return PIMPlatform(
        name="Samsung HBM-PIM",
        num_pes=512,
        ranks=4,
        compute=PECompute(
            frequency_hz=1.2e9,
            add_cycles=1.0,
            mult_cycles=1.0,
            lookup_overhead_cycles=2.0,
            # 16 physical FP16 lanes, but the aggregate sustained rate is
            # bounded by the paper's 4.8 TFLOPS total (= 2.4 T MAC/s):
            # 512 PEs x 1.2 GHz x 4 effective lanes = 2.46 T ops/s.
            simd_lanes=4,
        ),
        local_memory=LocalMemory(
            # 2 TB/s per cube x 4 cubes spread over 512 PEs.
            peak_bytes_per_s=4 * 2e12 / 512,
            access_setup_s=5e-9,
            buffer_bytes=32 * 1024,
        ),
        broadcast=TransferBandwidth(peak_bytes_per_s=350e9, setup_latency_s=5e-6),
        scatter=TransferBandwidth(peak_bytes_per_s=200e9, setup_latency_s=5e-6),
        gather=TransferBandwidth(peak_bytes_per_s=180e9, setup_latency_s=5e-6),
        kernel_launch_s=10e-6,
        pim_power_w=4 * 25.0,
        host_power_w=60.0,  # NVIDIA A2 host (Table 3)
        gemm_dtype_bytes=2,  # FP16
        extras={
            "gemv_command_overhead_s": 2.0e-6,
            # Per-row host-driver round trip when a batched GEMM is issued
            # as a GEMV sequence (the dataflow of paper Section 6.7).
            "gemv_row_overhead_s": 30e-6,
            # Fraction of aggregate bank bandwidth one GEMV engages: a
            # layer's weights are resident in a single cube (1/4 of the
            # system), and row activation / tCCD gaps trim the stream to
            # ~36% of that cube's peak.
            "gemv_bandwidth_efficiency": 0.09,
            # LUTs are model weights resident in the PIM banks.
            "lut_resident": 1.0,
        },
    )


def aim() -> PIMPlatform:
    """SK-Hynix AiM platform of Table 3 (16 GDDR6 chips, 512 PEs, simulated).

    * 1 TB/s and ~1 TFLOPS per chip (Table 1); 16 chips.
    * BF16 MACs running near-bank; higher aggregate compute than HBM-PIM
      (16 vs 4.8 TFLOPS per paper Section 6.7).
    """
    return PIMPlatform(
        name="SK-Hynix AiM",
        num_pes=512,
        ranks=16,
        compute=PECompute(
            frequency_hz=1.0e9,
            add_cycles=1.0,
            mult_cycles=1.0,
            lookup_overhead_cycles=2.0,
            # Effective lanes sized to the paper's 16 TFLOPS aggregate
            # (= 8 T MAC/s, Section 6.7): 512 PEs x 1 GHz x 16 = 8.2 T ops/s.
            simd_lanes=16,
        ),
        local_memory=LocalMemory(
            peak_bytes_per_s=16 * 1e12 / 512,
            access_setup_s=4e-9,
            buffer_bytes=32 * 1024,
        ),
        broadcast=TransferBandwidth(peak_bytes_per_s=450e9, setup_latency_s=4e-6),
        scatter=TransferBandwidth(peak_bytes_per_s=250e9, setup_latency_s=4e-6),
        gather=TransferBandwidth(peak_bytes_per_s=220e9, setup_latency_s=4e-6),
        kernel_launch_s=8e-6,
        pim_power_w=16 * 10.0,
        host_power_w=60.0,  # NVIDIA A2 host (Table 3)
        gemm_dtype_bytes=2,  # BF16
        extras={
            "gemv_command_overhead_s": 1.5e-6,
            "gemv_row_overhead_s": 14e-6,
            # Same single-device GEMV engagement effect as HBM-PIM: one
            # GEMV streams from the chips holding that layer's weights.
            "gemv_bandwidth_efficiency": 0.10,
            "lut_resident": 1.0,
        },
    )


PLATFORMS = {
    "upmem": upmem_pim_dimm,
    "hbm-pim": hbm_pim,
    "aim": aim,
}


def get_platform(name: str) -> PIMPlatform:
    """Look up a platform factory by short name: upmem | hbm-pim | aim."""
    key = name.lower()
    if key not in PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}")
    return PLATFORMS[key]()
