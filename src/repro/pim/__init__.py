"""DRAM-PIM substrate: platform models, kernels, and the event simulator."""

from .energy import EnergyReport, host_only_energy, pim_system_energy
from .gemm_kernels import (
    DEFAULT_FP32_MAC_CYCLES,
    GEMMPIMBreakdown,
    gemm_on_pim,
    gemv_sequence_on_pim,
    linear_layer_on_pim,
)
from .placement import (
    EXPERT_PLACERS,
    balanced_placement,
    load_imbalance,
    makespan,
    place_experts,
    rank_loads,
    round_robin_placement,
)
from .platforms import (
    PLATFORMS,
    LocalMemory,
    PECompute,
    PIMPlatform,
    TransferBandwidth,
    aim,
    get_platform,
    hbm_pim,
    upmem_pim_dimm,
)
from .simulator import (
    ALIGN_BYTES,
    LOOP_OVERHEAD_CYCLES,
    PIMSimulator,
    SimulationReport,
)
from .trace import KernelTrace, TraceEvent, trace_kernel

__all__ = [
    "PIMPlatform",
    "PECompute",
    "LocalMemory",
    "TransferBandwidth",
    "upmem_pim_dimm",
    "hbm_pim",
    "aim",
    "get_platform",
    "PLATFORMS",
    "PIMSimulator",
    "SimulationReport",
    "ALIGN_BYTES",
    "LOOP_OVERHEAD_CYCLES",
    "KernelTrace",
    "TraceEvent",
    "trace_kernel",
    "gemm_on_pim",
    "gemv_sequence_on_pim",
    "linear_layer_on_pim",
    "GEMMPIMBreakdown",
    "DEFAULT_FP32_MAC_CYCLES",
    "EnergyReport",
    "pim_system_energy",
    "host_only_energy",
    "EXPERT_PLACERS",
    "round_robin_placement",
    "balanced_placement",
    "place_experts",
    "rank_loads",
    "makespan",
    "load_imbalance",
]
