"""GEMM/GEMV execution models on DRAM-PIMs — the paper's PIM baselines.

"Normal" DNN inference on a DRAM-PIM offloads the linear layers as dense
GEMMs.  This is exactly what PIM-DL's headline numbers are measured against
(22.6x–37.1x, paper Abstract):

* On **UPMEM**, PEs have no hardware FPU or multiplier; an FP32 MAC costs
  tens of cycles of software emulation, so GEMM is brutally compute-bound
  (paper Fig. 10 reports 38–106 s *per layer*).
* On **HBM-PIM / AiM**, the MAC units are fast but the dataflow is built
  for flat, GEMV-like matrices (paper §6.7): a batched GEMM is issued as a
  sequence of per-row GEMV commands with no weight reuse across rows, so
  the full weight matrix streams from the banks for every row.
"""

from __future__ import annotations

from dataclasses import dataclass

from .platforms import PIMPlatform

#: Software-emulated FP32 MAC cost on a multiplier-less RISC PE (cycles).
DEFAULT_FP32_MAC_CYCLES = 55.0


@dataclass(frozen=True)
class GEMMPIMBreakdown:
    """Latency components of one GEMM offloaded to PIM (seconds)."""

    host_transfer: float
    compute: float
    local_memory: float
    gather: float
    launch: float

    @property
    def total(self) -> float:
        return (
            self.host_transfer
            + max(self.compute, self.local_memory)
            + self.gather
            + self.launch
        )


def gemm_on_pim(
    platform: PIMPlatform, n: int, h: int, f: int, dtype_bytes: int = None
) -> GEMMPIMBreakdown:
    """Latency of a dense (N,H)x(H,F) GEMM offloaded across all PEs.

    The output is partitioned over PEs; each PE streams its activation and
    weight tiles from its local bank and runs MACs at the PE's (possibly
    software-emulated) rate.  ``extras["fp32_mac_cycles"]`` marks platforms
    without hardware FP MACs.
    """
    if min(n, h, f) <= 0:
        raise ValueError("GEMM dims must be positive")
    if dtype_bytes is None:
        dtype_bytes = platform.gemm_dtype_bytes
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    num_pes = platform.num_pes
    compute = platform.compute

    macs = float(n) * h * f
    mac_cycles = platform.extras.get(
        "fp32_mac_cycles", compute.mult_cycles + compute.add_cycles
    )
    t_compute = (macs / num_pes) * mac_cycles / (compute.frequency_hz * compute.simd_lanes)

    # Each PE streams an activation tile plus its weight tile once per use.
    per_pe_bytes = (n * h / num_pes + h * f / num_pes) * dtype_bytes
    t_local = platform.local_memory.latency(per_pe_bytes, 2048)

    # Host side: scatter activations + weights, gather results (Eq. 4 form).
    in_bytes = (n * h + h * f) * dtype_bytes
    out_bytes = n * f * dtype_bytes
    t_transfer = platform.scatter.latency(in_bytes, tile_bytes=in_bytes / num_pes)
    t_gather = platform.gather.latency(out_bytes, tile_bytes=out_bytes / num_pes)

    return GEMMPIMBreakdown(
        host_transfer=t_transfer,
        compute=t_compute,
        local_memory=t_local,
        gather=t_gather,
        launch=platform.kernel_launch_s,
    )


def gemv_sequence_on_pim(
    platform: PIMPlatform, n: int, h: int, f: int, dtype_bytes: int = None
) -> GEMMPIMBreakdown:
    """Batched GEMM issued as N per-row GEMV commands (HBM-PIM/AiM dataflow).

    Every row re-streams the (H, F) weight matrix from the banks — the "no
    weight reuse across batch" behaviour that makes larger batches
    *unfriendly* to these products (paper Fig. 14's speedup grows with
    batch size for exactly this reason).
    """
    if min(n, h, f) <= 0:
        raise ValueError("GEMV dims must be positive")
    if dtype_bytes is None:
        dtype_bytes = platform.gemm_dtype_bytes
    if dtype_bytes <= 0:
        raise ValueError("dtype_bytes must be positive")
    compute = platform.compute

    efficiency = platform.extras.get("gemv_bandwidth_efficiency", 1.0)
    agg_bw = platform.local_memory.peak_bytes_per_s * platform.num_pes * efficiency
    agg_flops = (
        platform.num_pes * compute.frequency_hz * compute.simd_lanes / compute.mult_cycles
    )
    weight_bytes = float(h) * f * dtype_bytes
    row_flops = 2.0 * h * f
    command_overhead = platform.extras.get("gemv_command_overhead_s", 1e-6)
    row_overhead = platform.extras.get("gemv_row_overhead_s", 0.0)
    t_row = (
        max(weight_bytes / agg_bw, row_flops / agg_flops)
        + command_overhead
        + row_overhead
    )
    t_compute = n * t_row

    in_bytes = n * h * dtype_bytes
    out_bytes = n * f * dtype_bytes
    return GEMMPIMBreakdown(
        host_transfer=platform.scatter.latency(in_bytes),
        compute=t_compute,
        local_memory=0.0,  # folded into the per-row streaming term
        gather=platform.gather.latency(out_bytes),
        launch=platform.kernel_launch_s,
    )


def linear_layer_on_pim(
    platform: PIMPlatform, n: int, h: int, f: int, dtype_bytes: int = None
) -> GEMMPIMBreakdown:
    """Dispatch to the platform's native GEMM execution style."""
    if "gemv_command_overhead_s" in platform.extras:
        return gemv_sequence_on_pim(platform, n, h, f, dtype_bytes)
    return gemm_on_pim(platform, n, h, f, dtype_bytes)
