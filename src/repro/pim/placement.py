"""Expert-to-rank placement for MoE layers on a DRAM-PIM system.

Each expert's LUT tables live on one PIM rank (replicating tables across
ranks would multiply the already-dominant LUT capacity cost), so the MoE
layer finishes when the most-loaded rank finishes: the layer latency is
the *makespan* ``max over ranks of (sum of assigned expert work)``.  With
skewed token-to-expert routing this is a classic multiprocessor
scheduling problem, and placement is the lever.

Two strategies:

* ``round-robin`` — expert ``e`` on rank ``e % num_ranks``; the naive
  baseline, oblivious to load.
* ``balanced`` — greedy LPT (longest processing time first: sort experts
  by load descending, always assign to the currently least-loaded rank).
  LPT is the textbook 4/3-approximation for makespan; as a guard against
  its rare pathological inputs the result is compared with round-robin on
  the same loads and the better placement is returned, so balanced is
  never worse than the baseline by construction.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Strategy names accepted by :func:`place_experts`.
EXPERT_PLACERS = ("round-robin", "balanced")


def round_robin_placement(num_experts: int, num_ranks: int) -> Tuple[int, ...]:
    """Expert ``e`` -> rank ``e % num_ranks`` (load-oblivious baseline)."""
    if num_experts is None or num_experts <= 0:
        raise ValueError("num_experts must be positive")
    if num_ranks is None or num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    return tuple(e % num_ranks for e in range(num_experts))


def balanced_placement(
    expert_loads: Sequence[float], num_ranks: int
) -> Tuple[int, ...]:
    """Greedy LPT placement, never worse than round-robin on these loads."""
    if num_ranks is None or num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    loads = np.asarray(expert_loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("expert_loads must be non-empty")
    if (loads < 0).any():
        raise ValueError("expert loads must be non-negative")

    placement = [0] * loads.size
    rank_total = np.zeros(num_ranks)
    # Ties (equal loads) break toward the lower expert index, then the
    # lower rank index — deterministic for a given input.
    for e in sorted(range(loads.size), key=lambda i: (-loads[i], i)):
        rank = int(np.argmin(rank_total))
        placement[e] = rank
        rank_total[rank] += loads[e]
    lpt = tuple(placement)

    rr = round_robin_placement(loads.size, num_ranks)
    if makespan(lpt, loads, num_ranks) <= makespan(rr, loads, num_ranks):
        return lpt
    return rr


def place_experts(
    strategy: str, expert_loads: Sequence[float], num_ranks: int
) -> Tuple[int, ...]:
    """Dispatch on strategy name (see :data:`EXPERT_PLACERS`)."""
    if strategy == "round-robin":
        return round_robin_placement(len(expert_loads), num_ranks)
    if strategy == "balanced":
        return balanced_placement(expert_loads, num_ranks)
    raise ValueError(f"unknown placement strategy {strategy!r}; "
                     f"expected one of {EXPERT_PLACERS}")


def rank_loads(
    placement: Sequence[int], expert_loads: Sequence[float], num_ranks: int
) -> Tuple[float, ...]:
    """Per-rank total load under ``placement`` (length ``num_ranks``)."""
    if num_ranks is None or num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if len(placement) != len(expert_loads):
        raise ValueError("placement and expert_loads must align")
    totals = np.zeros(num_ranks)
    for rank, load in zip(placement, expert_loads):
        if rank < 0 or rank >= num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {num_ranks})")
        totals[rank] += load
    return tuple(float(t) for t in totals)


def makespan(
    placement: Sequence[int], expert_loads: Sequence[float], num_ranks: int
) -> float:
    """Layer completion time: the most-loaded rank's total."""
    return max(rank_loads(placement, expert_loads, num_ranks))


def load_imbalance(loads: Sequence[float]) -> float:
    """``1 - mean/max`` in [0, 1); 0.0 for empty or all-zero loads."""
    values = np.asarray(loads, dtype=np.float64)
    if values.size == 0:
        return 0.0
    peak = values.max()
    if peak <= 0:
        return 0.0
    return float(1.0 - values.mean() / peak)
