"""Event-level simulator of LUT-NN kernels on the DRAM-PIM abstraction.

Where :mod:`repro.mapping.analytical` evaluates paper Eqs. 3–10 in closed
form, this simulator walks the micro-kernel loop nest tile by tile with an
explicit on-chip buffer state, and serializes host<->PIM transfers over the
shared rank buses (limitation L1 of paper §5.1).  Second-order effects the
closed form ignores — per-DMA setup on every tile, 8-byte alignment padding,
per-loop-iteration instruction overhead, zero-initialized first output visits
— make its latency the "measured" reference that paper Fig. 13 compares the
analytical model against (reporting avg 3.44% / max 13.73% error).

The simulator can also execute the kernel *functionally* (producing the
actual output matrix from real index/LUT arrays), which the test suite uses
to check that the distributed dataflow computes exactly what the reference
``lut_lookup`` computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle (resilience uses the sim)
    from ..resilience.faults import FaultInjector

from ..core.codebook import LUTShape
from ..core.lut import lut_lookup
from ..mapping.space import (
    INDEX_BYTES,
    LUT_BYTES,
    OUTPUT_BYTES,
    Mapping,
    is_legal,
    num_pes_used,
)
from ..obs.profiler import PhaseProfile, build_rank_timelines
from .platforms import PIMPlatform

#: Fixed instruction overhead per micro-kernel loop iteration (branching,
#: pointer bumps) — one of the second-order effects absent from Eqs. 6–10.
LOOP_OVERHEAD_CYCLES = 24.0

#: DMA transfers are padded to this granularity (UPMEM requires 8-byte
#: aligned MRAM accesses).
ALIGN_BYTES = 8

#: Beyond this tile count the per-tile event loop is aggregated batch-wise;
#: the costs remain identical, only Python iteration is collapsed.
MAX_EXPLICIT_TILES = 100_000


def _align(size: float) -> float:
    return ALIGN_BYTES * np.ceil(size / ALIGN_BYTES)


@dataclass
class SimulationReport:
    """Timing (and optionally functional) result of one kernel run."""

    shape: LUTShape
    mapping: Mapping
    num_pes: int
    distribution_s: float
    kernel_s: float
    gather_s: float
    launch_s: float
    event_counts: Dict[str, int] = field(default_factory=dict)
    output: Optional[np.ndarray] = None
    #: Names of faults injected into this run (empty on the healthy path).
    faults: Tuple[str, ...] = ()
    #: The (possibly corrupted) table the PEs actually read; ``None``
    #: unless a fault injector tampered with the functional execution.
    #: Integrity checks (:func:`repro.kernels.verify_lut`) run against it.
    device_lut: Optional[np.ndarray] = None
    #: Per-phase / per-rank attribution of this run; its phase seconds
    #: partition :attr:`total_s` exactly (see :meth:`bottleneck`).
    profile: Optional[PhaseProfile] = None
    #: Kernel-transfer seconds hidden under reduce by the double-buffered
    #: pipeline (``run(overlap=True)``); 0.0 on the sequential path.
    #: ``kernel_s`` and the profile's ``dma`` phase report *exposed* time,
    #: so phases still partition :attr:`total_s` exactly.
    overlap_hidden_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.distribution_s + self.kernel_s + self.gather_s + self.launch_s

    def bottleneck(self, platform: Optional[PIMPlatform] = None, top_k: int = 3):
        """Attribution roll-up of this run (see :mod:`repro.obs.profiler`)."""
        from ..obs.profiler import attribute_bottleneck

        if self.profile is None:
            raise ValueError("simulation ran without a phase profile")
        return attribute_bottleneck(
            self.profile,
            platform=platform,
            shape=self.shape,
            mapping=self.mapping,
            dma_bytes=self.event_counts.get("dma_bytes"),
            top_k=top_k,
        )


class PIMSimulator:
    """Simulate LUT kernel execution on a :class:`PIMPlatform`."""

    def __init__(self, platform: PIMPlatform):
        self.platform = platform

    # ------------------------------------------------------------------
    # Host <-> PIM distribution
    # ------------------------------------------------------------------
    #: Host-side command issue cost per PE per tensor burst (driver call).
    PER_PE_COMMAND_S = 0.05e-6

    def _distribution_time(self, shape: LUTShape, mapping: Mapping) -> float:
        """Transfer of index and LUT tiles to all PEs.

        The pattern bandwidths in :class:`PIMPlatform` are *system-aggregate*
        figures (as measured in [33]), so replicated per-PE traffic is costed
        against them directly; the simulator adds what the closed form drops:
        8-byte alignment padding, one bus setup per rank burst rather than
        one global setup, and per-PE command issue overhead.
        """
        platform = self.platform
        n_pes = num_pes_used(shape, mapping)
        groups = shape.n // mapping.n_s_tile
        pes_per_group = shape.f // mapping.f_s_tile

        index_bytes = _align(mapping.n_s_tile * shape.cb * INDEX_BYTES)
        lut_bytes = _align(shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES)
        ranks = min(platform.ranks, n_pes)

        index_pattern = platform.broadcast if pes_per_group > 1 else platform.scatter
        lut_pattern = platform.broadcast if groups > 1 else platform.scatter

        time_s = n_pes * index_bytes / index_pattern.rate(index_bytes)
        time_s += n_pes * lut_bytes / lut_pattern.rate(lut_bytes)
        time_s += ranks * (index_pattern.setup_latency_s + lut_pattern.setup_latency_s)
        time_s += 2 * n_pes * self.PER_PE_COMMAND_S
        return time_s

    def _gather_time(self, shape: LUTShape, mapping: Mapping) -> float:
        platform = self.platform
        n_pes = num_pes_used(shape, mapping)
        out_bytes = _align(mapping.n_s_tile * mapping.f_s_tile * OUTPUT_BYTES)
        ranks = min(platform.ranks, n_pes)
        time_s = n_pes * out_bytes / platform.gather.rate(out_bytes)
        time_s += ranks * platform.gather.setup_latency_s
        time_s += n_pes * self.PER_PE_COMMAND_S
        return time_s

    # ------------------------------------------------------------------
    # Per-PE micro kernel
    # ------------------------------------------------------------------
    def _micro_kernel_time(
        self,
        shape: LUTShape,
        mapping: Mapping,
        phases: Optional[Dict[str, float]] = None,
        overlap: bool = False,
    ) -> Tuple[float, Dict[str, int]]:
        """Sequential micro-kernel time (and event counts) for one PE.

        The returned time is always the *sequential* loop-nest walk.  With
        ``overlap=True`` (requires ``phases``), the double-buffered pipeline
        is evaluated over the same per-tile events and the transfer time it
        hides is reported out-of-band as ``phases["overlap_hidden"]`` —
        callers subtract it from the kernel wall clock and the dma phase.
        """
        platform = self.platform
        local = platform.local_memory
        compute = platform.compute

        trips = {
            "n": mapping.n_s_tile // mapping.n_m_tile,
            "f": mapping.f_s_tile // mapping.f_m_tile,
            "cb": shape.cb // mapping.cb_m_tile,
        }
        order = mapping.traversal
        total_tiles = trips["n"] * trips["f"] * trips["cb"]

        counts = {
            "index_loads": 0,
            "output_loads": 0,
            "output_stores": 0,
            "lut_loads": 0,
            "tiles": total_tiles,
        }
        time_s = 0.0

        mtile_index = _align(mapping.n_m_tile * mapping.cb_m_tile * INDEX_BYTES)
        mtile_output = _align(mapping.n_m_tile * mapping.f_m_tile * OUTPUT_BYTES)

        # Static LUT staging happens once, before the loop nest.
        static_stage_cost = 0.0
        static_stage_bytes = 0.0
        if mapping.load_scheme == "static":
            lut_total = shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES
            static_stage_cost = local.latency(_align(lut_total), min(lut_total, 2048))
            static_stage_bytes = _align(lut_total)
            time_s += static_stage_cost
            counts["lut_loads"] += int(np.ceil(lut_total / 2048))

        # Per-tile event costs, applied whenever the resident tile changes.
        index_load_cost = local.latency(mtile_index, mtile_index)
        output_load_cost = local.latency(mtile_output, mtile_output)
        output_store_cost = output_load_cost

        if mapping.load_scheme == "coarse":
            chunk = _align(
                mapping.cb_load_tile * shape.ct * mapping.f_load_tile * LUT_BYTES
            )
            chunks_per_tile = int(
                np.ceil(mapping.cb_m_tile / mapping.cb_load_tile)
                * np.ceil(mapping.f_m_tile / mapping.f_load_tile)
            )
            lut_tile_cost = chunks_per_tile * local.latency(chunk, chunk)
        elif mapping.load_scheme == "fine":
            chunk = _align(mapping.f_load_tile * LUT_BYTES)
            chunks_per_tile = int(
                mapping.n_m_tile
                * mapping.cb_m_tile
                * np.ceil(mapping.f_m_tile / mapping.f_load_tile)
            )
            # Parallel read slots hide part of the per-access setup.
            lut_tile_cost = chunks_per_tile * local.latency(chunk, chunk)
        else:
            chunk = 0.0
            chunks_per_tile = 0
            lut_tile_cost = 0.0

        lookup_per_tile = compute.lookup_time(mapping.n_m_tile * mapping.cb_m_tile)
        if mapping.load_scheme == "fine":
            extra_chunks = max(int(np.ceil(mapping.f_m_tile / mapping.f_load_tile)) - 1, 0)
            lookup_per_tile += compute.lookup_time(
                mapping.n_m_tile * mapping.cb_m_tile * extra_chunks
            )
        reduce_per_tile = compute.add_time(
            mapping.n_m_tile * mapping.cb_m_tile * mapping.f_m_tile
        )
        reduce_per_tile += lookup_per_tile
        loop_overhead = LOOP_OVERHEAD_CYCLES / compute.frequency_hz

        tile_events: Optional[list] = (
            [] if overlap and total_tiles <= MAX_EXPLICIT_TILES else None
        )
        if total_tiles <= MAX_EXPLICIT_TILES:
            time_s += self._walk_loop_nest(
                order,
                trips,
                mapping,
                counts,
                index_load_cost,
                output_load_cost,
                output_store_cost,
                lut_tile_cost,
                chunks_per_tile,
                reduce_per_tile,
                loop_overhead,
                tile_events=tile_events,
            )
        else:
            # Aggregate using the same per-event costs and exact reuse
            # counts; only the Python loop is collapsed.
            time_s += self._aggregate_loop_nest(
                order,
                trips,
                mapping,
                counts,
                index_load_cost,
                output_load_cost,
                output_store_cost,
                lut_tile_cost,
                chunks_per_tile,
                reduce_per_tile,
                loop_overhead,
            )

        if phases is not None:
            # Analytical re-attribution of the accumulated kernel time.  Each
            # component is reconstructed from the exact event counts, and the
            # reduce phase is the residual, so the partition sums to ``time_s``
            # exactly (no float drift against the walk above).
            lut_dma_s = static_stage_cost
            lut_dma_bytes = static_stage_bytes
            if chunks_per_tile:
                visits = counts["lut_loads"] // chunks_per_tile
                lut_dma_s = visits * lut_tile_cost
                lut_dma_bytes = counts["lut_loads"] * chunk
            dma_s = (
                counts["index_loads"] * index_load_cost
                + counts["output_loads"] * output_load_cost
                + counts["output_stores"] * output_store_cost
                + lut_dma_s
            )
            overhead_s = counts["tiles"] * loop_overhead
            lookup_s = counts["tiles"] * lookup_per_tile
            phases["dma"] = dma_s
            phases["lookup"] = lookup_s
            phases["overhead"] = overhead_s
            phases["reduce"] = time_s - dma_s - lookup_s - overhead_s
            counts["dma_bytes"] = int(
                counts["index_loads"] * mtile_index
                + (counts["output_loads"] + counts["output_stores"]) * mtile_output
                + lut_dma_bytes
            )
            if overlap:
                # Double-buffered pipeline over the same per-tile events:
                # the transfer of tile i+1 overlaps the reduce of tile i,
                # each stage bounded by max(transfer, compute); the static
                # LUT staging (fill) and trailing output store (drain) stay
                # exposed.  ``hidden`` = sequential - pipelined, and is
                # strictly less than the dma phase by construction.
                hidden = 0.0
                if tile_events is not None and len(tile_events) > 1:
                    pipelined = tile_events[0][0]
                    for i in range(1, len(tile_events)):
                        pipelined += max(tile_events[i][0], tile_events[i - 1][1])
                    pipelined += tile_events[-1][1]
                    sequential = sum(t + c for t, c in tile_events)
                    hidden = max(sequential - pipelined, 0.0)
                elif tile_events is None and counts["tiles"] > 1:
                    # Aggregate path (>MAX_EXPLICIT_TILES): uniform-tile
                    # closed form, (T-1)/T * min(in-loop transfer, compute).
                    tiles = counts["tiles"]
                    in_loop_transfer = dma_s - static_stage_cost
                    compute_total = tiles * (loop_overhead + reduce_per_tile)
                    hidden = (tiles - 1) / tiles * min(in_loop_transfer, compute_total)
                phases["overlap_hidden"] = hidden
        return time_s, counts

    def _walk_loop_nest(
        self,
        order,
        trips,
        mapping,
        counts,
        index_load_cost,
        output_load_cost,
        output_store_cost,
        lut_tile_cost,
        chunks_per_tile,
        reduce_per_tile,
        loop_overhead,
        tile_events: Optional[list] = None,
    ) -> float:
        """Explicit tile-by-tile walk with resident-tile tags per tensor.

        When ``tile_events`` is a list, it receives one ``(transfer_s,
        compute_s)`` pair per tile for pipeline evaluation; the ``time_s``
        accumulation order is untouched either way, so the sequential total
        stays bit-identical.
        """
        time_s = 0.0
        resident_index: Optional[Tuple[int, int]] = None
        resident_output: Optional[Tuple[int, int]] = None
        resident_lut: Optional[Tuple[int, int]] = None
        first_output_visit: set = set()
        reload_lut = mapping.load_scheme in ("coarse", "fine")

        dims = {"n": 0, "f": 0, "cb": 0}
        d0, d1, d2 = order
        for i0 in range(trips[d0]):
            dims[d0] = i0
            for i1 in range(trips[d1]):
                dims[d1] = i1
                for i2 in range(trips[d2]):
                    dims[d2] = i2
                    time_s += loop_overhead
                    tile_transfer = 0.0

                    index_tag = (dims["n"], dims["cb"])
                    if index_tag != resident_index:
                        time_s += index_load_cost
                        tile_transfer += index_load_cost
                        counts["index_loads"] += 1
                        resident_index = index_tag

                    output_tag = (dims["n"], dims["f"])
                    if output_tag != resident_output:
                        if resident_output is not None:
                            time_s += output_store_cost
                            tile_transfer += output_store_cost
                            counts["output_stores"] += 1
                        if output_tag in first_output_visit:
                            time_s += output_load_cost
                            tile_transfer += output_load_cost
                            counts["output_loads"] += 1
                        else:
                            first_output_visit.add(output_tag)
                        resident_output = output_tag

                    if reload_lut:
                        lut_tag = (dims["cb"], dims["f"])
                        if lut_tag != resident_lut:
                            time_s += lut_tile_cost
                            tile_transfer += lut_tile_cost
                            counts["lut_loads"] += chunks_per_tile
                            resident_lut = lut_tag
                        if mapping.load_scheme == "fine":
                            # Fine-grain always re-gathers per tile visit.
                            resident_lut = None

                    time_s += reduce_per_tile
                    if tile_events is not None:
                        tile_events.append(
                            (tile_transfer, loop_overhead + reduce_per_tile)
                        )
        if resident_output is not None:
            time_s += output_store_cost
            counts["output_stores"] += 1
        return time_s

    def _aggregate_loop_nest(
        self,
        order,
        trips,
        mapping,
        counts,
        index_load_cost,
        output_load_cost,
        output_store_cost,
        lut_tile_cost,
        chunks_per_tile,
        reduce_per_tile,
        loop_overhead,
    ) -> float:
        """Closed-form aggregation with identical per-event costs."""

        def reuse_count(deps) -> int:
            # Mirror of mapping.analytical._load_count: the resident tile is
            # evicted once per iteration of loops at or above the innermost
            # *moving* relevant dim (trip > 1); 1 load if nothing moves.
            moving = [order.index(d) for d in deps if trips[d] > 1]
            if not moving:
                return 1
            innermost = max(moving)
            count = 1
            for depth, dim in enumerate(order):
                if depth <= innermost:
                    count *= trips[dim]
            return count

        total_tiles = trips["n"] * trips["f"] * trips["cb"]
        index_loads = reuse_count(("n", "cb"))
        output_visits = reuse_count(("n", "f"))
        unique_outputs = trips["n"] * trips["f"]
        output_loads = output_visits - unique_outputs  # first visits zero-init
        output_stores = output_visits

        time_s = total_tiles * (loop_overhead + reduce_per_tile)
        time_s += index_loads * index_load_cost
        time_s += output_loads * output_load_cost + output_stores * output_store_cost
        counts["index_loads"] += index_loads
        counts["output_loads"] += output_loads
        counts["output_stores"] += output_stores
        if mapping.load_scheme == "coarse":
            lut_visits = reuse_count(("cb", "f"))
            time_s += lut_visits * lut_tile_cost
            counts["lut_loads"] += lut_visits * chunks_per_tile
        elif mapping.load_scheme == "fine":
            time_s += total_tiles * lut_tile_cost
            counts["lut_loads"] += total_tiles * chunks_per_tile
        return time_s

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def _execute(
        self, shape: LUTShape, mapping: Mapping, indices: np.ndarray, lut: np.ndarray
    ) -> np.ndarray:
        """Compute the kernel output through the distributed dataflow."""
        if indices.shape != (shape.n, shape.cb):
            raise ValueError(f"indices must be {(shape.n, shape.cb)}")
        if lut.shape != (shape.cb, shape.ct, shape.f):
            raise ValueError(f"LUT must be {(shape.cb, shape.ct, shape.f)}")
        output = np.zeros((shape.n, shape.f), dtype=np.float64)
        groups = shape.n // mapping.n_s_tile
        pes_per_group = shape.f // mapping.f_s_tile
        for g in range(groups):
            rows = slice(g * mapping.n_s_tile, (g + 1) * mapping.n_s_tile)
            for p in range(pes_per_group):
                cols = slice(p * mapping.f_s_tile, (p + 1) * mapping.f_s_tile)
                output[rows, cols] = lut_lookup(indices[rows], lut[:, :, cols])
        return output

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        shape: LUTShape,
        mapping: Mapping,
        indices: Optional[np.ndarray] = None,
        lut: Optional[np.ndarray] = None,
        injector: Optional["FaultInjector"] = None,
        overlap: bool = False,
    ) -> SimulationReport:
        """Simulate one kernel; pass ``indices``/``lut`` for functional output.

        ``overlap=True`` double-buffers the micro-kernel loop: the DMA
        transfer of m-tile ``i+1`` runs under the reduce of m-tile ``i``
        (per-tile stages bounded by ``max(transfer, compute)``, fill/drain
        exposed).  ``kernel_s`` and the profile's ``dma`` phase then report
        the *exposed* time while ``overlap_hidden_s`` carries what the
        pipeline hid, so phases keep partitioning ``total_s`` exactly.
        ``overlap=False`` is bit-identical to the sequential model.

        ``injector`` threads a :class:`~repro.resilience.faults.FaultInjector`
        through the run: kernel launches against dead ranks raise
        :class:`~repro.resilience.faults.RankFailure`, planned transfer
        timeouts raise :class:`~repro.resilience.faults.TransferTimeout`
        (transient — a retry consumes the next budget entry), stragglers
        stretch the micro-kernel phase, and LUT bit flips corrupt the
        table the functional execution reads (``report.device_lut``
        carries the tampered copy for integrity checking).  An inactive
        injector (empty plan) leaves every code path — and therefore the
        report — bit-identical to ``injector=None``.
        """
        if not is_legal(shape, mapping, self.platform):
            raise ValueError(f"illegal mapping {mapping} for shape {shape}")
        faulting = injector is not None and injector.active
        faults: Tuple[str, ...] = ()
        device_lut: Optional[np.ndarray] = None
        if faulting:
            # Permanent faults fail the launch; transients fail this
            # attempt's distribution burst.  Both raise before any cost
            # is accumulated, exactly like a driver error on real HW.
            injector.check_launch(self.platform)
            injector.check_transfer()
        distribution = self._distribution_time(shape, mapping)
        kernel_phases: Dict[str, float] = {}
        kernel, counts = self._micro_kernel_time(
            shape, mapping, phases=kernel_phases, overlap=overlap
        )
        overlap_hidden = kernel_phases.pop("overlap_hidden", 0.0)
        if faulting:
            slowdown = injector.straggler_slowdown()
            if slowdown > 1.0:
                # The launch is synchronous: the host waits for the
                # slowest PE, so one straggler stretches the whole phase.
                kernel *= slowdown
                for key in ("dma", "lookup", "overhead"):
                    kernel_phases[key] *= slowdown
                # Keep the partition exact under the (float) scaling.
                kernel_phases["reduce"] = kernel - (
                    kernel_phases["dma"]
                    + kernel_phases["lookup"]
                    + kernel_phases["overhead"]
                )
                # The pipeline stretches uniformly with the straggler, so
                # the hidden fraction scales by the same factor.
                overlap_hidden *= slowdown
                faults += ("straggler",)
                injector.record("straggler", factor=slowdown)
        if overlap_hidden > 0.0:
            # Re-express kernel wall clock and the dma phase as *exposed*
            # time; hidden < dma by construction, so dma stays >= 0 and the
            # phase partition still sums to the (new) kernel_s exactly.
            kernel -= overlap_hidden
            kernel_phases["dma"] -= overlap_hidden
        gather = self._gather_time(shape, mapping)
        output = None
        if indices is not None and lut is not None:
            exec_lut = np.asarray(lut)
            if faulting and injector.plan.lut_bit_flips > 0:
                exec_lut = injector.corrupt_lut(exec_lut)
                device_lut = exec_lut
                faults += ("lut_bit_flips",)
            output = self._execute(shape, mapping, np.asarray(indices), exec_lut)
        n_pes = num_pes_used(shape, mapping)
        profile = PhaseProfile(
            phase_seconds={
                "distribution": distribution,
                "dma": kernel_phases.get("dma", 0.0),
                "lookup": kernel_phases.get("lookup", 0.0),
                "reduce": kernel_phases.get("reduce", kernel),
                "overhead": kernel_phases.get("overhead", 0.0),
                "gather": gather,
                "launch": self.platform.kernel_launch_s,
            },
            label=f"{self.platform.name}:{shape.n}x{shape.h}x{shape.f}",
            overlap_hidden_s=overlap_hidden,
        )
        build_rank_timelines(
            profile,
            num_ranks=self.platform.ranks,
            pes_per_rank=self.platform.pes_per_rank,
            active_pes=n_pes,
        )
        return SimulationReport(
            shape=shape,
            mapping=mapping,
            num_pes=n_pes,
            distribution_s=distribution,
            kernel_s=kernel,
            gather_s=gather,
            launch_s=self.platform.kernel_launch_s,
            event_counts=counts,
            output=output,
            faults=faults,
            device_lut=device_lut,
            profile=profile,
            overlap_hidden_s=overlap_hidden,
        )
