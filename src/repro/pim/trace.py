"""Execution tracing for the PIM kernel simulator.

Records the per-tile event stream of one PE's micro-kernel execution —
which tensor tiles were loaded/stored when, and how long each event took —
and renders it as a text timeline.  Useful for understanding *why* a mapping
is slow (e.g. seeing output partial-sum thrashing when the CB loop sits
outside the N/F loops, paper §5.2.2).

Tracing walks the loop nest explicitly, so it is intended for sub-LUT tiles
of moderate size (the same ``MAX_EXPLICIT_TILES`` bound as the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.codebook import LUTShape
from ..mapping.space import INDEX_BYTES, OUTPUT_BYTES, LUT_BYTES, Mapping, is_legal
from .platforms import PIMPlatform
from .simulator import ALIGN_BYTES, LOOP_OVERHEAD_CYCLES, MAX_EXPLICIT_TILES


def _align(size: float) -> float:
    return ALIGN_BYTES * np.ceil(size / ALIGN_BYTES)


@dataclass(frozen=True)
class TraceEvent:
    """One micro-kernel event on the traced PE."""

    time_s: float
    duration_s: float
    kind: str  # "index_load" | "output_load" | "output_store" | "lut_load" | "reduce"
    tile: tuple  # loop indices (n, f, cb) at the event

    @property
    def end_s(self) -> float:
        return self.time_s + self.duration_s


@dataclass
class KernelTrace:
    """Event stream of one PE executing one sub-LUT workload."""

    shape: LUTShape
    mapping: Mapping
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.events[-1].end_s if self.events else 0.0

    def time_by_kind(self) -> dict:
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0.0) + event.duration_s
        return out

    def count_by_kind(self) -> dict:
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_chrome_events(self, pid: int = 2) -> List[dict]:
        """This trace as Chrome-trace events (one timeline row per kind).

        The bridge in :mod:`repro.obs.bridge` owns the schema, so
        micro-kernel timelines merge with engine spans in one file; see
        ``repro.obs.write_chrome_trace`` / ``python -m repro trace-export``.
        """
        from ..obs.bridge import kernel_trace_to_chrome_events

        return kernel_trace_to_chrome_events(self, pid=pid)

    def to_jsonable(self) -> dict:
        """Machine-readable summary of the event stream."""
        return {
            "total_s": self.total_s,
            "events": len(self.events),
            "time_by_kind": self.time_by_kind(),
            "count_by_kind": self.count_by_kind(),
        }

    def render(self, width: int = 64, max_rows: int = 40) -> str:
        """Plain-text timeline: one row per event kind, '#' marks busy time."""
        if not self.events:
            return "(empty trace)"
        total = self.total_s
        kinds = sorted({e.kind for e in self.events})
        lines = [f"kernel trace: {len(self.events)} events, {total * 1e6:.1f} us"]
        for kind in kinds:
            row = [" "] * width
            busy = 0.0
            for event in self.events:
                if event.kind != kind:
                    continue
                busy += event.duration_s
                start = int(event.time_s / total * (width - 1))
                stop = max(int(event.end_s / total * (width - 1)), start)
                for i in range(start, stop + 1):
                    row[i] = "#"
            lines.append(f"{kind:>13} |{''.join(row)}| {busy / total:6.1%}")
        summary = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.count_by_kind().items())
        )
        lines.append(f"events: {summary}")
        return "\n".join(lines)


def trace_kernel(
    shape: LUTShape, mapping: Mapping, platform: PIMPlatform
) -> KernelTrace:
    """Trace one PE's micro-kernel execution under ``mapping``.

    The event costs are identical to :class:`~repro.pim.simulator.PIMSimulator`'s
    explicit walk, so ``trace.total_s`` matches the simulator's per-PE kernel
    time for mappings within the explicit-walk bound.
    """
    if not is_legal(shape, mapping, platform):
        raise ValueError(f"illegal mapping {mapping} for shape {shape}")
    trips = {
        "n": mapping.n_s_tile // mapping.n_m_tile,
        "f": mapping.f_s_tile // mapping.f_m_tile,
        "cb": shape.cb // mapping.cb_m_tile,
    }
    total_tiles = trips["n"] * trips["f"] * trips["cb"]
    if total_tiles > MAX_EXPLICIT_TILES:
        raise ValueError(
            f"trace would cover {total_tiles} tiles; "
            f"choose larger m-tiles (bound {MAX_EXPLICIT_TILES})"
        )

    local = platform.local_memory
    compute = platform.compute
    trace = KernelTrace(shape=shape, mapping=mapping)
    clock = 0.0

    def emit(kind: str, duration: float, tile: tuple) -> None:
        nonlocal clock
        trace.events.append(TraceEvent(clock, duration, kind, tile))
        clock += duration

    mtile_index = _align(mapping.n_m_tile * mapping.cb_m_tile * INDEX_BYTES)
    mtile_output = _align(mapping.n_m_tile * mapping.f_m_tile * OUTPUT_BYTES)
    index_cost = local.latency(mtile_index, mtile_index)
    output_cost = local.latency(mtile_output, mtile_output)

    if mapping.load_scheme == "static":
        lut_total = shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES
        emit("lut_load", local.latency(_align(lut_total), min(lut_total, 2048)), (-1,) * 3)
        lut_tile_cost = 0.0
    elif mapping.load_scheme == "coarse":
        chunk = _align(mapping.cb_load_tile * shape.ct * mapping.f_load_tile * LUT_BYTES)
        chunks = int(
            np.ceil(mapping.cb_m_tile / mapping.cb_load_tile)
            * np.ceil(mapping.f_m_tile / mapping.f_load_tile)
        )
        lut_tile_cost = chunks * local.latency(chunk, chunk)
    else:
        chunk = _align(mapping.f_load_tile * LUT_BYTES)
        chunks = int(
            mapping.n_m_tile
            * mapping.cb_m_tile
            * np.ceil(mapping.f_m_tile / mapping.f_load_tile)
        )
        lut_tile_cost = chunks * local.latency(chunk, chunk)

    reduce_cost = compute.add_time(
        mapping.n_m_tile * mapping.cb_m_tile * mapping.f_m_tile
    ) + compute.lookup_time(mapping.n_m_tile * mapping.cb_m_tile)
    if mapping.load_scheme == "fine":
        extra = max(int(np.ceil(mapping.f_m_tile / mapping.f_load_tile)) - 1, 0)
        reduce_cost += compute.lookup_time(mapping.n_m_tile * mapping.cb_m_tile * extra)
    loop_overhead = LOOP_OVERHEAD_CYCLES / compute.frequency_hz

    order = mapping.traversal
    dims = {"n": 0, "f": 0, "cb": 0}
    resident_index: Optional[tuple] = None
    resident_output: Optional[tuple] = None
    resident_lut: Optional[tuple] = None
    seen_outputs: set = set()
    reload_lut = mapping.load_scheme in ("coarse", "fine")

    for i0 in range(trips[order[0]]):
        dims[order[0]] = i0
        for i1 in range(trips[order[1]]):
            dims[order[1]] = i1
            for i2 in range(trips[order[2]]):
                dims[order[2]] = i2
                tile = (dims["n"], dims["f"], dims["cb"])
                clock += loop_overhead

                index_tag = (dims["n"], dims["cb"])
                if index_tag != resident_index:
                    emit("index_load", index_cost, tile)
                    resident_index = index_tag

                output_tag = (dims["n"], dims["f"])
                if output_tag != resident_output:
                    if resident_output is not None:
                        emit("output_store", output_cost, tile)
                    if output_tag in seen_outputs:
                        emit("output_load", output_cost, tile)
                    else:
                        seen_outputs.add(output_tag)
                    resident_output = output_tag

                if reload_lut:
                    lut_tag = (dims["cb"], dims["f"])
                    if lut_tag != resident_lut:
                        emit("lut_load", lut_tile_cost, tile)
                        resident_lut = lut_tag
                    if mapping.load_scheme == "fine":
                        resident_lut = None

                emit("reduce", reduce_cost, tile)
    if resident_output is not None:
        emit("output_store", output_cost, (dims["n"], dims["f"], dims["cb"]))
    return trace
