"""Closest centroid search (CCS) — the host-side operator of LUT-NN inference.

Steps 4–5 of paper Fig. 2: each (1, V) activation tile is compared with its
column's codebook and the index of the centroid with minimal L2 distance is
emitted.  The paper implements the distance estimation with inner products
(a GEMM) so the operator runs efficiently on the host; this module routes
the search through the cached, blocked, dtype-aware
:class:`repro.kernels.CCSKernel`, keeping :func:`squared_distances` as the
plain einsum reference the kernel is property-tested against.

Accuracy contract
-----------------
``closest_centroid_search`` computes in the input's floating dtype by
default (float32 in → float32 distances; anything else → float64, the
pre-kernel behaviour).  float64 reproduces the reference argmin on
continuous data; float32 (``dtype="float32"``) may pick the other centroid
of a pair whose distances agree to ~1e-6 relative — ties where either
choice reconstructs equally well.  Pass ``dtype="float64"`` to force the
reference precision regardless of input dtype.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..kernels import CCSKernel
from ..kernels.ccs import DTypeLike
from .codebook import Codebooks

# Shared auto-dtype kernel for the functional API; per-layer callers
# (LUTLinear) own their kernel so each layer's constants stay cached.
_shared_kernel = CCSKernel(dtype=None)


def squared_distances(x: np.ndarray, codebooks: Codebooks) -> np.ndarray:
    """Squared L2 distance between every sub-vector and every centroid.

    This is the float64 einsum *reference* implementation; the fast path
    is :meth:`repro.kernels.CCSKernel.squared_distances`.

    Parameters
    ----------
    x: (N, H) activation matrix.
    codebooks: (CB, CT, V) centroids.

    Returns
    -------
    (N, CB, CT) distances.
    """
    sub = codebooks.split(x)  # (N, CB, V)
    cents = codebooks.centroids  # (CB, CT, V)
    # ||a - c||^2 = ||a||^2 - 2 a.c + ||c||^2
    cross = np.einsum("ncv,ckv->nck", sub, cents)
    a_sq = np.sum(sub**2, axis=-1)[:, :, None]
    c_sq = np.sum(cents**2, axis=-1)[None, :, :]
    return a_sq - 2.0 * cross + c_sq


def closest_centroid_search(
    x: np.ndarray,
    codebooks: Codebooks,
    dtype: DTypeLike = None,
    kernel: Optional[CCSKernel] = None,
) -> np.ndarray:
    """Compute the (N, CB) int32 index matrix (argmin over centroids).

    ``dtype`` selects the compute precision (see the module docstring for
    the accuracy contract); ``kernel`` lets a caller supply its own cached
    :class:`~repro.kernels.CCSKernel` instead of the shared one.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError("CCS input must be 2-D (N, H)")
    active = kernel if kernel is not None else _shared_kernel
    return active.search(x, codebooks.centroids, dtype=dtype)


def hard_replace(x: np.ndarray, codebooks: Codebooks) -> np.ndarray:
    """The closest-centroid-replacing function H(.) of paper Eq. 1.

    Returns the (N, H) matrix in which each sub-vector of ``x`` is replaced
    by its nearest centroid.
    """
    indices = closest_centroid_search(x, codebooks)
    n = np.asarray(x).shape[0]
    cb_idx = np.arange(codebooks.cb)[None, :]
    replaced = codebooks.centroids[cb_idx, indices]  # (N, CB, V)
    return replaced.reshape(n, codebooks.h)


def ccs_flops(n: int, h: int, ct: int) -> int:
    """Operation count of index calculation: 3 * N * H * CT (paper §3.3)."""
    return 3 * n * h * ct
