"""Closest centroid search (CCS) — the host-side operator of LUT-NN inference.

Steps 4–5 of paper Fig. 2: each (1, V) activation tile is compared with its
column's codebook and the index of the centroid with minimal L2 distance is
emitted.  The paper implements the distance estimation with inner products
(a GEMM) so the operator runs efficiently on the host; this module does the
same via a single batched einsum.
"""

from __future__ import annotations

import numpy as np

from .codebook import Codebooks


def squared_distances(x: np.ndarray, codebooks: Codebooks) -> np.ndarray:
    """Squared L2 distance between every sub-vector and every centroid.

    Parameters
    ----------
    x: (N, H) activation matrix.
    codebooks: (CB, CT, V) centroids.

    Returns
    -------
    (N, CB, CT) distances.
    """
    sub = codebooks.split(x)  # (N, CB, V)
    cents = codebooks.centroids  # (CB, CT, V)
    # ||a - c||^2 = ||a||^2 - 2 a.c + ||c||^2
    cross = np.einsum("ncv,ckv->nck", sub, cents)
    a_sq = np.sum(sub**2, axis=-1)[:, :, None]
    c_sq = np.sum(cents**2, axis=-1)[None, :, :]
    return a_sq - 2.0 * cross + c_sq


def closest_centroid_search(x: np.ndarray, codebooks: Codebooks) -> np.ndarray:
    """Compute the (N, CB) int index matrix (argmin over centroids)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("CCS input must be 2-D (N, H)")
    dists = squared_distances(x, codebooks)
    return np.argmin(dists, axis=-1).astype(np.int32)


def hard_replace(x: np.ndarray, codebooks: Codebooks) -> np.ndarray:
    """The closest-centroid-replacing function H(.) of paper Eq. 1.

    Returns the (N, H) matrix in which each sub-vector of ``x`` is replaced
    by its nearest centroid.
    """
    indices = closest_centroid_search(x, codebooks)
    n = x.shape[0]
    cb_idx = np.arange(codebooks.cb)[None, :]
    replaced = codebooks.centroids[cb_idx, indices]  # (N, CB, V)
    return replaced.reshape(n, codebooks.h)


def ccs_flops(n: int, h: int, ct: int) -> int:
    """Operation count of index calculation: 3 * N * H * CT (paper §3.3)."""
    return 3 * n * h * ct
