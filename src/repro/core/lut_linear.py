"""``LUTLinear``: a drop-in replacement for ``nn.Linear`` backed by LUT-NN.

The layer owns trainable centroids (the codebooks) alongside the original
weight/bias, and exposes three forward modes:

``exact``
    Plain ``x @ W + b`` — the original layer, used for reference outputs.
``calibrate``
    The differentiable approximation used during eLUT-NN calibration: each
    input sub-vector is hard-replaced by its closest centroid.  Gradients
    flow (a) to the centroids through the gather (the selected centroid *is*
    the forward value), and (b) to the inputs through the straight-through
    estimator (paper Eq. 2).  The layer also records the reconstruction-loss
    term ``||A W - A_hat W||^2`` of paper Eq. 1.
``lut``
    Deployment mode: closest-centroid search plus table lookup against the
    frozen, pre-computed (optionally INT8-quantized) LUT.  No gradients.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd.tensor import _route
from ..kernels import (
    CCSKernel,
    gather_offsets,
    lut_gather_reduce,
    lut_gather_reduce_quantized,
)
from ..kernels.ccs import DTypeLike
from ..nn.layers import Linear
from ..nn.module import Module
from .codebook import Codebooks, LUTShape
from .lut import build_lut
from .quantization import QuantizedLUT, quantize_lut

_MODES = ("exact", "calibrate", "soft", "lut")


class LUTLinear(Module):
    """LUT-NN replacement of a linear layer (see module docstring).

    Numerics run through :mod:`repro.kernels`: the layer owns a
    :class:`~repro.kernels.CCSKernel` whose per-layer constants are cached
    behind ``_centroid_version`` — call :meth:`mark_centroids_updated`
    after every optimizer step that touches ``centroids`` so the next
    forward rebuilds them.  ``kernel_dtype=None`` (default) preserves the
    input's floating dtype, matching the float64 reference bit-for-bit;
    pass ``"float32"`` for deployment-speed search (see the accuracy
    contract in :mod:`repro.core.ccs`).
    """

    def __init__(
        self,
        weight: Tensor,
        bias: Optional[Tensor],
        codebooks: Codebooks,
        name: str = "",
        kernel_dtype: DTypeLike = None,
        block_rows: Optional[int] = None,
    ):
        super().__init__()
        h, f = weight.shape
        if codebooks.h != h:
            raise ValueError(f"codebook H={codebooks.h} != weight H={h}")
        self.in_features = h
        self.out_features = f
        self.v = codebooks.v
        self.ct = codebooks.ct
        self.layer_name = name

        self.weight = weight
        self.bias = bias
        self.centroids = Tensor(codebooks.centroids.copy(), requires_grad=True)

        self.mode = "calibrate"
        #: Temperature for the baseline soft-assignment (Gumbel-softmax) path.
        self.temperature = 1.0
        #: Sample Gumbel noise in the soft path (the baseline [84] estimator).
        self.gumbel_noise = False
        self.gumbel_rng = np.random.default_rng()
        # Box (plain list) holding the last calibrate forward's
        # reconstruction-loss term; a bare Tensor attribute would be
        # auto-registered as a trainable parameter by Module.__setattr__.
        self._recon_loss_box = [None]
        self._lut: Optional[np.ndarray] = None
        self._qlut: Optional[QuantizedLUT] = None

        # Host kernel state: cached-constant CCS kernel + the centroid
        # version counter that keys its cache (bumped by
        # mark_centroids_updated after each optimizer step).
        self._ccs_kernel = CCSKernel(dtype=kernel_dtype, block_rows=block_rows)
        self._centroid_version = 0
        self._gather_offsets = gather_offsets(self.cb, self.ct)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_linear(
        cls,
        linear: Linear,
        activations: np.ndarray,
        v: int,
        ct: int,
        rng: Optional[np.random.Generator] = None,
        kmeans_iters: int = 25,
        centroid_init: str = "kmeans",
        name: str = "",
        kernel_dtype: DTypeLike = None,
        block_rows: Optional[int] = None,
    ) -> "LUTLinear":
        """Convert a trained ``Linear`` using calibration activations.

        ``centroid_init`` selects the codebook initialization:

        * ``"kmeans"`` — per-column k-means over the (M, H) activation
          sample (paper Section 3.1 step 1); deployable without calibration.
        * ``"random"`` — Gaussians matched to activation statistics (the
          paper's §6.2 calibration setup); requires calibration to be useful.
        """
        if centroid_init == "kmeans":
            codebooks = Codebooks.from_activations(
                activations, v=v, ct=ct, max_iters=kmeans_iters, rng=rng
            )
        elif centroid_init == "random":
            codebooks = Codebooks.random_init(activations, v=v, ct=ct, rng=rng)
        else:
            raise ValueError(f"unknown centroid_init {centroid_init!r}")
        return cls(
            linear.weight,
            linear.bias,
            codebooks,
            name=name,
            kernel_dtype=kernel_dtype,
            block_rows=block_rows,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def cb(self) -> int:
        return self.in_features // self.v

    def current_codebooks(self) -> Codebooks:
        """Snapshot of the (possibly calibrated) centroids."""
        return Codebooks(self.centroids.data.copy())

    def lut_shape(self, n: int) -> LUTShape:
        return LUTShape(n=n, h=self.in_features, f=self.out_features, v=self.v, ct=self.ct)

    def set_mode(self, mode: str) -> None:
        if mode not in _MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {_MODES}")
        self.mode = mode

    def mark_centroids_updated(self) -> None:
        """Notify the CCS kernel that ``centroids`` changed.

        Must be called after every optimizer step that touches the
        centroid tensor; the bumped version invalidates the kernel's
        cached constants on the next search.  (The kernel also keeps a
        content fingerprint as a safety net against missed calls.)
        """
        self._centroid_version += 1

    def _search(self, x: np.ndarray) -> np.ndarray:
        """Closest-centroid indices via the layer's cached kernel."""
        return self._ccs_kernel.search(
            x, self.centroids.data, version=self._centroid_version
        )

    def freeze_lut(self, quantize_int8: bool = False) -> None:
        """Pre-compute the deployment LUT from current centroids and weight.

        The paper quantizes LUTs to INT8 for the UPMEM platform (Section 6.3,
        "<= 0.1% accuracy drop"); pass ``quantize_int8=True`` to match.
        """
        lut = build_lut(self.current_codebooks(), self.weight.data)
        if quantize_int8:
            self._qlut = quantize_lut(lut)
            self._lut = self._qlut.dequantize()
        else:
            self._qlut = None
            self._lut = lut

    @property
    def last_reconstruction_loss(self) -> Optional[Tensor]:
        """``||A W - A_hat W||^2`` from the most recent calibrate forward.

        Read by the eLUT-NN calibrator to assemble paper Eq. 1; None until
        the first forward in ``calibrate`` mode.
        """
        return self._recon_loss_box[0]

    @property
    def lut(self) -> Optional[np.ndarray]:
        return self._lut

    @property
    def quantized_lut(self) -> Optional[QuantizedLUT]:
        return self._qlut

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float64))
        leading = x.shape[:-1]
        n = int(np.prod(leading)) if leading else 1
        flat = x.reshape(n, self.in_features)

        if self.mode == "exact":
            out = flat @ self.weight
        elif self.mode == "calibrate":
            out = self._calibrate_forward(flat)
        elif self.mode == "soft":
            out = self._soft_forward(flat)
        elif self.mode == "lut":
            out = self._lut_forward(flat)
        else:  # pragma: no cover - set_mode guards this
            raise RuntimeError(f"invalid mode {self.mode!r}")

        if self.bias is not None:
            out = out + self.bias
        return out.reshape(*leading, self.out_features)

    def _gather_centroids(self, indices: np.ndarray) -> Tensor:
        """Differentiable gather ``centroids[cb, indices[:, cb]]`` → (N, CB, V)."""
        cb_idx = np.arange(self.cb)[None, :]
        return self.centroids[cb_idx, indices]

    def _calibrate_forward(self, flat: Tensor) -> Tensor:
        indices = self._search(flat.data)
        gathered = self._gather_centroids(indices)  # (N, CB, V), grads -> centroids
        approx = gathered.reshape(flat.shape[0], self.in_features)
        # Straight-through estimator: forward equals the hard replacement,
        # backward passes identity to the input activations (paper Eq. 2).
        a_hat = approx + (flat - flat.detach())
        out = a_hat @ self.weight
        exact = flat @ self.weight
        diff = out - exact
        self._recon_loss_box[0] = (diff * diff).mean()
        return out

    def _soft_forward(self, flat: Tensor) -> Tensor:
        """Soft-assignment path used by the *baseline* LUT-NN calibrator [84].

        Distances are computed differentiably and a temperature-controlled
        softmax produces a convex combination of centroids.  At deployment
        the assignment becomes hard, creating the train/infer mismatch that
        (together with the missing reconstruction loss) degrades the
        baseline's accuracy when every layer is replaced.

        In eval mode with no gradient consumers the autograd tape is
        skipped entirely: distances come from the blocked BLAS kernel and
        the softmax mixture runs in plain numpy (same max-subtracted
        formulation, so outputs agree with the autograd path to float
        rounding).
        """
        from ..autograd import softmax

        if not self.training and not flat.requires_grad:
            return Tensor(self._soft_forward_numpy(flat.data))

        n = flat.shape[0]
        sub = flat.reshape(n, self.cb, self.v)
        sub4 = sub.reshape(n, self.cb, 1, self.v)
        cents4 = self.centroids.reshape(1, self.cb, self.ct, self.v)
        diff = sub4 - cents4  # (N, CB, CT, V)
        dists = (diff * diff).sum(axis=-1)  # (N, CB, CT)
        logits = dists * -1.0
        if self.gumbel_noise and self.training:
            # Gumbel(0, 1) sampling — the stochastic assignment of the
            # Gumbel-softmax estimator used by the baseline LUT-NN [84].
            uniform = self.gumbel_rng.random(logits.shape)
            gumbel = -np.log(-np.log(np.clip(uniform, 1e-12, 1.0)))
            logits = logits + Tensor(gumbel)
        weights = softmax(logits * (1.0 / max(self.temperature, 1e-8)), axis=-1)
        # (CB, N, CT) @ (CB, CT, V) -> (CB, N, V)
        mixed = weights.transpose(1, 0, 2) @ self.centroids
        a_soft = mixed.transpose(1, 0, 2).reshape(n, self.in_features)
        return a_soft @ self.weight

    def _soft_forward_numpy(self, flat: np.ndarray) -> np.ndarray:
        """Inference-only soft assignment (no tape, kernel distances)."""
        n = flat.shape[0]
        dists = self._ccs_kernel.squared_distances(
            flat, self.centroids.data, version=self._centroid_version
        )  # (N, CB, CT)
        logits = -dists / max(self.temperature, 1e-8)
        logits -= logits.max(axis=-1, keepdims=True)
        exp = np.exp(logits)
        weights = exp / exp.sum(axis=-1, keepdims=True)
        # (CB, N, CT) @ (CB, CT, V) -> (CB, N, V)
        mixed = np.matmul(weights.transpose(1, 0, 2), self.centroids.data)
        a_soft = mixed.transpose(1, 0, 2).reshape(n, self.in_features)
        return a_soft @ self.weight.data

    def _lut_forward(self, flat: Tensor) -> Tensor:
        if self._lut is None:
            self.freeze_lut()
        indices = self._search(flat.data)
        if self._qlut is not None:
            # Fused INT8 path: gather the int8 table directly, accumulate
            # in int32, dequantize once (paper §6.3 deployment numerics).
            out = lut_gather_reduce_quantized(
                indices, self._qlut, offsets=self._gather_offsets
            )
        else:
            out = lut_gather_reduce(
                indices, self._lut, offsets=self._gather_offsets
            )
        result = Tensor(out)

        # Keep the tape alive for upstream layers via STE so mixed
        # lut/calibrate stacks remain trainable end to end.
        if flat.requires_grad:
            def backward(grad: np.ndarray) -> None:
                _route(flat, grad @ self.weight.data.T)

            result = Tensor._make(out, (flat,), backward)
        return result

    def __repr__(self) -> str:
        return (
            f"LUTLinear(in={self.in_features}, out={self.out_features}, "
            f"V={self.v}, CT={self.ct}, mode={self.mode!r})"
        )
