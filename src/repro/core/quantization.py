"""INT8 quantization of look-up tables.

The paper deploys INT8-quantized LUTs on UPMEM ("we conduct INT8 quantization
on the LUTs, which reports <= 0.1% accuracy drop", Section 6.3).  Tables are
quantized symmetrically per codebook, which keeps the dequantized
accumulation a simple scaled integer sum on the PIM PEs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedLUT:
    """Symmetric per-codebook INT8 quantization of a (CB, CT, F) table."""

    values: np.ndarray  # int8, (CB, CT, F)
    scales: np.ndarray  # float64, (CB,)

    def __post_init__(self) -> None:
        if self.values.dtype != np.int8:
            raise TypeError("quantized values must be int8")
        if self.scales.shape != (self.values.shape[0],):
            raise ValueError("one scale per codebook required")

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scales[:, None, None]


def quantize_lut(lut: np.ndarray, qmax: int = 127) -> QuantizedLUT:
    """Symmetric per-codebook INT8 quantization.

    Each codebook slice ``lut[cb]`` is scaled by ``max(|lut[cb]|) / 127`` and
    rounded to int8.  Per-codebook scaling bounds the quantization error of
    the accumulated output by the per-slice dynamic range rather than the
    global one.
    """
    lut = np.asarray(lut, dtype=np.float64)
    if lut.ndim != 3:
        raise ValueError("LUT must have shape (CB, CT, F)")
    peaks = np.max(np.abs(lut), axis=(1, 2))
    scales = np.where(peaks > 0.0, peaks / qmax, 1.0)
    q = np.clip(np.round(lut / scales[:, None, None]), -qmax, qmax).astype(np.int8)
    return QuantizedLUT(values=q, scales=scales)


def quantization_error(lut: np.ndarray, qlut: QuantizedLUT) -> float:
    """Max absolute elementwise dequantization error."""
    return float(np.max(np.abs(lut - qlut.dequantize())))
