"""INT8 quantization of look-up tables.

The paper deploys INT8-quantized LUTs on UPMEM ("we conduct INT8 quantization
on the LUTs, which reports <= 0.1% accuracy drop", Section 6.3).  Tables are
quantized symmetrically per codebook, which keeps the dequantized
accumulation a simple scaled integer sum on the PIM PEs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QuantizedLUT:
    """Symmetric per-codebook INT8 quantization of a (CB, CT, F) table."""

    values: np.ndarray  # int8, (CB, CT, F)
    scales: np.ndarray  # float64, (CB,)

    def __post_init__(self) -> None:
        if self.values.dtype != np.int8:
            raise TypeError("quantized values must be int8")
        if self.scales.shape != (self.values.shape[0],):
            raise ValueError("one scale per codebook required")

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scales[:, None, None]


def quantize_lut(
    lut: np.ndarray, qmax: int = 127, per_codebook: bool = True
) -> QuantizedLUT:
    """Symmetric INT8 quantization.

    With ``per_codebook=True`` (default) each codebook slice ``lut[cb]`` is
    scaled by ``max(|lut[cb]|) / 127`` and rounded to int8 — per-codebook
    scaling bounds the quantization error of the accumulated output by the
    per-slice dynamic range rather than the global one.

    ``per_codebook=False`` uses one global scale for the whole table (the
    scales vector stays per-codebook shaped but holds one value).  That is
    slightly lossier but lets the host gather-reduce kernel accumulate the
    int8 entries *exactly* in int32 and dequantize with a single multiply
    (:func:`repro.kernels.lut_gather_reduce_quantized`'s fast path).
    """
    lut = np.asarray(lut, dtype=np.float64)
    if lut.ndim != 3:
        raise ValueError("LUT must have shape (CB, CT, F)")
    if per_codebook:
        peaks = np.max(np.abs(lut), axis=(1, 2))
    else:
        peaks = np.full(lut.shape[0], np.max(np.abs(lut)))
    scales = np.where(peaks > 0.0, peaks / qmax, 1.0)
    q = np.clip(np.round(lut / scales[:, None, None]), -qmax, qmax).astype(np.int8)
    return QuantizedLUT(values=q, scales=scales)


def quantization_error(lut: np.ndarray, qlut: QuantizedLUT) -> float:
    """Max absolute elementwise dequantization error."""
    return float(np.max(np.abs(lut - qlut.dequantize())))
