"""K-means clustering with k-means++ seeding.

Used for codebook initialization in LUT-NN conversion (paper Section 3.1,
step 1): the activation sub-vectors of each column are clustered into ``CT``
centroids.  Implemented from scratch on numpy (Lloyd's algorithm).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernels import lloyd_update


def kmeans_plusplus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose ``k`` initial centroids via k-means++ (D² sampling)."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = rng.integers(0, n)
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All points coincide with chosen centroids; fill uniformly.
            centroids[i:] = points[rng.integers(0, n, size=k - i)]
            break
        probs = closest_sq / total
        idx = rng.choice(n, p=probs)
        centroids[i] = points[idx]
        dist_sq = np.sum((points - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid (squared L2) for each point."""
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2 ; ||p||^2 constant per row.
    cross = points @ centroids.T
    c_norm = np.sum(centroids**2, axis=1)
    return np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)


def kmeans(
    points: np.ndarray,
    k: int,
    max_iters: int = 50,
    tol: float = 1e-6,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm.

    Parameters
    ----------
    points: (n, d) data matrix.
    k: number of clusters; must not exceed ``n``.

    Returns
    -------
    centroids: (k, d) cluster centers.
    labels: (n,) assignment of each point.
    inertia: final sum of squared distances.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    if n < k:
        raise ValueError(f"need at least k={k} points, got {n}")
    rng = rng or np.random.default_rng()

    centroids = kmeans_plusplus_init(points, k, rng)
    labels = assign(points, centroids)
    for _ in range(max_iters):
        # Vectorized Lloyd step: scatter means + one-shot empty-cluster
        # reseed (distances hoisted out of the per-cluster loop).
        new_centroids, _ = lloyd_update(points, labels, k, centroids)
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        labels = assign(points, centroids)
        if shift < tol:
            break
    inertia = float(np.sum((points - centroids[labels]) ** 2))
    return centroids, labels, inertia
