"""Codebook data structures for LUT-NN (paper Section 3.1).

An activation matrix of width ``H`` is split along the feature dimension into
``CB = H / V`` columns of sub-vectors with length ``V``.  Each column owns a
codebook of ``CT`` centroids; a centroid is a length-``V`` vector.  The full
set of codebooks for one linear layer is a (CB, CT, V) array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .kmeans import kmeans


@dataclass(frozen=True)
class LUTShape:
    """Workload shape of one LUT operator, in the paper's notation (Table 2).

    Attributes
    ----------
    n: input index row count (batch * sequence length).
    h: activation / weight inner dimension.
    f: output feature length.
    v: sub-vector length.
    ct: centroids per codebook.
    """

    n: int
    h: int
    f: int
    v: int
    ct: int

    def __post_init__(self) -> None:
        if min(self.n, self.h, self.f, self.v, self.ct) <= 0:
            raise ValueError(f"all LUT shape dims must be positive: {self}")
        if self.h % self.v != 0:
            raise ValueError(f"H={self.h} not divisible by V={self.v}")

    @property
    def cb(self) -> int:
        """Number of codebooks (CB = H / V)."""
        return self.h // self.v

    @property
    def lut_elements(self) -> int:
        """Total look-up table entries: CB * CT * F."""
        return self.cb * self.ct * self.f

    @property
    def index_elements(self) -> int:
        """Index matrix entries: N * CB."""
        return self.n * self.cb

    @property
    def output_elements(self) -> int:
        return self.n * self.f


class Codebooks:
    """Per-column centroid codebooks of one LUT-converted layer.

    Parameters
    ----------
    centroids:
        Array of shape (CB, CT, V).
    """

    def __init__(self, centroids: np.ndarray):
        centroids = np.asarray(centroids, dtype=np.float64)
        if centroids.ndim != 3:
            raise ValueError("centroids must have shape (CB, CT, V)")
        self.centroids = centroids

    @property
    def cb(self) -> int:
        return self.centroids.shape[0]

    @property
    def ct(self) -> int:
        return self.centroids.shape[1]

    @property
    def v(self) -> int:
        return self.centroids.shape[2]

    @property
    def h(self) -> int:
        return self.cb * self.v

    @classmethod
    def from_activations(
        cls,
        activations: np.ndarray,
        v: int,
        ct: int,
        max_iters: int = 25,
        rng: Optional[np.random.Generator] = None,
    ) -> "Codebooks":
        """Cluster activation sub-vectors into codebooks (conversion step 1).

        ``activations`` is an (M, H) matrix gathered from calibration data.
        Each of the H/V columns is clustered independently with k-means.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 2:
            raise ValueError("activations must be 2-D (rows, H)")
        m, h = activations.shape
        if h % v != 0:
            raise ValueError(f"H={h} not divisible by V={v}")
        if m < ct:
            raise ValueError(f"need at least CT={ct} calibration rows, got {m}")
        rng = rng or np.random.default_rng()
        cb = h // v
        sub = activations.reshape(m, cb, v)
        centroids = np.empty((cb, ct, v), dtype=np.float64)
        for col in range(cb):
            centroids[col], _, _ = kmeans(sub[:, col, :], ct, max_iters=max_iters, rng=rng)
        return cls(centroids)

    @classmethod
    def random_init(
        cls,
        activations: np.ndarray,
        v: int,
        ct: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "Codebooks":
        """Random centroid initialization (paper §6.2 calibration setup).

        Centroids are drawn per column from a Gaussian matched to that
        column's activation statistics, so distances are on the right scale
        but carry no structure — calibration must learn the codebooks.
        """
        activations = np.asarray(activations, dtype=np.float64)
        m, h = activations.shape
        if h % v != 0:
            raise ValueError(f"H={h} not divisible by V={v}")
        rng = rng or np.random.default_rng()
        cb = h // v
        sub = activations.reshape(m, cb, v)
        mean = sub.mean(axis=0)  # (CB, V)
        std = sub.std(axis=0) + 1e-6
        noise = rng.normal(size=(cb, ct, v))
        return cls(mean[:, None, :] + noise * std[:, None, :])

    def split(self, x: np.ndarray) -> np.ndarray:
        """Reshape (N, H) activations into (N, CB, V) sub-vectors."""
        x = np.asarray(x)
        if x.shape[-1] != self.h:
            raise ValueError(f"expected last dim {self.h}, got {x.shape[-1]}")
        return x.reshape(*x.shape[:-1], self.cb, self.v)

    def copy(self) -> "Codebooks":
        return Codebooks(self.centroids.copy())
