"""Look-up table construction and the LUT (table lookup + reduce) operator.

Paper Section 3.1 steps 2–3 build the tables: the (F, H) weight matrix is
split into (1, V) sub-vectors along H, and inner products against every
centroid produce a (CB, CT, F) table.  Section 3.2 steps 6–7 consume them:
each index picks an (F,) slice and the CB slices of a row are accumulated.

This module is the *functional reference*; the timed execution on DRAM-PIM
hardware is modeled by :mod:`repro.pim`.
"""

from __future__ import annotations

import numpy as np

from ..kernels import lut_gather_reduce
from .codebook import Codebooks, LUTShape


def build_lut(codebooks: Codebooks, weight: np.ndarray) -> np.ndarray:
    """Pre-compute look-up tables from codebooks and a weight matrix.

    Parameters
    ----------
    codebooks: (CB, CT, V) centroids.
    weight: (H, F) weight matrix (column-major activations convention,
        i.e. ``y = x @ weight``).

    Returns
    -------
    (CB, CT, F) table: ``lut[cb, k, f] = centroid[cb, k] . weight[cb*V:(cb+1)*V, f]``.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2 or weight.shape[0] != codebooks.h:
        raise ValueError(
            f"weight must be (H={codebooks.h}, F), got {weight.shape}"
        )
    f = weight.shape[1]
    w_sub = weight.reshape(codebooks.cb, codebooks.v, f)  # (CB, V, F)
    return np.einsum("ckv,cvf->ckf", codebooks.centroids, w_sub)


def lut_lookup(indices: np.ndarray, lut: np.ndarray) -> np.ndarray:
    """Table lookup + accumulate (paper Fig. 2 steps 6–7).

    Delegates to :func:`repro.kernels.lut_gather_reduce`: a blocked flat
    gather whose bounds check is one ``max() >= CT`` pass over an
    unsigned-reinterpreted view of the indices, instead of the separate
    ``min()``/``max()`` scans of the old reference.  Out-of-range indices
    still raise ``IndexError``.

    Parameters
    ----------
    indices: (N, CB) int index matrix from closest-centroid search.
    lut: (CB, CT, F) pre-computed tables.

    Returns
    -------
    (N, F) output matrix: ``out[n] = sum_cb lut[cb, indices[n, cb]]``.
    """
    return lut_gather_reduce(indices, np.asarray(lut))


def lut_matmul(x: np.ndarray, codebooks: Codebooks, lut: np.ndarray) -> np.ndarray:
    """Full approximate GEMM: CCS on ``x`` then table lookup."""
    from .ccs import closest_centroid_search

    indices = closest_centroid_search(x, codebooks)
    return lut_lookup(indices, lut)


def reduce_flops(shape: LUTShape) -> int:
    """Operation count of result accumulation: N * F * CB (paper §3.3)."""
    return shape.n * shape.f * shape.cb


def lut_bytes(shape: LUTShape, dtype_bytes: int = 1) -> int:
    """LUT memory footprint in bytes (INT8 by default, as deployed)."""
    return shape.lut_elements * dtype_bytes
