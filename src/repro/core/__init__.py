"""PIM-DL core: LUT-NN conversion, inference operators, and calibration."""

from .analytics import (
    OpCounts,
    flop_reduction,
    gemm_arithmetic_intensity,
    gemm_ops,
    lut_arithmetic_intensity,
    lut_kernel_bytes,
    lut_memory_overhead,
    lut_storage_bytes,
    lutnn_ops,
)
from .calibration import (
    BaselineLUTNNCalibrator,
    CalibrationResult,
    ELUTNNCalibrator,
    evaluate_accuracy,
)
from .ccs import ccs_flops, closest_centroid_search, hard_replace, squared_distances
from .codebook import Codebooks, LUTShape
from .autoconfig import (
    DEFAULT_CANDIDATES,
    CandidatePoint,
    LayerConfigPlan,
    measure_candidates,
    plan_layer_configs,
    uniform_plan,
)
from .export import archive_summary, load_lut_model, save_lut_model
from .conversion import (
    ActivationRecorder,
    convert_to_lut_nn,
    convert_with_plan,
    encoder_linear_filter,
    find_target_linears,
    freeze_all_luts,
    lut_layers,
    record_activations,
    set_lut_mode,
)
from .kmeans import assign, kmeans, kmeans_plusplus_init
from .lut import build_lut, lut_bytes, lut_lookup, lut_matmul, reduce_flops
from .lut_linear import LUTLinear
from .quantization import QuantizedLUT, quantization_error, quantize_lut

__all__ = [
    "LUTShape",
    "Codebooks",
    "kmeans",
    "kmeans_plusplus_init",
    "assign",
    "closest_centroid_search",
    "squared_distances",
    "hard_replace",
    "ccs_flops",
    "build_lut",
    "lut_lookup",
    "lut_matmul",
    "reduce_flops",
    "lut_bytes",
    "LUTLinear",
    "QuantizedLUT",
    "quantize_lut",
    "quantization_error",
    "convert_to_lut_nn",
    "convert_with_plan",
    "find_target_linears",
    "encoder_linear_filter",
    "record_activations",
    "ActivationRecorder",
    "lut_layers",
    "set_lut_mode",
    "freeze_all_luts",
    "ELUTNNCalibrator",
    "BaselineLUTNNCalibrator",
    "CalibrationResult",
    "evaluate_accuracy",
    "OpCounts",
    "gemm_ops",
    "lutnn_ops",
    "flop_reduction",
    "lut_arithmetic_intensity",
    "gemm_arithmetic_intensity",
    "lut_kernel_bytes",
    "lut_storage_bytes",
    "lut_memory_overhead",
    "save_lut_model",
    "load_lut_model",
    "archive_summary",
    "measure_candidates",
    "plan_layer_configs",
    "uniform_plan",
    "CandidatePoint",
    "LayerConfigPlan",
    "DEFAULT_CANDIDATES",
]
