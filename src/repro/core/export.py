"""Serialization of converted LUT-NN models.

A deployed PIM-DL model ships three artifact groups (paper Fig. 5: the
converter hands "Codebooks, LUTs, Parameters" to the inference engine):

* the host-side parameters (every non-LUT weight, e.g. embeddings, norms,
  attention internals that stayed dense, classifier heads);
* per-layer codebooks (needed by the host CCS operator);
* per-layer quantized look-up tables + scales (loaded into PIM memory).

This module packs all of it into a single ``.npz`` archive and restores it
into a freshly constructed model of the same architecture.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from ..nn.module import Module
from .conversion import lut_layers
from .lut_linear import LUTLinear
from .quantization import QuantizedLUT

FORMAT_VERSION = 1
_META_KEY = "__lutnn_meta__"


def save_lut_model(model: Module, path: str) -> str:
    """Serialize a converted (and ideally frozen) model to ``path``.

    Layers without a frozen LUT are frozen on the fly (INT8).  Returns the
    path written.
    """
    layers = lut_layers(model)
    if not layers:
        raise ValueError("model has no LUTLinear layers; nothing to export")

    arrays: Dict[str, np.ndarray] = {}
    meta = {"version": FORMAT_VERSION, "layers": {}}

    for name, param in model.named_parameters():
        arrays[f"param::{name}"] = param.data

    for name, layer in layers:
        if layer.quantized_lut is None:
            layer.freeze_lut(quantize_int8=True)
        qlut = layer.quantized_lut
        arrays[f"codebook::{name}"] = layer.centroids.data
        arrays[f"lut::{name}"] = qlut.values
        arrays[f"scale::{name}"] = qlut.scales
        meta["layers"][name] = {
            "v": layer.v,
            "ct": layer.ct,
            "in_features": layer.in_features,
            "out_features": layer.out_features,
        }

    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_lut_model(model: Module, path: str) -> Module:
    """Restore a serialized LUT-NN model into ``model`` (same architecture).

    ``model`` must already be converted (contain ``LUTLinear`` layers with
    matching names and shapes) — typically by re-running the conversion on
    dummy data, or by constructing the architecture and calling
    :func:`~repro.core.conversion.convert_to_lut_nn` with any activations.
    The stored parameters, codebooks, and INT8 tables then overwrite the
    fresh ones.
    """
    with np.load(path) as archive:
        raw_meta = bytes(archive[_META_KEY].tobytes())
        meta = json.loads(raw_meta.decode("utf-8"))
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported LUT model version {meta.get('version')!r}")

        params = {name: p for name, p in model.named_parameters()}
        for key in archive.files:
            if not key.startswith("param::"):
                continue
            name = key[len("param::") :]
            if name not in params:
                raise KeyError(f"model has no parameter {name!r}")
            stored = archive[key]
            if stored.shape != params[name].data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{stored.shape} vs {params[name].data.shape}"
                )
            params[name].data = stored.copy()

        layers = dict(lut_layers(model))
        for name, info in meta["layers"].items():
            if name not in layers:
                raise KeyError(f"model has no LUTLinear layer {name!r}")
            layer: LUTLinear = layers[name]
            if (layer.v, layer.ct) != (info["v"], info["ct"]):
                raise ValueError(
                    f"layer {name!r} has (V, CT) = ({layer.v}, {layer.ct}), "
                    f"archive has ({info['v']}, {info['ct']})"
                )
            layer.centroids.data = archive[f"codebook::{name}"].copy()
            qlut = QuantizedLUT(
                values=archive[f"lut::{name}"].astype(np.int8),
                scales=archive[f"scale::{name}"].copy(),
            )
            layer._qlut = qlut
            layer._lut = qlut.dequantize()
            layer.set_mode("lut")
    return model


def archive_summary(path: str) -> dict:
    """Sizes (bytes) of each artifact group in a saved model."""
    with np.load(path) as archive:
        sizes = {"params": 0, "codebooks": 0, "luts": 0, "scales": 0}
        for key in archive.files:
            nbytes = archive[key].nbytes
            if key.startswith("param::"):
                sizes["params"] += nbytes
            elif key.startswith("codebook::"):
                sizes["codebooks"] += nbytes
            elif key.startswith("lut::"):
                sizes["luts"] += nbytes
            elif key.startswith("scale::"):
                sizes["scales"] += nbytes
        sizes["total"] = sum(sizes.values())
    return sizes
