"""LUT-NN converter front-end: turn a trained model's linear layers into LUTs.

Implements the conversion pipeline of paper Fig. 5: feed calibration data
through the model, record the input activations of every target linear layer,
cluster them into codebooks, and swap each ``Linear`` for a ``LUTLinear``
in place.  Calibration (Section 4.2) is handled separately by
:mod:`repro.core.calibration`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import Tensor
from ..nn.layers import Linear
from ..nn.module import Module
from .lut_linear import LUTLinear

LayerFilter = Callable[[str, Linear], bool]


def encoder_linear_filter(name: str, layer: Linear) -> bool:
    """Default target filter: the four per-block linear layers of Fig. 6-(b).

    Matches QKV projections, O projections, FFN1, and FFN2 inside encoder
    stacks, while leaving poolers/classifier heads (and any linear outside an
    encoder) on the host — exactly the paper's replacement set.
    """
    return ".encoder." in f".{name}." or name.startswith("encoder.")


def find_target_linears(
    model: Module, layer_filter: Optional[LayerFilter] = None
) -> List[Tuple[str, Linear]]:
    """All (qualified_name, layer) pairs selected for LUT replacement."""
    layer_filter = layer_filter or encoder_linear_filter
    targets = []
    for name, module in model.named_modules():
        if isinstance(module, Linear) and name and layer_filter(name, module):
            targets.append((name, module))
    return targets


class ActivationRecorder:
    """Record the flattened input activations of selected linear layers.

    The module system has no forward hooks, so recording temporarily wraps
    each target layer's ``forward``; :meth:`restore` (or use as a context
    manager) puts the originals back.
    """

    def __init__(self, layers: Sequence[Tuple[str, Linear]], max_rows: int = 100_000):
        self.layers = list(layers)
        self.max_rows = max_rows
        self.records: Dict[str, List[np.ndarray]] = {name: [] for name, _ in layers}
        self._originals: Dict[str, Callable] = {}

    def __enter__(self) -> "ActivationRecorder":
        for name, layer in self.layers:
            original = layer.forward
            self._originals[name] = original

            def wrapped(x, _original=original, _name=name, _layer=layer):
                self._record(_name, x, _layer.in_features)
                return _original(x)

            layer.forward = wrapped
        return self

    def __exit__(self, *exc) -> None:
        self.restore()

    def restore(self) -> None:
        for name, layer in self.layers:
            if name in self._originals:
                self._originals.pop(name)
                # Remove the instance-level override so the class method
                # resolves again (restoring identity, not just behaviour).
                if "forward" in layer.__dict__:
                    del layer.__dict__["forward"]

    def _record(self, name: str, x, in_features: int) -> None:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        flat = data.reshape(-1, in_features)
        stored = sum(r.shape[0] for r in self.records[name])
        room = self.max_rows - stored
        if room > 0:
            self.records[name].append(flat[:room].copy())

    def activations(self, name: str) -> np.ndarray:
        chunks = self.records[name]
        if not chunks:
            raise RuntimeError(f"no activations recorded for layer {name!r}")
        return np.concatenate(chunks, axis=0)


def record_activations(
    model: Module,
    forward_batches: Iterable,
    layers: Sequence[Tuple[str, Linear]],
    max_rows: int = 100_000,
) -> ActivationRecorder:
    """Run ``model`` over calibration batches while recording layer inputs.

    ``forward_batches`` yields arguments for ``model(...)`` — either a bare
    input or an (args tuple) — mirroring how the paper feeds <1% of the
    training set through the frozen network.
    """
    recorder = ActivationRecorder(layers, max_rows=max_rows)
    was_training = model.training
    model.eval()
    with recorder:
        for batch in forward_batches:
            if isinstance(batch, tuple):
                model(*batch)
            else:
                model(batch)
    if was_training:
        model.train()
    return recorder


def convert_to_lut_nn(
    model: Module,
    forward_batches: Iterable,
    v: int,
    ct: int,
    layer_filter: Optional[LayerFilter] = None,
    rng: Optional[np.random.Generator] = None,
    kmeans_iters: int = 25,
    centroid_init: str = "kmeans",
    max_rows: int = 100_000,
    kernel_dtype=None,
    block_rows: Optional[int] = None,
) -> List[Tuple[str, LUTLinear]]:
    """Convert every targeted ``Linear`` in ``model`` to a ``LUTLinear``.

    Returns the list of (qualified_name, new_layer) replacements.  The model
    is modified in place; each new layer starts in ``calibrate`` mode, ready
    for an eLUT-NN calibration pass.  ``kernel_dtype``/``block_rows``
    configure each layer's host CCS kernel (see :mod:`repro.kernels`).
    """
    rng = rng or np.random.default_rng()
    targets = find_target_linears(model, layer_filter)
    if not targets:
        raise ValueError("no linear layers matched the conversion filter")
    recorder = record_activations(model, forward_batches, targets, max_rows=max_rows)

    replacements: List[Tuple[str, LUTLinear]] = []
    for name, layer in targets:
        lut_layer = LUTLinear.from_linear(
            layer,
            recorder.activations(name),
            v=v,
            ct=ct,
            rng=rng,
            kmeans_iters=kmeans_iters,
            centroid_init=centroid_init,
            name=name,
            kernel_dtype=kernel_dtype,
            block_rows=block_rows,
        )
        model.replace_module(name, lut_layer)
        replacements.append((name, lut_layer))
    return replacements


def convert_with_plan(
    model: Module,
    forward_batches: Iterable,
    plan: Dict[str, Tuple[int, int]],
    rng: Optional[np.random.Generator] = None,
    kmeans_iters: int = 25,
    centroid_init: str = "kmeans",
    max_rows: int = 100_000,
    kernel_dtype=None,
    block_rows: Optional[int] = None,
) -> List[Tuple[str, LUTLinear]]:
    """Convert with *per-layer* (V, CT) settings.

    ``plan`` maps qualified layer names to (V, CT) pairs — typically the
    assignment of :func:`repro.core.autoconfig.plan_layer_configs`.  Layers
    absent from the plan are left dense.
    """
    rng = rng or np.random.default_rng()
    targets = [
        (name, layer)
        for name, layer in find_target_linears(model, lambda n, layer: n in plan)
    ]
    missing = set(plan) - {name for name, _ in targets}
    if missing:
        raise KeyError(f"plan references unknown linear layers: {sorted(missing)}")
    if not targets:
        raise ValueError("plan matched no linear layers")
    recorder = record_activations(model, forward_batches, targets, max_rows=max_rows)

    replacements: List[Tuple[str, LUTLinear]] = []
    for name, layer in targets:
        v, ct = plan[name]
        lut_layer = LUTLinear.from_linear(
            layer,
            recorder.activations(name),
            v=v,
            ct=ct,
            rng=rng,
            kmeans_iters=kmeans_iters,
            centroid_init=centroid_init,
            name=name,
            kernel_dtype=kernel_dtype,
            block_rows=block_rows,
        )
        model.replace_module(name, lut_layer)
        replacements.append((name, lut_layer))
    return replacements


def lut_layers(model: Module) -> List[Tuple[str, LUTLinear]]:
    """All ``LUTLinear`` layers in a converted model."""
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, LUTLinear)
    ]


def set_lut_mode(model: Module, mode: str) -> None:
    """Switch every ``LUTLinear`` in ``model`` to ``mode``."""
    for _, layer in lut_layers(model):
        layer.set_mode(mode)


def freeze_all_luts(model: Module, quantize_int8: bool = False) -> None:
    """Pre-compute deployment LUTs for every converted layer."""
    for _, layer in lut_layers(model):
        layer.freeze_lut(quantize_int8=quantize_int8)
