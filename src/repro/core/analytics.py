"""Operation-count and arithmetic-intensity analytics (paper §3.3, Figs. 3–4).

For a GEMM of shape (N, H) x (H, F):

* GEMM:     2 * N * H * F ops, half multiplications.
* LUT-NN:   3 * N * H * CT ops for index calculation (CCS) of which
            N * H * CT are multiplications, plus N * F * H / V adds for
            result accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .codebook import LUTShape


@dataclass(frozen=True)
class OpCounts:
    """Breakdown of scalar operations for one operator."""

    multiplications: int
    additions: int
    other: int = 0

    @property
    def total(self) -> int:
        return self.multiplications + self.additions + self.other

    @property
    def multiplication_fraction(self) -> float:
        return self.multiplications / self.total if self.total else 0.0


def gemm_ops(n: int, h: int, f: int) -> OpCounts:
    """Op count of a dense (N,H)x(H,F) GEMM: N*H*F MACs."""
    macs = n * h * f
    return OpCounts(multiplications=macs, additions=macs)


def lutnn_ops(shape: LUTShape) -> OpCounts:
    """Op count of LUT-NN inference for the same logical GEMM.

    Index calculation costs ``3 * N * H * CT`` ops (one multiply plus two
    adds per element: subtract, square, accumulate), and table-lookup
    reduction costs ``N * F * CB`` additions (paper §3.3).
    """
    index_mults = shape.n * shape.h * shape.ct
    index_adds = 2 * shape.n * shape.h * shape.ct
    reduce_adds = shape.n * shape.f * shape.cb
    return OpCounts(multiplications=index_mults, additions=index_adds + reduce_adds)


def flop_reduction(shape: LUTShape) -> float:
    """FLOP_GEMM / FLOP_LUT-NN (the line series of paper Fig. 3)."""
    return gemm_ops(shape.n, shape.h, shape.f).total / lutnn_ops(shape).total


def lut_storage_bytes(
    shape: LUTShape,
    index_bytes: int = 1,
    lut_dtype_bytes: int = 1,
    output_bytes: int = 4,
) -> int:
    """Unique memory *footprint* of the LUT operator's tensors.

    Defaults model the deployed UPMEM configuration: INT8 LUTs, byte indices
    (CT <= 256), 32-bit accumulator outputs.
    """
    index_traffic = shape.index_elements * index_bytes
    lut_traffic = shape.lut_elements * lut_dtype_bytes
    output_traffic = shape.output_elements * output_bytes
    return index_traffic + lut_traffic + output_traffic


def lut_kernel_bytes(
    shape: LUTShape,
    index_bytes: int = 1,
    gather_bytes: int = 4,
    output_bytes: int = 4,
    activation_bytes: int = 4,
) -> int:
    """Memory *traffic* of one LUT-NN operator execution on a CPU.

    Every (row, codebook) lookup streams its F selected entries from the
    tables; since CT tables interleave in memory, each requested INT8 entry
    costs roughly a ``gather_bytes``-wide transfer (what Intel Advisor's
    cache-line accounting observes).  Outputs are written and re-read once
    for accumulation; CCS reads the FP32 activations.
    """
    ccs_traffic = shape.n * shape.h * activation_bytes
    index_traffic = shape.index_elements * index_bytes
    gathered = shape.n * shape.cb * shape.f * gather_bytes
    output_traffic = 2 * shape.output_elements * output_bytes
    return ccs_traffic + index_traffic + gathered + output_traffic


def lut_arithmetic_intensity(shape: LUTShape, **byte_kwargs) -> float:
    """Ops per byte of one full LUT-NN operator (CCS + lookup + reduce).

    The paper's Fig. 4 measures 0.204–0.288 ops/byte for the LUT kernels of
    BERT/ViT linear layers on a Xeon 4210 — deep inside the memory-bound
    region; this model reproduces that band.
    """
    ops = 3 * shape.n * shape.h * shape.ct + shape.n * shape.f * shape.cb
    return ops / lut_kernel_bytes(shape, **byte_kwargs)


def gemm_arithmetic_intensity(
    n: int, h: int, f: int, dtype_bytes: int = 4
) -> float:
    """Ops per byte of a dense GEMM reading A, B and writing C once."""
    ops = 2 * n * h * f
    traffic = (n * h + h * f + n * f) * dtype_bytes
    return ops / traffic


def lut_memory_overhead(
    shape: LUTShape, weight_dtype_bytes: int = 2, lut_dtype_bytes: int = 1
) -> float:
    """LUT storage relative to the weight matrix it replaces.

    A (H, F) weight becomes a (CB, CT, F) = (H/V, CT, F) table, so the
    element-count ratio is CT / V; the byte ratio additionally reflects the
    datatypes (e.g. INT8 tables replacing FP16 weights).  This is the
    deployment cost LUT-NN pays for its compute reduction — with the
    paper's V=2/CT=16 setting the tables are 4x the FP16 weights' bytes,
    at V=4/CT=16 they are 2x.
    """
    weight_bytes = shape.h * shape.f * weight_dtype_bytes
    table_bytes = shape.lut_elements * lut_dtype_bytes
    # Codebooks themselves are negligible (CB * CT * V elements) but
    # included for completeness.
    codebook_bytes = shape.cb * shape.ct * shape.v * weight_dtype_bytes
    return (table_bytes + codebook_bytes) / weight_bytes
