"""Model calibration: the eLUT-NN algorithm and the baseline LUT-NN algorithm.

eLUT-NN (paper Section 4.2) jointly fine-tunes centroids and weights with

    L = ModelLoss + beta * sum_l ||A_l W - A_hat_l W||^2          (Eq. 1)

using the straight-through estimator to differentiate through the
closest-centroid-replacing function (Eq. 2).  The baseline calibrator models
the prior LUT-NN work [84]: temperature-annealed soft assignment trained on
the model loss alone — the approach whose accuracy collapses when *all*
linear layers are replaced (paper Tables 4–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..autograd import Adam, Tensor, accuracy, cross_entropy
from ..nn.module import Module
from .conversion import lut_layers, set_lut_mode

Batch = Tuple[object, np.ndarray]


def _record_step(
    result: "CalibrationResult", loss: float, model_loss: float, recon: float
) -> None:
    """Append one training step to the result and the telemetry series.

    The per-step loss curves land in the default registry as bounded
    ``Series`` metrics (``calibration.loss`` etc.), so a run's trajectory
    is inspectable from a ``--metrics-json`` dump without threading the
    :class:`CalibrationResult` through the call stack.
    """
    result.loss_history.append(loss)
    result.model_loss_history.append(model_loss)
    result.reconstruction_history.append(recon)
    registry = obs.get_registry()
    registry.counter("calibration.steps").inc()
    registry.series("calibration.loss").append(loss)
    registry.series("calibration.model_loss").append(model_loss)
    registry.series("calibration.reconstruction").append(recon)
    registry.gauge("calibration.last_loss").set(loss)


@dataclass
class CalibrationResult:
    """Training record of one calibration run."""

    steps: int
    loss_history: List[float] = field(default_factory=list)
    model_loss_history: List[float] = field(default_factory=list)
    reconstruction_history: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def evaluate_accuracy(model: Module, batches: Sequence[Batch]) -> float:
    """Top-1 accuracy of ``model`` over ``batches`` (no gradient tracking)."""
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with obs.get_tracer().span("calibration.evaluate_accuracy"):
        for inputs, targets in batches:
            logits = model(inputs)
            correct += int(round(accuracy(logits, targets) * len(targets)))
            total += len(targets)
    if was_training:
        model.train()
    acc = correct / max(total, 1)
    registry = obs.get_registry()
    registry.gauge("calibration.accuracy").set(acc)
    registry.series("calibration.accuracy_history").append(acc)
    return acc


class ELUTNNCalibrator:
    """Enhanced LUT-NN calibration (the paper's contribution).

    Parameters
    ----------
    beta:
        Reconstruction-loss penalty (paper uses 1e-3 for BERT, 1e-4 for ViT).
    lr:
        Adam learning rate (paper: 1e-5 for BERT-large, 5e-5 otherwise).
    calibrate_weights:
        When False only the centroids are updated — useful for ablating the
        joint weight/centroid calibration.
    """

    def __init__(
        self,
        beta: float = 1e-3,
        lr: float = 5e-4,
        calibrate_weights: bool = True,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
    ):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        self.beta = beta
        self.lr = lr
        self.calibrate_weights = calibrate_weights
        self.loss_fn = loss_fn

    def _trainable_parameters(self, model: Module) -> List[Tensor]:
        if self.calibrate_weights:
            return model.parameters()
        return [layer.centroids for _, layer in lut_layers(model)]

    def calibrate(
        self,
        model: Module,
        batches: Sequence[Batch],
        epochs: int = 1,
        max_steps: Optional[int] = None,
    ) -> CalibrationResult:
        """Run eLUT-NN calibration over ``batches`` for ``epochs`` passes."""
        layers = lut_layers(model)
        if not layers:
            raise ValueError("model contains no LUTLinear layers to calibrate")
        set_lut_mode(model, "calibrate")
        model.train()
        optimizer = Adam(self._trainable_parameters(model), lr=self.lr)
        result = CalibrationResult(steps=0)

        with obs.get_tracer().span(
            "calibration.calibrate", algorithm="elut-nn", beta=self.beta, lr=self.lr
        ) as span:
            for _ in range(epochs):
                for inputs, targets in batches:
                    if max_steps is not None and result.steps >= max_steps:
                        span.set_attribute("steps", result.steps)
                        return result
                    logits = model(inputs)
                    model_loss = self.loss_fn(logits, targets)
                    recon = None
                    for _, layer in layers:
                        term = layer.last_reconstruction_loss
                        if term is None:
                            continue
                        recon = term if recon is None else recon + term
                    loss = model_loss if recon is None else model_loss + self.beta * recon
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    # The step mutated every centroid tensor in place;
                    # invalidate the layers' cached CCS constants.
                    for _, layer in layers:
                        layer.mark_centroids_updated()

                    result.steps += 1
                    _record_step(
                        result,
                        loss.item(),
                        model_loss.item(),
                        recon.item() if recon is not None else 0.0,
                    )
            span.set_attribute("steps", result.steps)
        return result


class BaselineLUTNNCalibrator:
    """Baseline LUT-NN calibration modeling prior work [84].

    Differences from eLUT-NN, per the paper's analysis:

    * soft (temperature-annealed) centroid assignment instead of STE —
      gradients reach centroids only through the soft mixture, and the
      train/deploy mismatch grows as more layers are replaced;
    * no reconstruction loss — centroids receive no direct signal to model
      the activations, so errors compound layer by layer.
    """

    def __init__(
        self,
        lr: float = 5e-4,
        initial_temperature: float = 1.0,
        final_temperature: float = 0.05,
        anneal_steps: Optional[int] = None,
        gumbel_noise: bool = True,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
    ):
        """See class docstring.

        ``anneal_steps`` is the length of the temperature schedule.  The
        baseline's schedule is defined over its intended full-dataset
        training run ([84] trains on 100% of the training set); when it is
        run under a small calibration budget the schedule has barely
        advanced and the model deploys with a large soft-train / hard-infer
        mismatch — the data-inefficiency the paper's A1 claim highlights.
        Defaults to 100x the actual budget to model that recipe; pass the
        actual step count to anneal fully within the budget.
        """
        self.lr = lr
        self.initial_temperature = initial_temperature
        self.final_temperature = final_temperature
        self.anneal_steps = anneal_steps
        self.gumbel_noise = gumbel_noise
        self.loss_fn = loss_fn

    def calibrate(
        self,
        model: Module,
        batches: Sequence[Batch],
        epochs: int = 1,
        max_steps: Optional[int] = None,
    ) -> CalibrationResult:
        layers = lut_layers(model)
        if not layers:
            raise ValueError("model contains no LUTLinear layers to calibrate")
        set_lut_mode(model, "soft")
        model.train()
        optimizer = Adam(model.parameters(), lr=self.lr)
        result = CalibrationResult(steps=0)

        budget = epochs * len(batches)
        if max_steps is not None:
            budget = min(budget, max_steps)
        total_steps = self.anneal_steps if self.anneal_steps is not None else 100 * budget
        total_steps = max(total_steps, 1)

        step = 0
        with obs.get_tracer().span(
            "calibration.calibrate", algorithm="baseline-lut-nn", lr=self.lr
        ) as span:
            for _ in range(epochs):
                for inputs, targets in batches:
                    if max_steps is not None and step >= max_steps:
                        span.set_attribute("steps", step)
                        return result
                    # Exponential temperature annealing toward hard assignment.
                    progress = step / total_steps
                    temp = self.initial_temperature * (
                        (self.final_temperature / self.initial_temperature) ** progress
                    )
                    for _, layer in layers:
                        layer.temperature = temp
                        layer.gumbel_noise = self.gumbel_noise

                    logits = model(inputs)
                    loss = self.loss_fn(logits, targets)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    for _, layer in layers:
                        layer.mark_centroids_updated()

                    step += 1
                    result.steps = step
                    _record_step(result, loss.item(), loss.item(), 0.0)
            span.set_attribute("steps", step)
        return result
