"""Per-layer (V, CT) co-optimization: accuracy-vs-latency configuration.

The paper fixes one (V, CT) pair for the whole model and explores the
trade-off globally (Fig. 12-a/b: larger V and smaller CT are faster but
approximate more coarsely).  Different layers tolerate approximation very
differently, though — exactly what :class:`~repro.analysis.ErrorProbe`
measures.  This module closes the co-optimization loop at layer
granularity:

1. for every layer and every candidate (V, CT), *measure* the output
   approximation error on calibration activations and *model* the deployed
   latency (tuned LUT kernel + host CCS);
2. pick a per-layer assignment that minimizes total predicted error subject
   to a latency budget, by Lagrangian sweep over the per-layer Pareto
   frontiers.

The result is a :class:`LayerConfigPlan` mapping layer names to (V, CT),
directly consumable by ``convert_to_lut_nn``'s per-layer converter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.roofline import RooflineDevice
from ..mapping.tuner import AutoTuner
from ..nn.module import Module
from ..pim.platforms import PIMPlatform
from .ccs import hard_replace
from .codebook import Codebooks, LUTShape
from .conversion import LayerFilter, find_target_linears, record_activations

#: Default candidate grid, spanning the paper's evaluated settings.
DEFAULT_CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (2, 16), (2, 8), (4, 16), (4, 8), (8, 16), (8, 8)
)


@dataclass(frozen=True)
class CandidatePoint:
    """One (V, CT) option for one layer."""

    v: int
    ct: int
    error: float  # relative output error on calibration activations
    latency_s: float  # tuned LUT kernel + host CCS


@dataclass
class LayerConfigPlan:
    """Chosen per-layer configuration plus its predicted totals."""

    assignment: Dict[str, Tuple[int, int]]
    predicted_latency_s: float
    predicted_error: float
    frontier: Dict[str, List[CandidatePoint]] = field(default_factory=dict)

    def config_for(self, layer_name: str) -> Tuple[int, int]:
        return self.assignment[layer_name]


def _ccs_latency(host: RooflineDevice, n: int, h: int, v: int, ct: int) -> float:
    cb = h // v
    distance = host.small_k_gemm_time(n * cb, v, ct)
    argmin = host.op_time(n * cb * ct, n * cb * ct * 4.0)
    return distance + argmin


def measure_candidates(
    model: Module,
    forward_batches: Sequence,
    platform: PIMPlatform,
    host: RooflineDevice,
    serving_rows: int,
    candidates: Sequence[Tuple[int, int]] = DEFAULT_CANDIDATES,
    layer_filter: Optional[LayerFilter] = None,
    rng: Optional[np.random.Generator] = None,
    max_rows: int = 4096,
) -> Dict[str, List[CandidatePoint]]:
    """Per-layer error/latency of every legal candidate (step 1)."""
    rng = rng or np.random.default_rng()
    targets = find_target_linears(model, layer_filter)
    if not targets:
        raise ValueError("no linear layers matched the filter")
    recorder = record_activations(model, forward_batches, targets, max_rows=max_rows)
    tuner = AutoTuner(platform)

    frontier: Dict[str, List[CandidatePoint]] = {}
    for name, layer in targets:
        activations = recorder.activations(name)
        weight = layer.weight.data
        exact = activations @ weight
        exact_norm = np.linalg.norm(exact) or 1.0
        points = []
        for v, ct in candidates:
            if layer.in_features % v or activations.shape[0] < ct:
                continue
            codebooks = Codebooks.from_activations(activations, v=v, ct=ct, rng=rng)
            approx = hard_replace(activations, codebooks) @ weight
            error = float(np.linalg.norm(approx - exact) / exact_norm)
            shape = LUTShape(
                n=serving_rows, h=layer.in_features, f=layer.out_features, v=v, ct=ct
            )
            latency = tuner.tune(shape).cost
            latency += _ccs_latency(host, serving_rows, layer.in_features, v, ct)
            points.append(CandidatePoint(v=v, ct=ct, error=error, latency_s=latency))
        if not points:
            raise ValueError(f"no legal candidates for layer {name!r}")
        frontier[name] = sorted(points, key=lambda p: p.latency_s)
    return frontier


def _assign_for_lambda(
    frontier: Dict[str, List[CandidatePoint]], lam: float
) -> Dict[str, CandidatePoint]:
    """Per-layer argmin of ``error + lam * latency`` (separable objective)."""
    return {
        name: min(points, key=lambda p: p.error + lam * p.latency_s)
        for name, points in frontier.items()
    }


def plan_layer_configs(
    frontier: Dict[str, List[CandidatePoint]],
    latency_budget_s: float,
    sweep_points: int = 64,
) -> LayerConfigPlan:
    """Choose per-layer (V, CT) minimizing error under the budget (step 2).

    The objective is separable across layers, so sweeping the Lagrange
    multiplier traces the convex hull of the global error/latency frontier;
    the tightest assignment meeting the budget is returned.  Raises when
    even the all-fastest assignment exceeds the budget.
    """
    if latency_budget_s <= 0:
        raise ValueError("latency budget must be positive")

    fastest = {name: min(p.latency_s for p in points) for name, points in frontier.items()}
    if sum(fastest.values()) > latency_budget_s:
        raise ValueError(
            f"budget {latency_budget_s:.4f}s below the fastest feasible "
            f"total {sum(fastest.values()):.4f}s"
        )

    best: Optional[Tuple[float, Dict[str, CandidatePoint]]] = None
    for lam in np.logspace(-3, 6, sweep_points):
        chosen = _assign_for_lambda(frontier, lam)
        total_latency = sum(p.latency_s for p in chosen.values())
        total_error = sum(p.error for p in chosen.values())
        if total_latency <= latency_budget_s:
            if best is None or total_error < best[0]:
                best = (total_error, chosen)
    if best is None:  # pragma: no cover - guarded by the fastest check
        raise RuntimeError("Lagrangian sweep found no feasible assignment")

    total_error, chosen = best
    return LayerConfigPlan(
        assignment={name: (p.v, p.ct) for name, p in chosen.items()},
        predicted_latency_s=sum(p.latency_s for p in chosen.values()),
        predicted_error=total_error,
        frontier=frontier,
    )


def uniform_plan(
    frontier: Dict[str, List[CandidatePoint]], v: int, ct: int
) -> LayerConfigPlan:
    """The paper's uniform-(V, CT) assignment, for comparison."""
    assignment = {}
    latency = 0.0
    error = 0.0
    for name, points in frontier.items():
        match = next((p for p in points if (p.v, p.ct) == (v, ct)), None)
        if match is None:
            raise KeyError(f"({v}, {ct}) not measured for layer {name!r}")
        assignment[name] = (v, ct)
        latency += match.latency_s
        error += match.error
    return LayerConfigPlan(
        assignment=assignment,
        predicted_latency_s=latency,
        predicted_error=error,
        frontier=frontier,
    )
