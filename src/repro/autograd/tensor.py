"""Reverse-mode automatic differentiation on numpy arrays.

This module is the training substrate for the eLUT-NN calibration algorithm
(paper Section 4.2).  The paper implements calibration in PyTorch; this
environment has no deep-learning framework, so we provide a small tape-based
autograd engine exposing exactly the operations the transformer workloads and
the LUT-NN calibrators need.

The design is deliberately simple: every differentiable operation builds a
node holding a backward closure, and :meth:`Tensor.backward` runs a reverse
topological sweep.  Broadcasting is handled by summing gradients back to the
operand shape (:func:`unbroadcast`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after numpy broadcasting.

    Gradients flowing into a broadcast operand must be summed over the axes
    that were expanded.  This inverts numpy's broadcast rules: leading axes
    that did not exist in ``shape`` are summed away, and axes of size one are
    summed with ``keepdims``.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an attached gradient tape.

    Parameters
    ----------
    data:
        Array contents; copied to ``float64``/``float32`` only if needed.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ones (i.e. the tensor is treated as a scalar
        loss when it has a single element).  Each node's backward closure is
        invoked exactly once with the fully accumulated output gradient, so
        diamond-shaped graphs (residual connections) cost linear time.
        """
        global _ACTIVE_GRADS
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the tape (iterative DFS).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        pending: dict[int, np.ndarray] = {id(self): grad}
        previous = _ACTIVE_GRADS
        _ACTIVE_GRADS = pending
        try:
            for node in reversed(topo):
                node_grad = pending.pop(id(node), None)
                if node_grad is None:
                    continue
                if node._backward is not None and node._prev:
                    node._backward(node_grad)
                else:
                    node._accumulate(node_grad)
        finally:
            _ACTIVE_GRADS = previous

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                _route(self, unbroadcast(grad, self.shape))
            if other.requires_grad:
                _route(other, unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            _route(self, -grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                _route(self, unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                _route(other, unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                _route(self, unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                _route(
                    other,
                    unbroadcast(-grad * self.data / (other.data**2), other.shape),
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                _route(self, unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                _route(other, unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            _route(self, grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            _route(self, full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            _route(self, np.broadcast_to(g, original).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / count

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = out_data
            g = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis=axis)
                g = np.expand_dims(g, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            _route(self, mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            _route(self, grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to [low, high]; gradient is zero outside the band."""
        if low > high:
            raise ValueError("clip requires low <= high")
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            _route(self, grad * inside)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))


def _as_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


#: Gradient accumulation map for the backward pass currently in flight.
_ACTIVE_GRADS: Optional[dict] = None


def _route(tensor: Tensor, grad: np.ndarray) -> None:
    """Deliver ``grad`` to ``tensor`` within the active backward pass.

    Interior nodes have their gradient accumulated in the pending map and
    their own backward closure is invoked later (once) by
    :meth:`Tensor.backward`'s reverse-topological sweep; leaves accumulate
    straight into ``.grad``.
    """
    if tensor._backward is not None and tensor._prev and _ACTIVE_GRADS is not None:
        key = id(tensor)
        existing = _ACTIVE_GRADS.get(key)
        _ACTIVE_GRADS[key] = grad if existing is None else existing + grad
    else:
        tensor._accumulate(grad)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(tuple(shape)), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(tuple(shape)), requires_grad=requires_grad)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    parents = tuple(tensors)
    out_data = np.concatenate([t.data for t in parents], axis=axis)
    sizes = [t.shape[axis] for t in parents]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(parents, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            if t.requires_grad:
                _route(t, grad[tuple(index)])

    return Tensor._make(out_data, parents, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    parents = tuple(tensors)
    out_data = np.stack([t.data for t in parents], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for t, piece in zip(parents, pieces):
            if t.requires_grad:
                _route(t, piece)

    return Tensor._make(out_data, parents, backward)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum; ties split gradient evenly."""
    a, b = _as_tensor(a), _as_tensor(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a_wins = (a.data > b.data).astype(np.float64)
        ties = (a.data == b.data).astype(np.float64) * 0.5
        if a.requires_grad:
            _route(a, unbroadcast(grad * (a_wins + ties), a.shape))
        if b.requires_grad:
            _route(b, unbroadcast(grad * (1.0 - a_wins - ties), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise minimum."""
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable ``np.where`` with a constant condition."""
    a, b = _as_tensor(a), _as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            _route(a, unbroadcast(np.where(cond, grad, 0.0), a.shape))
        if b.requires_grad:
            _route(b, unbroadcast(np.where(cond, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)
