"""Differentiable functional operations built on :class:`~repro.autograd.Tensor`.

These cover the activation, normalization, and loss functions that the
transformer workloads and LUT-NN calibrators require, mirroring the subset of
``torch.nn.functional`` the paper's PyTorch implementation uses.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _route


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    inner = 0.7978845608028654 * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return 1.0 / (1.0 + (-x).exp())


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets``.

    This is the "Model Loss" term of the eLUT-NN calibration objective
    (paper Eq. 1).
    """
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = logp[np.arange(n), targets]
    return -picked.mean()


def mse(a: Tensor, b: Tensor) -> Tensor:
    """Mean squared error between two tensors."""
    diff = a - b
    return (diff * diff).mean()


def l2_reconstruction(approx: Tensor, exact: Tensor) -> Tensor:
    """Squared-L2 reconstruction error ``||A_hat W - A W||^2`` (paper Eq. 1).

    Returned as a mean over all elements so the penalty weight ``beta`` is
    comparable across layer shapes.
    """
    diff = approx - exact
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; identity when not training or ``rate`` is zero."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        _route(x, grad * mask)

    return Tensor._make(out_data, (x,), backward)


def ste_hard_assign(x: Tensor, hard: np.ndarray) -> Tensor:
    """Straight-through estimator: forward ``hard``, backward identity to ``x``.

    This implements the paper's Eq. 2: the closest-centroid-replacing
    function ``H(.)`` is not differentiable, so its Jacobian is approximated
    by the identity, letting gradients flow to whatever produced ``x``.
    """
    hard = np.asarray(hard, dtype=np.float64)
    if hard.shape != x.shape:
        raise ValueError(f"STE shape mismatch: {hard.shape} vs {x.shape}")

    def backward(grad: np.ndarray) -> None:
        _route(x, grad)

    return Tensor._make(hard, (x,), backward)


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = logits.data.argmax(axis=-1)
    return float((predictions == np.asarray(targets)).mean())
