"""Minimal reverse-mode autodiff engine (substrate for eLUT-NN calibration)."""

from . import functional, init, optim
from .functional import (
    accuracy,
    cross_entropy,
    dropout,
    gelu,
    l2_reconstruction,
    log_softmax,
    mse,
    relu,
    sigmoid,
    softmax,
    ste_hard_assign,
)
from .optim import SGD, Adam, Optimizer
from .tensor import (Tensor, concatenate, maximum, minimum, ones, stack,
                     tensor, unbroadcast, where, zeros)

__all__ = [
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "unbroadcast",
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "sigmoid",
    "cross_entropy",
    "mse",
    "l2_reconstruction",
    "dropout",
    "ste_hard_assign",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "functional",
    "optim",
    "init",
]
