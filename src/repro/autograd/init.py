"""Weight initialization schemes for the neural-network substrate."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) matrix."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=(fan_in, fan_out)), requires_grad=True)


def normal(shape: tuple, std: float, rng: np.random.Generator) -> Tensor:
    """Zero-mean Gaussian initialization (BERT uses std=0.02)."""
    return Tensor(rng.normal(0.0, std, size=shape), requires_grad=True)


def zeros(shape: tuple) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=True)


def ones(shape: tuple) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=True)
