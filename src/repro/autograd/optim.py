"""Gradient-descent optimizers for calibration training.

The paper calibrates with learning rates of 1e-5–5e-5 (Section 6.2) using a
standard Adam-style optimizer; both SGD (with momentum) and Adam are provided.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class: tracks parameters and clears their gradients."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the paper's calibration optimizer."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
