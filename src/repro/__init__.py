"""repro — a reproduction of PIM-DL (ASPLOS 2024).

PIM-DL expands the applicability of commodity DRAM-PIMs (UPMEM PIM-DIMM,
Samsung HBM-PIM, SK-Hynix AiM) to deep learning by replacing the GEMMs of
transformer linear layers with table lookups (LUT-NN), calibrated with the
eLUT-NN algorithm and mapped onto PIM hardware by an analytical auto-tuner.

Package map
-----------
``repro.autograd``   numpy reverse-mode autodiff (calibration substrate)
``repro.nn``         module system + transformer models
``repro.core``       LUT-NN conversion, operators, eLUT-NN calibration
``repro.kernels``    fast host kernels: cached/blocked CCS, fused LUT gather
``repro.pim``        DRAM-PIM platform models, kernels, event simulator
``repro.mapping``    mapping space, analytical model (Eqs. 3-10), auto-tuner
``repro.engine``     PIM-DL inference engine + baseline engines
``repro.baselines``  CPU/GPU roofline hosts
``repro.workloads``  model configs and synthetic tasks
``repro.analysis``   FLOP/roofline analytics and reporting
``repro.obs``        telemetry: metrics registry, span tracing, trace export

Quickstart
----------
>>> from repro import convert_to_lut_nn, ELUTNNCalibrator  # doctest: +SKIP

See ``examples/quickstart.py`` for the full conversion → calibration →
deployment walkthrough and ``benchmarks/`` for the paper's experiments.
"""

from . import (
    analysis,
    autograd,
    baselines,
    core,
    engine,
    kernels,
    mapping,
    nn,
    obs,
    pim,
    workloads,
)
from .core import (
    BaselineLUTNNCalibrator,
    Codebooks,
    ELUTNNCalibrator,
    LUTLinear,
    LUTShape,
    convert_to_lut_nn,
    evaluate_accuracy,
    freeze_all_luts,
    set_lut_mode,
)
from .engine import GEMMPIMEngine, HostEngine, PIMDLEngine
from .kernels import CCSKernel, HostKernelProfile, measure_host_kernels
from .mapping import AutoTuner, Mapping
from .pim import PIMSimulator, get_platform

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "core",
    "kernels",
    "pim",
    "mapping",
    "engine",
    "baselines",
    "workloads",
    "analysis",
    "obs",
    "LUTShape",
    "Codebooks",
    "LUTLinear",
    "convert_to_lut_nn",
    "set_lut_mode",
    "freeze_all_luts",
    "ELUTNNCalibrator",
    "BaselineLUTNNCalibrator",
    "evaluate_accuracy",
    "CCSKernel",
    "HostKernelProfile",
    "measure_host_kernels",
    "AutoTuner",
    "Mapping",
    "PIMSimulator",
    "get_platform",
    "PIMDLEngine",
    "GEMMPIMEngine",
    "HostEngine",
    "__version__",
]
