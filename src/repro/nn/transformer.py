"""Transformer encoder blocks (post-norm, BERT/ViT style).

Each block contains exactly the four LUT-convertible linear layers the paper
enumerates in Fig. 6-(b): the fused QKV projection, the output (O)
projection, FFN1, and FFN2.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .attention import MultiHeadAttention
from .layers import Dropout, GELU, LayerNorm, Linear
from .module import Module, ModuleList


class FeedForward(Module):
    """Two-layer position-wise FFN with GELU (hidden = mlp_ratio * dim)."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator = None):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.act(self.fc1(x)))


class EncoderLayer(Module):
    """Post-norm transformer encoder layer (as in BERT and the original ViT)."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        causal: bool = False,
        rng: np.random.Generator = None,
        moe_experts: int = None,
        moe_top_k: int = 2,
    ):
        super().__init__()
        self.attention = MultiHeadAttention(dim, num_heads, causal=causal, rng=rng)
        self.norm1 = LayerNorm(dim)
        if moe_experts is None:
            self.ffn = FeedForward(dim, mlp_ratio * dim, rng=rng)
        else:
            # Local import: moe.py reuses FeedForward as the expert MLP.
            from .moe import MoEFeedForward

            self.ffn = MoEFeedForward(
                dim, mlp_ratio * dim, moe_experts, top_k=moe_top_k, rng=rng
            )
        self.norm2 = LayerNorm(dim)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray = None) -> Tensor:
        x = self.norm1(x + self.drop(self.attention(x, mask=mask)))
        x = self.norm2(x + self.drop(self.ffn(x)))
        return x

    def forward_incremental(self, x: Tensor, cache) -> Tensor:
        """Decode-phase forward for new tokens only, against a KV cache."""
        x = self.norm1(x + self.attention.forward_incremental(x, cache))
        x = self.norm2(x + self.ffn(x))
        return x


class TransformerEncoder(Module):
    """Stack of encoder layers."""

    def __init__(
        self,
        num_layers: int,
        dim: int,
        num_heads: int,
        mlp_ratio: int = 4,
        dropout: float = 0.0,
        causal: bool = False,
        rng: np.random.Generator = None,
        moe_experts: int = None,
        moe_top_k: int = 2,
    ):
        super().__init__()
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        self.layers = ModuleList(
            EncoderLayer(
                dim, num_heads, mlp_ratio, dropout, causal=causal, rng=rng,
                moe_experts=moe_experts, moe_top_k=moe_top_k,
            )
            for _ in range(num_layers)
        )

    def forward(self, x: Tensor, mask: np.ndarray = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x

    def make_caches(self):
        """Fresh per-layer KV caches for incremental decoding."""
        from .attention import KVCache

        return [KVCache() for _ in self.layers]

    def forward_incremental(self, x: Tensor, caches) -> Tensor:
        """Decode-phase forward of new tokens against per-layer caches."""
        if len(caches) != len(self.layers):
            raise ValueError("one KV cache per layer required")
        for layer, cache in zip(self.layers, caches):
            x = layer.forward_incremental(x, cache)
        return x
