"""Module system: parameter registration, traversal, and (de)serialization.

Mirrors the slice of ``torch.nn.Module`` the PIM-DL converter relies on:
recursive parameter collection, named-module traversal (used to locate the
linear layers to replace with LUTs), and train/eval mode switching.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autograd import Tensor


class Module:
    """Base class for all network components."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """All trainable parameters, depth-first, without duplicates."""
        seen: set = set()
        out: List[Tensor] = []
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def replace_module(self, qualified_name: str, new: "Module") -> None:
        """Replace the submodule at ``qualified_name`` (dot path) with ``new``.

        This is the hook the LUT-NN converter uses to swap ``Linear`` layers
        for ``LUTLinear`` layers in place.
        """
        parts = qualified_name.split(".")
        parent = self
        for part in parts[:-1]:
            if part not in parent._modules:
                raise KeyError(f"no submodule {part!r} in path {qualified_name!r}")
            parent = parent._modules[part]
        leaf = parts[-1]
        if leaf not in parent._modules:
            raise KeyError(f"no submodule {leaf!r} in path {qualified_name!r}")
        parent.register_module(leaf, new)

    # ------------------------------------------------------------------
    # Modes and state
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        self.training = True
        for m in self.children():
            m.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for m in self.children():
            m.eval()
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data, keyed by qualified name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{state[name].shape} vs {param.data.shape}"
                )
            param.data = state[name].copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class ModuleList(Module):
    """Indexable list of submodules (e.g. transformer encoder layers)."""

    def __init__(self, modules=()):
        super().__init__()
        self._order: List[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        name = str(len(self._order))
        self.register_module(name, module)
        self._order.append(name)

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]
