"""Neural-network substrate: modules, layers, and transformer models."""

from .attention import KVCache, MultiHeadAttention
from .layers import (
    DEFAULT_INIT_STD,
    DEFAULT_RNG_SEED,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Tanh,
    default_rng,
    reset_default_rng,
)
from .models import DecoderLM, PatchClassifier, TextClassifier
from .module import Module, ModuleList, Sequential
from .moe import MoEFeedForward
from .transformer import EncoderLayer, FeedForward, TransformerEncoder

__all__ = [
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "LayerNorm",
    "Embedding",
    "GELU",
    "ReLU",
    "Tanh",
    "Dropout",
    "DEFAULT_INIT_STD",
    "DEFAULT_RNG_SEED",
    "default_rng",
    "reset_default_rng",
    "MultiHeadAttention",
    "KVCache",
    "FeedForward",
    "MoEFeedForward",
    "EncoderLayer",
    "TransformerEncoder",
    "TextClassifier",
    "PatchClassifier",
    "DecoderLM",
]
