"""Neural-network substrate: modules, layers, and transformer models."""

from .attention import KVCache, MultiHeadAttention
from .layers import (
    DEFAULT_INIT_STD,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    ReLU,
    Tanh,
)
from .models import DecoderLM, PatchClassifier, TextClassifier
from .module import Module, ModuleList, Sequential
from .transformer import EncoderLayer, FeedForward, TransformerEncoder

__all__ = [
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "LayerNorm",
    "Embedding",
    "GELU",
    "ReLU",
    "Tanh",
    "Dropout",
    "DEFAULT_INIT_STD",
    "MultiHeadAttention",
    "KVCache",
    "FeedForward",
    "EncoderLayer",
    "TransformerEncoder",
    "TextClassifier",
    "PatchClassifier",
    "DecoderLM",
]
