"""End-to-end classifier models in the shapes the paper evaluates.

``TextClassifier`` stands in for the BERT-family models on GLUE-style tasks;
``PatchClassifier`` stands in for the ViT-family models on CIFAR-style tasks.
Both are trained from scratch on synthetic datasets (see
``repro.workloads``) at scaled-down sizes; the *architectural* structure —
embedding, encoder stack with four linear layers per block, pooled
classification head — matches the paper's workloads exactly.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..autograd.init import normal
from .layers import (DEFAULT_INIT_STD, Embedding, LayerNorm, Linear, Tanh,
                     default_rng)
from .module import Module
from .transformer import TransformerEncoder


class TextClassifier(Module):
    """BERT-style encoder classifier over integer token sequences.

    A learned [CLS]-position pooling (first token, tanh head) mirrors BERT's
    pooler; the classification head itself is *not* LUT-converted, matching
    the paper which replaces only the encoder's linear layers.
    """

    def __init__(
        self,
        vocab_size: int,
        max_seq_len: int,
        num_classes: int,
        dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        mlp_ratio: int = 4,
        rng: np.random.Generator = None,
        moe_experts: int = None,
        moe_top_k: int = 2,
    ):
        super().__init__()
        if rng is None:
            rng = default_rng()
        self.max_seq_len = max_seq_len
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = normal((max_seq_len, dim), DEFAULT_INIT_STD, rng)
        self.embed_norm = LayerNorm(dim)
        self.encoder = TransformerEncoder(
            num_layers, dim, num_heads, mlp_ratio, rng=rng,
            moe_experts=moe_experts, moe_top_k=moe_top_k,
        )
        self.pooler = Linear(dim, dim, rng=rng)
        self.pool_act = Tanh()
        self.classifier = Linear(dim, num_classes, rng=rng)

    def forward(self, tokens: np.ndarray, mask: np.ndarray = None) -> Tensor:
        tokens = np.asarray(tokens)
        seq_len = tokens.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(f"sequence length {seq_len} exceeds max {self.max_seq_len}")
        x = self.token_embed(tokens) + self.pos_embed[:seq_len]
        x = self.embed_norm(x)
        x = self.encoder(x, mask=mask)
        cls = x[:, 0, :]
        pooled = self.pool_act(self.pooler(cls))
        return self.classifier(pooled)


class DecoderLM(Module):
    """GPT-style causal language model over integer token sequences.

    Used by the decode-phase experiments: the paper notes HBM-PIM/AiM
    already target single-batch GPT inference (GEMV-dominated); this model
    provides a functional decoder whose linear layers are LUT-convertible
    just like the classifiers'.
    """

    def __init__(
        self,
        vocab_size: int,
        max_seq_len: int,
        dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        mlp_ratio: int = 4,
        rng: np.random.Generator = None,
        moe_experts: int = None,
        moe_top_k: int = 2,
    ):
        super().__init__()
        if rng is None:
            rng = default_rng()
        self.vocab_size = vocab_size
        self.max_seq_len = max_seq_len
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = normal((max_seq_len, dim), DEFAULT_INIT_STD, rng)
        self.encoder = TransformerEncoder(
            num_layers, dim, num_heads, mlp_ratio, causal=True, rng=rng,
            moe_experts=moe_experts, moe_top_k=moe_top_k,
        )
        self.norm = LayerNorm(dim)
        self.lm_head = Linear(dim, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Next-token logits of shape (batch, seq, vocab)."""
        tokens = np.asarray(tokens)
        seq_len = tokens.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(f"sequence length {seq_len} exceeds max {self.max_seq_len}")
        x = self.token_embed(tokens) + self.pos_embed[:seq_len]
        x = self.encoder(x)
        x = self.norm(x)
        return self.lm_head(x)

    def _embed(self, tokens: np.ndarray, position_offset: int = 0) -> Tensor:
        seq_len = tokens.shape[1]
        positions = self.pos_embed[position_offset : position_offset + seq_len]
        return self.token_embed(tokens) + positions

    def _sample(self, logits: np.ndarray, greedy: bool, rng) -> np.ndarray:
        if greedy:
            return logits.argmax(axis=-1)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        return np.array([rng.choice(self.vocab_size, p=p) for p in probs])

    def generate(
        self,
        prompt: np.ndarray,
        new_tokens: int,
        rng: np.random.Generator = None,
        greedy: bool = True,
        use_cache: bool = False,
    ) -> np.ndarray:
        """Autoregressively extend ``prompt`` (batch, seq) by ``new_tokens``.

        ``use_cache=True`` decodes incrementally against per-layer KV
        caches — O(context) per token instead of O(context^2) — producing
        identical greedy output (sequences must fit ``max_seq_len``).
        """
        if new_tokens < 0:
            raise ValueError("new_tokens must be non-negative")
        rng = rng or np.random.default_rng()
        tokens = np.asarray(prompt).copy()
        if not use_cache:
            for _ in range(new_tokens):
                window = tokens[:, -self.max_seq_len :]
                logits = self.forward(window).data[:, -1, :]
                next_token = self._sample(logits, greedy, rng)
                tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
            return tokens

        if tokens.shape[1] + new_tokens > self.max_seq_len:
            raise ValueError("cached generation cannot exceed max_seq_len")
        caches = self.encoder.make_caches()
        x = self.encoder.forward_incremental(self._embed(tokens), caches)
        for _ in range(new_tokens):
            hidden = self.norm(x[:, -1:, :])
            logits = self.lm_head(hidden).data[:, -1, :]
            next_token = self._sample(logits, greedy, rng)
            tokens = np.concatenate([tokens, next_token[:, None]], axis=1)
            fresh = self._embed(tokens[:, -1:], position_offset=tokens.shape[1] - 1)
            x = self.encoder.forward_incremental(fresh, caches)
        return tokens


class PatchClassifier(Module):
    """ViT-style classifier over pre-extracted image patches.

    Input is (batch, num_patches, patch_dim) — patch extraction from raw
    pixels is a fixed reshaping, so the model starts at the linear patch
    projection, exactly like ViT's first layer.
    """

    def __init__(
        self,
        num_patches: int,
        patch_dim: int,
        num_classes: int,
        dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        mlp_ratio: int = 4,
        rng: np.random.Generator = None,
        moe_experts: int = None,
        moe_top_k: int = 2,
    ):
        super().__init__()
        if rng is None:
            rng = default_rng()
        self.num_patches = num_patches
        self.patch_proj = Linear(patch_dim, dim, rng=rng)
        self.cls_token = normal((1, 1, dim), DEFAULT_INIT_STD, rng)
        self.pos_embed = normal((num_patches + 1, dim), DEFAULT_INIT_STD, rng)
        self.encoder = TransformerEncoder(
            num_layers, dim, num_heads, mlp_ratio, rng=rng,
            moe_experts=moe_experts, moe_top_k=moe_top_k,
        )
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)

    def forward(self, patches) -> Tensor:
        if not isinstance(patches, Tensor):
            patches = Tensor(np.asarray(patches, dtype=np.float64))
        batch = patches.shape[0]
        x = self.patch_proj(patches)  # (batch, num_patches, dim)
        # Broadcast the learnable [CLS] token across the batch; the zero
        # tensor carries the batch dim while gradients flow to cls_token.
        cls = Tensor(np.zeros((batch, 1, x.shape[2]))) + self.cls_token
        from ..autograd import concatenate

        x = concatenate([cls, x], axis=1) + self.pos_embed
        x = self.encoder(x)
        x = self.norm(x)
        return self.head(x[:, 0, :])
