"""Mixture-of-Experts feed-forward layer (top-k gated expert MLPs).

``MoEFeedForward`` is a drop-in replacement for the dense
:class:`repro.nn.transformer.FeedForward` block: same input/output shape,
same per-expert MLP structure (fc1 -> GELU -> fc2), but each token is
processed by only its ``top_k`` highest-scoring experts, weighted by a
softmax renormalized over the selected gate logits (Shazeer et al.;
Switch/GShard routing).

Two properties matter for the LUT-NN serving model downstream:

* every expert is an ordinary stack of :class:`repro.nn.layers.Linear`
  layers, so the standard ``convert_to_lut_nn`` path turns each expert
  into LUT form unchanged (the gate stays dense — its output is a
  *discrete* routing decision, which centroid quantization would flip);
* the layer records its last routing decision (``last_assignments`` /
  ``last_expert_tokens``), the token-to-expert histogram the simulator
  prices as rank contention.

Routing is deterministic given the weights: ties in the gate logits break
toward the lower expert index (stable argsort), so a seeded model routes
identically run-to-run.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autograd import Tensor
from .layers import Linear, default_rng
from .module import Module, ModuleList
from .transformer import FeedForward


class MoEFeedForward(Module):
    """Top-k gated mixture of ``FeedForward`` experts.

    Parameters
    ----------
    dim, hidden_dim:
        Expert MLP dims, identical to the dense ``FeedForward`` they
        replace.
    num_experts:
        Number of expert MLPs (must be positive).
    top_k:
        Experts consulted per token, ``1 <= top_k <= num_experts``.
    """

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        num_experts: int,
        top_k: int = 2,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if dim <= 0 or hidden_dim <= 0:
            raise ValueError("dim and hidden_dim must be positive")
        if num_experts <= 0:
            raise ValueError("num_experts must be positive")
        if top_k <= 0 or top_k > num_experts:
            raise ValueError("top_k must be in [1, num_experts]")
        if rng is None:
            rng = default_rng()
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.gate = Linear(dim, num_experts, bias=False, rng=rng)
        self.experts = ModuleList(
            [FeedForward(dim, hidden_dim, rng=rng) for _ in range(num_experts)]
        )
        #: (tokens, top_k) expert indices of the most recent forward pass.
        self.last_assignments: Optional[np.ndarray] = None
        #: (num_experts,) token counts of the most recent forward pass.
        self.last_expert_tokens: Optional[np.ndarray] = None

    def route(self, logits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k selection + softmax renormalization over selected logits.

        Returns ``(weights, assignments)`` where ``weights`` is a dense
        (..., num_experts) array that is zero outside the selected experts
        and sums to 1 over them, and ``assignments`` is (tokens, top_k)
        selected expert indices (descending score).
        """
        flat = np.asarray(logits, dtype=np.float64).reshape(-1, self.num_experts)
        # Stable sort so logit ties route to the lower expert index.
        order = np.argsort(-flat, axis=1, kind="stable")[:, : self.top_k]
        top = np.take_along_axis(flat, order, axis=1)
        top = np.exp(top - top.max(axis=1, keepdims=True))
        top /= top.sum(axis=1, keepdims=True)
        weights = np.zeros_like(flat)
        np.put_along_axis(weights, order, top, axis=1)
        return weights.reshape(np.shape(logits)), order

    def forward(self, x: Tensor) -> Tensor:
        logits = self.gate(x)
        weights, assignments = self.route(logits.data)
        self.last_assignments = assignments
        self.last_expert_tokens = np.bincount(
            assignments.ravel(), minlength=self.num_experts
        )
        # Dense evaluation: every expert sees every token and is masked by
        # its gate weight.  Mathematically identical to sparse dispatch
        # (zero-weight positions contribute zero); the simulator, not this
        # reference implementation, models the sparse per-expert cost.
        out: Optional[Tensor] = None
        for e, expert in enumerate(self.experts):
            w = weights[..., e : e + 1]
            if not np.any(w):
                continue
            term = expert(x) * w
            out = term if out is None else out + term
        assert out is not None  # top_k >= 1 selects at least one expert
        return out

    def __repr__(self) -> str:
        return (
            f"MoEFeedForward(dim={self.dim}, hidden={self.hidden_dim}, "
            f"experts={self.num_experts}, top_k={self.top_k})"
        )
