"""Basic layers: Linear, LayerNorm, Embedding, activations, dropout.

``Linear`` is the layer class the LUT-NN converter targets — every instance
in a model's QKV/O projections and FFNs is replaced by a
:class:`repro.core.lut_linear.LUTLinear` during conversion (paper Fig. 6).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, functional as F
from ..autograd.init import normal, ones, zeros
from .module import Module

#: BERT's weight initialization standard deviation.
DEFAULT_INIT_STD = 0.02

#: Seed of the module-level default generator used when a layer is built
#: without an explicit ``rng``.  Layers used to fall back to an *unseeded*
#: ``np.random.default_rng()``, so two identically-constructed models (and
#: anything downstream of their weights, e.g. MoE gate routing) diverged
#: run-to-run.  A shared seeded generator keeps default construction
#: reproducible while still giving every layer distinct weights.
DEFAULT_RNG_SEED = 0

_default_rng = np.random.default_rng(DEFAULT_RNG_SEED)


def default_rng() -> np.random.Generator:
    """The shared seeded generator layers fall back to when ``rng=None``."""
    return _default_rng


def reset_default_rng(seed: int = DEFAULT_RNG_SEED) -> np.random.Generator:
    """Re-seed the shared default generator (test isolation / fresh runs).

    Returns the new generator so callers can hold a direct reference.
    """
    global _default_rng
    if seed is None or seed < 0:
        raise ValueError("seed must be a non-negative int")
    _default_rng = np.random.default_rng(seed)
    return _default_rng


class Linear(Module):
    """Affine map ``y = x W + b`` with weight shape (in_features, out_features).

    In paper notation the activation is N×H, the weight is H×F (stored here
    as ``weight`` with shape (H, F)), and the output is N×F.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator = None,
    ):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dims must be positive")
        if rng is None:
            rng = default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = normal((in_features, out_features), DEFAULT_INIT_STD, rng)
        self.bias = zeros((out_features,)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class LayerNorm(Module):
    """Layer normalization over the last dimension (Ba et al.)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = ones((dim,))
        self.beta = zeros((dim,))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Token embedding lookup table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator = None):
        super().__init__()
        if vocab_size <= 0 or dim <= 0:
            raise ValueError("vocab_size and dim must be positive")
        if rng is None:
            rng = default_rng()
        self.vocab_size = vocab_size
        self.dim = dim
        self.weight = normal((vocab_size, dim), DEFAULT_INIT_STD, rng)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min() < 0 or indices.max() >= self.vocab_size:
            raise IndexError("token id out of vocabulary range")
        return self.weight[indices]


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = default_rng() if rng is None else rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self.rng)
