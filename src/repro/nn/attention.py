"""Multi-head self-attention.

The QKV and output (O) projections are ``Linear`` layers — the conversion
targets of PIM-DL — while the attention score computation itself stays on the
host processor (paper Fig. 6-(b): "The attention operator is executed on the
host ... since it cannot be converted to LUTs").
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, softmax
from .layers import Linear
from .module import Module


class MultiHeadAttention(Module):
    """Standard multi-head self-attention (Vaswani et al.).

    For compatibility with PIM-DL's operator fusion, the Q, K, and V
    projections are fused into a single ``qkv`` Linear of output width
    ``3 * dim`` (the paper fuses them into one FC operator for the roofline
    analysis and the PIM offload).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        causal: bool = False,
        rng: np.random.Generator = None,
    ):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray = None) -> Tensor:
        """Apply self-attention to ``x`` of shape (batch, seq, dim).

        ``mask`` is an optional (batch, seq) array with 1 for valid tokens
        and 0 for padding; padded keys receive -inf attention scores.  When
        ``causal`` is set, position i attends only to positions <= i
        (decoder/GPT-style attention).
        """
        batch, seq, dim = x.shape
        fused = self.qkv(x)  # (batch, seq, 3*dim)

        # Split into per-head Q, K, V: (batch, heads, seq, head_dim).
        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        q = split_heads(fused[:, :, : self.dim])
        k = split_heads(fused[:, :, self.dim : 2 * self.dim])
        v = split_heads(fused[:, :, 2 * self.dim :])

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (batch, heads, seq, seq)
        if mask is not None:
            bias = np.where(np.asarray(mask)[:, None, None, :] > 0, 0.0, -1e9)
            scores = scores + Tensor(bias)
        if self.causal:
            future = np.triu(np.full((seq, seq), -1e9), k=1)
            scores = scores + Tensor(future[None, None, :, :])
        attn = softmax(scores, axis=-1)
        context = attn @ v  # (batch, heads, seq, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, dim)
        return self.out_proj(merged)

    def forward_incremental(self, x: Tensor, cache: "KVCache") -> Tensor:
        """Decode-phase attention: attend new tokens against a KV cache.

        ``x`` holds only the *new* tokens (batch, new, dim); their keys and
        values are appended to ``cache`` and attention runs against the full
        accumulated context.  With a causal model this computes exactly what
        a full forward over the whole sequence would produce for the new
        positions (covered by a test), at per-token cost.
        """
        batch, new, dim = x.shape
        fused = self.qkv(x)

        def split_heads(t: Tensor) -> np.ndarray:
            return t.data.reshape(batch, new, self.num_heads, self.head_dim).transpose(
                0, 2, 1, 3
            )

        q = split_heads(fused[:, :, : self.dim])
        k_new = split_heads(fused[:, :, self.dim : 2 * self.dim])
        v_new = split_heads(fused[:, :, 2 * self.dim :])
        k_all, v_all = cache.append(k_new, v_new)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k_all.transpose(0, 1, 3, 2)) * scale  # (b, h, new, ctx)
        if self.causal and new > 1:
            ctx = k_all.shape[2]
            positions = np.arange(ctx)[None, :]
            query_pos = (ctx - new) + np.arange(new)[:, None]
            scores = scores + np.where(positions <= query_pos, 0.0, -1e9)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(shifted)
        weights /= weights.sum(axis=-1, keepdims=True)
        context = weights @ v_all
        merged = context.transpose(0, 2, 1, 3).reshape(batch, new, dim)
        return self.out_proj(Tensor(merged))


class KVCache:
    """Per-layer key/value cache for incremental decoding."""

    def __init__(self):
        self.keys: np.ndarray = None
        self.values: np.ndarray = None

    @property
    def length(self) -> int:
        return 0 if self.keys is None else self.keys.shape[2]

    def append(self, k_new: np.ndarray, v_new: np.ndarray):
        """Append (batch, heads, new, head_dim) entries; return the totals."""
        if self.keys is None:
            self.keys, self.values = k_new, v_new
        else:
            if k_new.shape[0] != self.keys.shape[0]:
                raise ValueError("batch size changed mid-generation")
            self.keys = np.concatenate([self.keys, k_new], axis=2)
            self.values = np.concatenate([self.values, v_new], axis=2)
        return self.keys, self.values

    def reset(self) -> None:
        self.keys = None
        self.values = None
