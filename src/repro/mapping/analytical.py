"""Analytical latency model of LUT-NN execution on DRAM-PIMs (paper §5.2).

The model splits execution into the two steps of the paper's dataflow:

* **Step-1, sub-LUT partition** (Eqs. 3–5): host→PIM distribution of index
  and LUT tiles plus output collection, costed per transfer pattern.
* **Step-2, micro-kernel execution** (Eqs. 6–10): per-PE tile movement
  between the local bank and the on-chip buffer plus the reduce compute,
  derived from a loop-nest reuse analysis of the traversal order.

The same :class:`~repro.mapping.space.Mapping` is also interpreted
event-by-event by :mod:`repro.pim.simulator`; paper Fig. 13 reports the gap
between the two (avg 3.44%), which `benchmarks/test_fig13_mapping_space.py`
re-measures against our simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform
from .space import (
    FINE_GRAIN_SLOTS,
    INDEX_BYTES,
    LUT_BYTES,
    OUTPUT_BYTES,
    TRAVERSALS,
    Mapping,
    is_legal,
    num_pes_used,
)
from .space import _pow2_divisors


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-stage latency estimate for one LUT kernel invocation (seconds)."""

    sub_index: float
    sub_lut: float
    sub_output: float
    kernel_transfer: float
    kernel_reduce: float
    launch: float
    #: Transfer seconds hidden under reduce by the double-buffered pipeline
    #: (0.0 in the sequential model).  ``kernel_transfer`` always reports the
    #: *full* transfer work; the wall-clock view subtracts this.
    overlap_hidden: float = 0.0

    @property
    def sub_lut_partition(self) -> float:
        """t_sub-lut of paper Eq. 3."""
        return self.sub_index + self.sub_lut + self.sub_output

    @property
    def micro_kernel(self) -> float:
        """Wall-clock t_micro-kernel (paper Eq. 6, minus pipelined overlap)."""
        return self.kernel_transfer + self.kernel_reduce - self.overlap_hidden

    @property
    def exposed_transfer(self) -> float:
        """Kernel transfer time still on the critical path under overlap."""
        return self.kernel_transfer - self.overlap_hidden

    @property
    def total(self) -> float:
        return self.sub_lut_partition + self.micro_kernel + self.launch


def _loop_trips(shape: LUTShape, mapping: Mapping) -> Dict[str, int]:
    return {
        "n": mapping.n_s_tile // mapping.n_m_tile,
        "f": mapping.f_s_tile // mapping.f_m_tile,
        "cb": shape.cb // mapping.cb_m_tile,
    }


def _load_count(traversal, trips: Dict[str, int], deps) -> int:
    """Reloads of a tensor under a single-resident-tile buffer model.

    The resident tile changes exactly when the tensor's tile tag (its
    projection onto ``deps``) changes.  In a lexicographic loop nest that
    happens once per iteration of every loop at or above the innermost
    *moving* relevant loop — a relevant dim with a single trip never changes
    the tag, so loops outer to it cause no eviction either.  When no
    relevant dim moves, the single tile is loaded once.
    """
    moving = [traversal.index(d) for d in deps if trips[d] > 1]
    if not moving:
        return 1
    innermost_moving = max(moving)
    count = 1
    for depth, dim in enumerate(traversal):
        if depth <= innermost_moving:
            count *= trips[dim]
    return count


def pipeline_overlap_hidden(
    shape: LUTShape, mapping: Mapping, breakdown: LatencyBreakdown
) -> float:
    """Transfer seconds hidden by double-buffering the micro-kernel loop.

    With ``T`` uniform m-tiles, per-tile transfer ``tt`` and per-tile reduce
    ``tc``, the pipelined loop takes ``tt + (T-1)*max(tt, tc) + tc`` instead
    of ``T*(tt + tc)`` — the fill/drain stages stay exposed, so the hidden
    time is ``(T-1)/T * min(total_transfer, total_reduce)``.  Always
    ``0 <= hidden < kernel_transfer`` (strictly, unless both are zero).
    """
    trips = _loop_trips(shape, mapping)
    tiles = trips["n"] * trips["f"] * trips["cb"]
    if tiles <= 1:
        return 0.0
    frac = (tiles - 1) / tiles
    return frac * min(breakdown.kernel_transfer, breakdown.kernel_reduce)


def with_overlap(
    shape: LUTShape, mapping: Mapping, breakdown: LatencyBreakdown
) -> LatencyBreakdown:
    """Re-express ``breakdown`` under the double-buffered pipeline model."""
    hidden = pipeline_overlap_hidden(shape, mapping, breakdown)
    if hidden <= 0.0:
        return breakdown
    return replace(breakdown, overlap_hidden=hidden)


def estimate_latency(
    shape: LUTShape,
    mapping: Mapping,
    platform: PIMPlatform,
    amortize_lut_distribution: bool = False,
    fault_injector=None,
    overlap: bool = False,
) -> LatencyBreakdown:
    """Closed-form latency of one LUT kernel under ``mapping``.

    Parameters
    ----------
    amortize_lut_distribution:
        When True, the host→PIM LUT transfer (model weights) is treated as
        resident across invocations and excluded — the steady-state serving
        configuration used by the end-to-end engine.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector`.  When
        active, the estimate is evaluated against the *degraded* platform
        (dead ranks/PEs removed — the mapping must be legal there, i.e.
        already remapped) and the micro-kernel terms are stretched by the
        straggler slowdown.  An inactive injector changes nothing.
    overlap:
        When True, model the micro-kernel loop as a double-buffered
        pipeline: the transfer of m-tile ``i+1`` overlaps the reduce of
        m-tile ``i``, each stage bounded by ``max(transfer, compute)`` plus
        fill/drain.  The hidden time lands in
        :attr:`LatencyBreakdown.overlap_hidden`; with ``overlap=False`` the
        result is bit-identical to the sequential model.
    """
    straggler = 1.0
    if fault_injector is not None and fault_injector.active:
        platform = fault_injector.degraded_platform(platform)
        straggler = fault_injector.straggler_slowdown()
    if not is_legal(shape, mapping, platform):
        raise ValueError(f"illegal mapping {mapping} for shape {shape}")

    n_pes = num_pes_used(shape, mapping)
    groups = shape.n // mapping.n_s_tile
    pes_per_group = shape.f // mapping.f_s_tile

    # ------------------------------------------------------------------
    # Step-1: sub-LUT partition (Eqs. 3–5).  Following Eq. 4, replicated
    # tiles count their full per-PE traffic against the (faster) broadcast
    # bandwidth; unique tiles go at scatter/gather bandwidth.
    # ------------------------------------------------------------------
    stile_index = mapping.n_s_tile * shape.cb * INDEX_BYTES
    stile_lut = shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES
    stile_output = mapping.n_s_tile * mapping.f_s_tile * OUTPUT_BYTES

    index_pattern = platform.broadcast if pes_per_group > 1 else platform.scatter
    lut_pattern = platform.broadcast if groups > 1 else platform.scatter

    t_sub_index = index_pattern.latency(stile_index * n_pes, tile_bytes=stile_index)
    t_sub_lut = (
        0.0
        if amortize_lut_distribution
        else lut_pattern.latency(stile_lut * n_pes, tile_bytes=stile_lut)
    )
    t_sub_output = platform.gather.latency(stile_output * n_pes, tile_bytes=stile_output)

    # ------------------------------------------------------------------
    # Step-2: micro kernel (Eqs. 6–10), per PE.
    # ------------------------------------------------------------------
    trips = _loop_trips(shape, mapping)
    local = platform.local_memory

    mtile_index = mapping.n_m_tile * mapping.cb_m_tile * INDEX_BYTES
    mtile_output = mapping.n_m_tile * mapping.f_m_tile * OUTPUT_BYTES

    lcount_index = _load_count(mapping.traversal, trips, ("n", "cb"))
    t_ld_index = local.latency(lcount_index * mtile_index, mtile_index)

    out_count = _load_count(mapping.traversal, trips, ("n", "f"))
    t_ld_output = local.latency(out_count * mtile_output, mtile_output)
    t_st_output = local.latency(out_count * mtile_output, mtile_output)

    lut_unique = shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES
    if mapping.load_scheme == "static":
        # Whole sub-LUT staged once at kernel start (Fig. 9, scheme 1).
        t_ld_lut = local.latency(lut_unique, min(lut_unique, 2048))
    elif mapping.load_scheme == "coarse":
        # All CT candidates of (cb_load x f_load) blocks staged per visit;
        # the LUT footprint is re-streamed whenever the N loop revisits it.
        revisit = _load_count(mapping.traversal, trips, ("cb", "f"))
        full_visits = trips["cb"] * trips["f"]
        streams = max(revisit // full_visits, 1)
        access = mapping.cb_load_tile * shape.ct * mapping.f_load_tile * LUT_BYTES
        t_ld_lut = local.latency(streams * lut_unique, access)
    else:  # fine
        # On-demand gather: each (row, codebook) index pulls its selected
        # f_s_tile entries in f_load_tile chunks (Fig. 9, scheme 3).
        total = mapping.n_s_tile * shape.cb * mapping.f_s_tile * LUT_BYTES
        t_ld_lut = local.latency(total, mapping.f_load_tile * LUT_BYTES)

    t_transfer = t_ld_index + t_ld_lut + t_ld_output + t_st_output

    # Reduce: f_s additions per (row, codebook) pair plus one table-address
    # computation per lookup (Eq. 10, with t_single-reduce from the PE).
    reduce_count = mapping.n_s_tile * shape.cb * mapping.f_s_tile
    lookup_count = mapping.n_s_tile * shape.cb
    t_reduce = platform.compute.add_time(reduce_count)
    t_reduce += platform.compute.lookup_time(lookup_count)
    if mapping.load_scheme == "fine":
        # Fine-grain adds per-chunk address arithmetic on the PE.
        chunks_per_lookup = max(mapping.f_s_tile // mapping.f_load_tile, 1)
        t_reduce += platform.compute.lookup_time(lookup_count * (chunks_per_lookup - 1))

    breakdown = LatencyBreakdown(
        sub_index=t_sub_index,
        sub_lut=t_sub_lut,
        sub_output=t_sub_output,
        kernel_transfer=t_transfer * straggler,
        kernel_reduce=t_reduce * straggler,
        launch=platform.kernel_launch_s,
    )
    if overlap:
        breakdown = with_overlap(shape, mapping, breakdown)
    return breakdown


def search_micro_kernels(
    shape: LUTShape,
    n_s_tile: int,
    f_s_tile: int,
    platform: PIMPlatform,
) -> Optional[Tuple[Mapping, float]]:
    """Vectorized ``KernelSearch`` of paper Algorithm 1 (line 8).

    Evaluates the full micro-kernel space — tile factors x traversal orders
    x load schemes — for one sub-LUT tiling with numpy grids, using exactly
    the cost formulas of :func:`estimate_latency` (a property test in the
    suite holds the two implementations together).  Returns the cheapest
    legal ``(mapping, t_micro_kernel)`` or ``None`` when no candidate fits
    the on-chip buffer.
    """
    local = platform.local_memory
    compute = platform.compute
    cb, ct = shape.cb, shape.ct

    n_m_opts = np.array(_pow2_divisors(n_s_tile, limit=256))
    f_m_opts = np.array(_pow2_divisors(f_s_tile, limit=256))
    cb_m_opts = np.array(_pow2_divisors(cb, limit=256))
    NM, FM, CBM = np.meshgrid(n_m_opts, f_m_opts, cb_m_opts, indexing="ij")
    trips = {
        "n": n_s_tile // NM,
        "f": f_s_tile // FM,
        "cb": cb // CBM,
    }

    mtile_index = NM * CBM * INDEX_BYTES
    mtile_output = NM * FM * OUTPUT_BYTES
    buffer_base = mtile_index + mtile_output

    lut_unique = cb * ct * f_s_tile * LUT_BYTES
    setup = local.access_setup_s
    bw = local.peak_bytes_per_s

    # Reduce time: constant across the grid except for fine-grain chunking.
    reduce_count = n_s_tile * cb * f_s_tile
    lookup_count = n_s_tile * cb
    t_reduce_base = compute.add_time(reduce_count) + compute.lookup_time(lookup_count)

    def load_count(traversal, deps):
        """Vectorized version of :func:`_load_count` over the tile grid.

        Per candidate, the eviction depth is the innermost relevant loop
        whose trip count exceeds one; the reload count is the product of
        trips at or above it (1 when no relevant loop moves).
        """
        dep_depths = sorted(traversal.index(d) for d in deps)
        prefix = [np.ones_like(NM, dtype=np.float64)]
        for dim in traversal:
            prefix.append(prefix[-1] * trips[dim])
        # prefix[k+1] = product of trips at depth <= k.
        # Walk outermost -> innermost so the innermost moving dim wins.
        count = np.ones_like(NM, dtype=np.float64)
        for depth in dep_depths:
            dim = traversal[depth]
            count = np.where(trips[dim] > 1, prefix[depth + 1], count)
        return count

    best_cost = np.inf
    best: Optional[Tuple[Mapping, float]] = None

    for traversal in TRAVERSALS:
        lcount_index = load_count(traversal, ("n", "cb"))
        t_index = lcount_index * (setup + mtile_index / bw)
        out_count = load_count(traversal, ("n", "f"))
        t_output = 2.0 * out_count * (setup + mtile_output / bw)
        base = t_index + t_output + t_reduce_base

        variants = []
        # Static: whole sub-LUT resident in the buffer.
        static_access = min(lut_unique, 2048)
        t_static = setup * (lut_unique / static_access) + lut_unique / bw
        variants.append(("static", 1, 1, np.full_like(NM, t_static, dtype=np.float64),
                         np.full_like(NM, float(lut_unique), dtype=np.float64), 0.0))
        # Coarse-grain: stream all CT candidates block-wise per LUT visit.
        revisit = load_count(traversal, ("cb", "f"))
        full_visits = trips["cb"] * trips["f"]
        streams = np.maximum(revisit // full_visits, 1.0)
        for cb_l in _pow2_divisors(cb, limit=16):
            for f_l in _pow2_divisors(f_s_tile, limit=64):
                access = cb_l * ct * f_l * LUT_BYTES
                t_coarse = streams * (
                    lut_unique / bw + setup * (lut_unique / access)
                )
                variants.append(
                    ("coarse", cb_l, f_l, t_coarse,
                     np.full_like(NM, float(access), dtype=np.float64), 0.0)
                )
        # Fine-grain: gather only the indexed entries.
        fine_total = n_s_tile * cb * f_s_tile * LUT_BYTES
        for f_l in _pow2_divisors(f_s_tile, limit=128):
            access = f_l * LUT_BYTES
            t_fine = np.full_like(
                NM, fine_total / bw + setup * (fine_total / access), dtype=np.float64
            )
            chunks = max(f_s_tile // f_l, 1)
            extra = compute.lookup_time(lookup_count * (chunks - 1))
            variants.append(
                ("fine", 1, f_l, t_fine,
                 np.full_like(NM, float(FINE_GRAIN_SLOTS * access), dtype=np.float64),
                 extra)
            )

        for scheme, cb_l, f_l, t_lut, lut_buffer, reduce_extra in variants:
            total = base + t_lut + reduce_extra
            legal = (buffer_base + lut_buffer) <= local.buffer_bytes
            # Load tiles must fit inside the m-tile (see space.is_legal).
            if scheme == "coarse":
                legal = legal & (cb_l <= CBM) & (f_l <= FM)
            elif scheme == "fine":
                legal = legal & (f_l <= FM)
            masked = np.where(legal, total, np.inf)
            idx = np.unravel_index(np.argmin(masked), masked.shape)
            cost = masked[idx]
            if cost < best_cost:
                best_cost = float(cost)
                best = (
                    Mapping(
                        n_s_tile=n_s_tile,
                        f_s_tile=f_s_tile,
                        n_m_tile=int(NM[idx]),
                        f_m_tile=int(FM[idx]),
                        cb_m_tile=int(CBM[idx]),
                        traversal=traversal,
                        load_scheme=scheme,
                        cb_load_tile=cb_l,
                        f_load_tile=f_l,
                    ),
                    best_cost,
                )
    return best
