"""PIM-DL Auto-Tuner (paper Algorithm 1).

Given a LUT workload shape and a target platform, the tuner exhaustively
walks the legal sub-LUT tiling factors; for each it searches the micro-kernel
mapping space (tile sizes x traversal orders x load schemes) with the
analytical model, and returns the globally cheapest mapping.

Tuning is offline and fast (the paper reports ~1 s per model on a CPU): the
cost of a candidate is a closed-form evaluation, and per-layer results are
memoised by workload shape.

Telemetry: every search records into ``repro.obs`` — counters
``tuner.candidates_evaluated`` / ``tuner.tilings_pruned`` (sub-LUT tilings
with no legal micro-kernel), gauge ``tuner.best_cost_s``, and per-candidate
spans under a ``tuner.tune`` root span.  An optional ``progress_callback``
surfaces the same stream synchronously (the CLI uses it for ``--progress``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .. import obs
from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform
from .analytical import LatencyBreakdown, estimate_latency, search_micro_kernels
from .space import Mapping, enumerate_micro_kernels, enumerate_sub_lut_tilings


@dataclass(frozen=True)
class TuningResult:
    """Best mapping found for one workload shape."""

    shape: LUTShape
    mapping: Mapping
    latency: LatencyBreakdown
    candidates_evaluated: int

    @property
    def cost(self) -> float:
        return self.latency.total


@dataclass(frozen=True)
class TuneProgress:
    """One progress tick of a running search (see ``progress_callback``)."""

    evaluated: int
    pruned: int
    best_cost: Optional[float]


ProgressCallback = Callable[[TuneProgress], None]


class AutoTuner:
    """Exhaustive mapping search over the PIM-DL design space.

    Parameters
    ----------
    platform:
        Target DRAM-PIM platform (constants from ``repro.pim.platforms``).
    amortize_lut_distribution:
        Treat LUTs as resident in PIM memory across invocations (steady-state
        serving).  Defaults to False, matching the paper's per-kernel model.
    max_micro_kernels:
        Optional cap on micro-kernel candidates per sub-LUT tiling, for
        fast approximate tuning.
    progress_callback:
        Invoked with a :class:`TuneProgress` after every candidate
        evaluation (per sub-LUT tiling in :meth:`tune`, per mapping in
        :meth:`tune_exhaustive`).  The search is silent without it.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        amortize_lut_distribution: bool = False,
        max_micro_kernels: Optional[int] = None,
        progress_callback: Optional[ProgressCallback] = None,
    ):
        self.platform = platform
        self.amortize_lut_distribution = amortize_lut_distribution
        self.max_micro_kernels = max_micro_kernels
        self.progress_callback = progress_callback
        self._cache: Dict[Tuple, TuningResult] = {}

    def _progress(self, evaluated: int, pruned: int, best) -> None:
        if self.progress_callback is not None:
            self.progress_callback(
                TuneProgress(
                    evaluated=evaluated,
                    pruned=pruned,
                    best_cost=best.latency.total if best is not None else None,
                )
            )

    def tune(self, shape: LUTShape) -> TuningResult:
        """Run Algorithm 1 for ``shape`` and return the optimal mapping."""
        registry = obs.get_registry()
        registry.counter("tuner.tune_calls").inc()
        key = (shape, self.amortize_lut_distribution)
        if key in self._cache:
            registry.counter("tuner.cache_hits").inc()
            return self._cache[key]

        candidates = registry.counter("tuner.candidates_evaluated")
        pruned_counter = registry.counter("tuner.tilings_pruned")
        best_gauge = registry.gauge("tuner.best_cost_s")
        tracer = obs.get_tracer()

        best: Optional[TuningResult] = None
        evaluated = 0
        pruned = 0
        with tracer.span(
            "tuner.tune",
            platform=self.platform.name,
            shape=f"N={shape.n} CB={shape.cb} CT={shape.ct} F={shape.f}",
        ) as root:
            for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
                with tracer.span("tuner.tiling", n_s=n_s, f_s=f_s) as tile_span:
                    found = search_micro_kernels(shape, n_s, f_s, self.platform)
                    evaluated += 1
                    candidates.inc()
                    if found is None:
                        pruned += 1
                        pruned_counter.inc()
                        tile_span.set_attribute("pruned", True)
                        self._progress(evaluated, pruned, best)
                        continue
                    mapping, _ = found
                    # Re-score the winner with the full model (adds the sub-LUT
                    # partition terms of Eq. 3, which are constant per tiling pair).
                    breakdown = estimate_latency(
                        shape,
                        mapping,
                        self.platform,
                        amortize_lut_distribution=self.amortize_lut_distribution,
                    )
                    tile_span.set_attribute("cost_s", breakdown.total)
                    if best is None or breakdown.total < best.latency.total:
                        best = TuningResult(
                            shape=shape,
                            mapping=mapping,
                            latency=breakdown,
                            candidates_evaluated=evaluated,
                        )
                        best_gauge.set(breakdown.total)
                self._progress(evaluated, pruned, best)
            root.set_attribute("candidates", evaluated)
            root.set_attribute("pruned", pruned)
            if best is not None:
                root.set_attribute("best_cost_s", best.latency.total)
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        best = TuningResult(best.shape, best.mapping, best.latency, evaluated)
        self._cache[key] = best
        return best

    def tune_exhaustive(self, shape: LUTShape) -> TuningResult:
        """Reference scalar-loop implementation of Algorithm 1.

        Evaluates every candidate with :func:`estimate_latency` one at a
        time.  Orders of magnitude slower than :meth:`tune`; retained for
        validating the vectorized search on small shapes.
        """
        registry = obs.get_registry()
        registry.counter("tuner.tune_calls").inc()
        candidates = registry.counter("tuner.candidates_evaluated")
        pruned_counter = registry.counter("tuner.tilings_pruned")
        best_gauge = registry.gauge("tuner.best_cost_s")
        tracer = obs.get_tracer()

        best: Optional[TuningResult] = None
        evaluated = 0
        pruned = 0
        with tracer.span(
            "tuner.tune_exhaustive",
            platform=self.platform.name,
            shape=f"N={shape.n} CB={shape.cb} CT={shape.ct} F={shape.f}",
        ) as root:
            for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
                tiling_had_legal = False
                for mapping in enumerate_micro_kernels(
                    shape, n_s, f_s, self.platform, max_points=self.max_micro_kernels
                ):
                    tiling_had_legal = True
                    breakdown = estimate_latency(
                        shape,
                        mapping,
                        self.platform,
                        amortize_lut_distribution=self.amortize_lut_distribution,
                    )
                    evaluated += 1
                    if best is None or breakdown.total < best.latency.total:
                        best = TuningResult(shape, mapping, breakdown, evaluated)
                        best_gauge.set(breakdown.total)
                    self._progress(evaluated, pruned, best)
                if not tiling_had_legal:
                    pruned += 1
                    pruned_counter.inc()
            # Counted once at the end: per-mapping registry updates would be
            # the hot path of the scalar loop.
            candidates.inc(evaluated)
            root.set_attribute("candidates", evaluated)
            root.set_attribute("pruned", pruned)
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        return TuningResult(best.shape, best.mapping, best.latency, evaluated)
