"""PIM-DL Auto-Tuner (paper Algorithm 1).

Given a LUT workload shape and a target platform, the tuner exhaustively
walks the legal sub-LUT tiling factors; for each it searches the micro-kernel
mapping space (tile sizes x traversal orders x load schemes) with the
analytical model, and returns the globally cheapest mapping.

Tuning is offline and fast (the paper reports ~1 s per model on a CPU): the
cost of a candidate is a closed-form evaluation, and per-layer results are
memoised by workload shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform
from .analytical import LatencyBreakdown, estimate_latency, search_micro_kernels
from .space import Mapping, enumerate_micro_kernels, enumerate_sub_lut_tilings


@dataclass(frozen=True)
class TuningResult:
    """Best mapping found for one workload shape."""

    shape: LUTShape
    mapping: Mapping
    latency: LatencyBreakdown
    candidates_evaluated: int

    @property
    def cost(self) -> float:
        return self.latency.total


class AutoTuner:
    """Exhaustive mapping search over the PIM-DL design space.

    Parameters
    ----------
    platform:
        Target DRAM-PIM platform (constants from ``repro.pim.platforms``).
    amortize_lut_distribution:
        Treat LUTs as resident in PIM memory across invocations (steady-state
        serving).  Defaults to False, matching the paper's per-kernel model.
    max_micro_kernels:
        Optional cap on micro-kernel candidates per sub-LUT tiling, for
        fast approximate tuning.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        amortize_lut_distribution: bool = False,
        max_micro_kernels: Optional[int] = None,
    ):
        self.platform = platform
        self.amortize_lut_distribution = amortize_lut_distribution
        self.max_micro_kernels = max_micro_kernels
        self._cache: Dict[Tuple, TuningResult] = {}

    def tune(self, shape: LUTShape) -> TuningResult:
        """Run Algorithm 1 for ``shape`` and return the optimal mapping."""
        key = (shape, self.amortize_lut_distribution)
        if key in self._cache:
            return self._cache[key]

        best: Optional[TuningResult] = None
        evaluated = 0
        for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
            found = search_micro_kernels(shape, n_s, f_s, self.platform)
            evaluated += 1
            if found is None:
                continue
            mapping, _ = found
            # Re-score the winner with the full model (adds the sub-LUT
            # partition terms of Eq. 3, which are constant per tiling pair).
            breakdown = estimate_latency(
                shape,
                mapping,
                self.platform,
                amortize_lut_distribution=self.amortize_lut_distribution,
            )
            if best is None or breakdown.total < best.latency.total:
                best = TuningResult(
                    shape=shape,
                    mapping=mapping,
                    latency=breakdown,
                    candidates_evaluated=evaluated,
                )
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        best = TuningResult(best.shape, best.mapping, best.latency, evaluated)
        self._cache[key] = best
        return best

    def tune_exhaustive(self, shape: LUTShape) -> TuningResult:
        """Reference scalar-loop implementation of Algorithm 1.

        Evaluates every candidate with :func:`estimate_latency` one at a
        time.  Orders of magnitude slower than :meth:`tune`; retained for
        validating the vectorized search on small shapes.
        """
        best: Optional[TuningResult] = None
        evaluated = 0
        for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
            for mapping in enumerate_micro_kernels(
                shape, n_s, f_s, self.platform, max_points=self.max_micro_kernels
            ):
                breakdown = estimate_latency(
                    shape,
                    mapping,
                    self.platform,
                    amortize_lut_distribution=self.amortize_lut_distribution,
                )
                evaluated += 1
                if best is None or breakdown.total < best.latency.total:
                    best = TuningResult(shape, mapping, breakdown, evaluated)
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        return TuningResult(best.shape, best.mapping, best.latency, evaluated)
