"""PIM-DL Auto-Tuner (paper Algorithm 1).

Given a LUT workload shape and a target platform, the tuner exhaustively
walks the legal sub-LUT tiling factors; for each it searches the micro-kernel
mapping space (tile sizes x traversal orders x load schemes) with the
analytical model, and returns the globally cheapest mapping.

Tuning is offline and fast (the paper reports ~1 s per model on a CPU): the
cost of a candidate is a closed-form evaluation, and per-layer results are
memoised by workload shape.

Telemetry: every search records into ``repro.obs`` — counters
``tuner.candidates_evaluated`` / ``tuner.tilings_pruned`` (sub-LUT tilings
with no legal micro-kernel), gauge ``tuner.best_cost_s``, and per-candidate
spans under a ``tuner.tune`` root span.  An optional ``progress_callback``
surfaces the same stream synchronously (the CLI uses it for ``--progress``).

Parallel tuning (``AutoTuner(jobs=N)``) shards the sub-LUT tiling space
across a process pool and merges per-shard winners deterministically: the
global best is the minimum of ``(cost, tiling index, mapping key)``, which
is exactly the candidate the serial scan would have kept, so ``jobs=4``
results are bit-identical to ``jobs=1``.  Shard counters and per-shard
spans are aggregated back into the parent process's ``repro.obs``.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform
from .analytical import LatencyBreakdown, estimate_latency, search_micro_kernels
from .space import (
    Mapping,
    enumerate_micro_kernels,
    enumerate_sub_lut_tilings,
    mapping_sort_key,
    shard_tilings,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle (store imports TuningResult)
    from .store import MappingCache


@dataclass(frozen=True)
class TuningResult:
    """Best mapping found for one workload shape."""

    shape: LUTShape
    mapping: Mapping
    latency: LatencyBreakdown
    candidates_evaluated: int

    @property
    def cost(self) -> float:
        return self.latency.total


@dataclass(frozen=True)
class TuneProgress:
    """One progress tick of a running search (see ``progress_callback``)."""

    evaluated: int
    pruned: int
    best_cost: Optional[float]


ProgressCallback = Callable[[TuneProgress], None]


@dataclass(frozen=True)
class _ShardResult:
    """What one worker reports back for its slice of the tiling space."""

    shard: int
    tilings: int
    evaluated: int
    pruned: int
    #: (cost, global tiling index, mapping, breakdown) of the shard winner,
    #: or None when every tiling in the shard was pruned.
    best: Optional[Tuple[float, int, Mapping, LatencyBreakdown]]
    worker_seconds: float


def _tune_tiling_shard(payload) -> _ShardResult:
    """Worker body: run KernelSearch over one shard of sub-LUT tilings.

    Runs in a child process — records nothing into ``repro.obs`` (the
    parent aggregates the returned counters) and keeps the same
    first-strictly-smaller update rule as the serial scan so the merged
    minimum over ``(cost, index)`` reproduces the serial winner exactly.
    """
    shard_id, shape, platform, amortize, indexed_tilings = payload
    start = time.perf_counter()
    evaluated = 0
    pruned = 0
    best: Optional[Tuple[float, int, Mapping, LatencyBreakdown]] = None
    for index, (n_s, f_s) in indexed_tilings:
        found = search_micro_kernels(shape, n_s, f_s, platform)
        evaluated += 1
        if found is None:
            pruned += 1
            continue
        mapping, _ = found
        breakdown = estimate_latency(
            shape, mapping, platform, amortize_lut_distribution=amortize
        )
        if best is None or breakdown.total < best[0]:
            best = (breakdown.total, index, mapping, breakdown)
    return _ShardResult(
        shard=shard_id,
        tilings=len(indexed_tilings),
        evaluated=evaluated,
        pruned=pruned,
        best=best,
        worker_seconds=time.perf_counter() - start,
    )


class AutoTuner:
    """Exhaustive mapping search over the PIM-DL design space.

    Parameters
    ----------
    platform:
        Target DRAM-PIM platform (constants from ``repro.pim.platforms``).
    amortize_lut_distribution:
        Treat LUTs as resident in PIM memory across invocations (steady-state
        serving).  Defaults to False, matching the paper's per-kernel model.
    max_micro_kernels:
        Optional cap on micro-kernel candidates per sub-LUT tiling, for
        fast approximate tuning.
    progress_callback:
        Invoked with a :class:`TuneProgress` after every candidate
        evaluation (per sub-LUT tiling in :meth:`tune`, per mapping in
        :meth:`tune_exhaustive`; per completed shard when ``jobs > 1``).
        The search is silent without it.
    jobs:
        Worker processes for the sub-LUT tiling search.  ``1`` (default)
        searches serially in-process; ``N > 1`` shards the tiling space
        across a process pool.  ``0`` means "one per CPU".  Results are
        bit-identical across job counts.
    cache:
        Optional persistent :class:`~repro.mapping.store.MappingCache`.
        Checked before any search (warm start: a hit evaluates zero
        candidates) and updated after every completed search.
    schedule_cache:
        Optional :class:`~repro.kernels.schedule.KernelScheduleCache`.
        When set, :meth:`warm_host_schedule` persists the measured host
        kernel-schedule search alongside the mapping search, so warming a
        shape pays the candidate measurements once per machine.
    """

    def __init__(
        self,
        platform: PIMPlatform,
        amortize_lut_distribution: bool = False,
        max_micro_kernels: Optional[int] = None,
        progress_callback: Optional[ProgressCallback] = None,
        jobs: int = 1,
        cache: Optional["MappingCache"] = None,
        schedule_cache=None,
    ):
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 means one per CPU)")
        self.platform = platform
        self.amortize_lut_distribution = amortize_lut_distribution
        self.max_micro_kernels = max_micro_kernels
        self.progress_callback = progress_callback
        self.jobs = jobs or (os.cpu_count() or 1)
        self.cache = cache
        self.schedule_cache = schedule_cache
        self._cache: Dict[Tuple, TuningResult] = {}

    def _progress(self, evaluated: int, pruned: int, best) -> None:
        if self.progress_callback is not None:
            self.progress_callback(
                TuneProgress(
                    evaluated=evaluated,
                    pruned=pruned,
                    best_cost=best.latency.total if best is not None else None,
                )
            )

    def tune(self, shape: LUTShape) -> TuningResult:
        """Run Algorithm 1 for ``shape`` and return the optimal mapping.

        Lookup order: in-process memo, then the persistent ``cache`` (both
        evaluate zero candidates), then the search — serial or sharded
        across a process pool depending on ``jobs``.
        """
        registry = obs.get_registry()
        registry.counter("tuner.tune_calls").inc()
        key = (shape, self.amortize_lut_distribution)
        if key in self._cache:
            registry.counter("tuner.cache_hits").inc()
            return self._cache[key]
        if self.cache is not None:
            stored = self.cache.get(
                self.platform, shape, amortize=self.amortize_lut_distribution
            )
            if stored is not None:
                registry.counter("tuner.store_hits").inc()
                self._cache[key] = stored
                return stored
            registry.counter("tuner.store_misses").inc()

        if self.jobs > 1:
            best = self._search_parallel(shape)
        else:
            best = self._search_serial(shape)
        self._cache[key] = best
        if self.cache is not None:
            self.cache.put(
                self.platform, best, amortize=self.amortize_lut_distribution
            )
        return best

    def warm_host_schedule(
        self, shape: LUTShape, dtype: str = "float32", repeats: int = 3
    ):
        """Measured host kernel-schedule warm start for ``shape``.

        Runs :func:`repro.kernels.schedule.search_kernel_schedule` through
        this tuner's ``schedule_cache`` (zero candidates re-measured on a
        hit) and returns the :class:`~repro.kernels.schedule.KernelSchedule`
        winner.  The PIM mapping search is unaffected — this warms the
        *host* side of the same shape.
        """
        from ..kernels.schedule import search_kernel_schedule

        return search_kernel_schedule(
            n=shape.n,
            h=shape.h,
            f=shape.f,
            v=shape.v,
            ct=shape.ct,
            dtype=dtype,
            repeats=repeats,
            cache=self.schedule_cache,
        )

    def _search_serial(self, shape: LUTShape) -> TuningResult:
        """The serial scan of Algorithm 1 (reference semantics)."""
        registry = obs.get_registry()
        candidates = registry.counter("tuner.candidates_evaluated")
        pruned_counter = registry.counter("tuner.tilings_pruned")
        best_gauge = registry.gauge("tuner.best_cost_s")
        tracer = obs.get_tracer()

        best: Optional[TuningResult] = None
        evaluated = 0
        pruned = 0
        with tracer.span(
            "tuner.tune",
            platform=self.platform.name,
            shape=f"N={shape.n} CB={shape.cb} CT={shape.ct} F={shape.f}",
        ) as root:
            for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
                with tracer.span("tuner.tiling", n_s=n_s, f_s=f_s) as tile_span:
                    found = search_micro_kernels(shape, n_s, f_s, self.platform)
                    evaluated += 1
                    candidates.inc()
                    if found is None:
                        pruned += 1
                        pruned_counter.inc()
                        tile_span.set_attribute("pruned", True)
                        self._progress(evaluated, pruned, best)
                        continue
                    mapping, _ = found
                    # Re-score the winner with the full model (adds the sub-LUT
                    # partition terms of Eq. 3, which are constant per tiling pair).
                    breakdown = estimate_latency(
                        shape,
                        mapping,
                        self.platform,
                        amortize_lut_distribution=self.amortize_lut_distribution,
                    )
                    tile_span.set_attribute("cost_s", breakdown.total)
                    if best is None or breakdown.total < best.latency.total:
                        best = TuningResult(
                            shape=shape,
                            mapping=mapping,
                            latency=breakdown,
                            candidates_evaluated=evaluated,
                        )
                        best_gauge.set(breakdown.total)
                self._progress(evaluated, pruned, best)
            root.set_attribute("candidates", evaluated)
            root.set_attribute("pruned", pruned)
            if best is not None:
                root.set_attribute("best_cost_s", best.latency.total)
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        return TuningResult(best.shape, best.mapping, best.latency, evaluated)

    def _search_parallel(self, shape: LUTShape) -> TuningResult:
        """Shard the sub-LUT tiling space across a process pool and merge.

        Falls back to the serial scan (with a warning) when the pool
        cannot be started — e.g. in sandboxes that forbid fork.
        """
        indexed = list(enumerate(enumerate_sub_lut_tilings(shape, self.platform)))
        if not indexed:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        jobs = min(self.jobs, len(indexed))
        shards = shard_tilings(indexed, jobs)
        payloads = [
            (i, shape, self.platform, self.amortize_lut_distribution, shard)
            for i, shard in enumerate(shards)
        ]
        registry = obs.get_registry()
        tracer = obs.get_tracer()
        with tracer.span(
            "tuner.tune_parallel",
            platform=self.platform.name,
            shape=f"N={shape.n} CB={shape.cb} CT={shape.ct} F={shape.f}",
            jobs=jobs,
            tilings=len(indexed),
        ) as root:
            try:
                results = self._run_shards(payloads, jobs, tracer)
            except (OSError, PermissionError, RuntimeError) as exc:
                warnings.warn(
                    f"parallel tuning unavailable ({exc}); falling back to "
                    "the serial search",
                    RuntimeWarning,
                    stacklevel=2,
                )
                root.set_attribute("fallback", "serial")
                return self._search_serial(shape)

            evaluated = sum(r.evaluated for r in results)
            pruned = sum(r.pruned for r in results)
            registry.counter("tuner.candidates_evaluated").inc(evaluated)
            registry.counter("tuner.tilings_pruned").inc(pruned)
            registry.counter("tuner.shards_completed").inc(len(results))
            best = self._merge_shard_bests(results)
            root.set_attribute("candidates", evaluated)
            root.set_attribute("pruned", pruned)
            if best is not None:
                root.set_attribute("best_cost_s", best[0])
                registry.gauge("tuner.best_cost_s").set(best[0])
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        _, _, mapping, breakdown = best
        return TuningResult(
            shape=shape,
            mapping=mapping,
            latency=breakdown,
            candidates_evaluated=evaluated,
        )

    def _run_shards(
        self, payloads: List[Tuple], jobs: int, tracer
    ) -> List[_ShardResult]:
        """Execute shard payloads on a pool; record one span per shard."""
        results: List[_ShardResult] = []
        evaluated = 0
        pruned = 0
        running_best: Optional[Tuple[float, int, Mapping, LatencyBreakdown]] = None
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(_tune_tiling_shard, payloads):
                results.append(result)
                evaluated += result.evaluated
                pruned += result.pruned
                with tracer.span("tuner.shard", shard=result.shard) as span:
                    span.set_attribute("tilings", result.tilings)
                    span.set_attribute("evaluated", result.evaluated)
                    span.set_attribute("pruned", result.pruned)
                    span.set_attribute("worker_seconds", result.worker_seconds)
                    if result.best is not None:
                        span.set_attribute("best_cost_s", result.best[0])
                running_best = self._merge_shard_bests(results)
                if self.progress_callback is not None:
                    self.progress_callback(
                        TuneProgress(
                            evaluated=evaluated,
                            pruned=pruned,
                            best_cost=(
                                running_best[0] if running_best is not None else None
                            ),
                        )
                    )
        return results

    @staticmethod
    def _merge_shard_bests(
        results: Iterable[_ShardResult],
    ) -> Optional[Tuple[float, int, Mapping, LatencyBreakdown]]:
        """Deterministic merge: min over (cost, tiling index, mapping key).

        The serial scan keeps the first strictly-cheaper candidate while
        walking tilings in enumeration order, i.e. the minimum of
        ``(cost, index)``; the mapping key is a stable final tie-break.
        """
        candidates = [r.best for r in results if r.best is not None]
        if not candidates:
            return None
        return min(
            candidates, key=lambda b: (b[0], b[1], mapping_sort_key(b[2]))
        )

    def tune_many(self, shapes: Iterable[LUTShape]) -> Dict[LUTShape, TuningResult]:
        """Tune every distinct shape, preserving first-seen order."""
        out: Dict[LUTShape, TuningResult] = {}
        for shape in shapes:
            if shape not in out:
                out[shape] = self.tune(shape)
        return out

    def tune_exhaustive(self, shape: LUTShape) -> TuningResult:
        """Reference scalar-loop implementation of Algorithm 1.

        Evaluates every candidate with :func:`estimate_latency` one at a
        time.  Orders of magnitude slower than :meth:`tune`; retained for
        validating the vectorized search on small shapes.
        """
        registry = obs.get_registry()
        registry.counter("tuner.tune_calls").inc()
        candidates = registry.counter("tuner.candidates_evaluated")
        pruned_counter = registry.counter("tuner.tilings_pruned")
        best_gauge = registry.gauge("tuner.best_cost_s")
        tracer = obs.get_tracer()

        best: Optional[TuningResult] = None
        evaluated = 0
        pruned = 0
        with tracer.span(
            "tuner.tune_exhaustive",
            platform=self.platform.name,
            shape=f"N={shape.n} CB={shape.cb} CT={shape.ct} F={shape.f}",
        ) as root:
            for n_s, f_s in enumerate_sub_lut_tilings(shape, self.platform):
                tiling_had_legal = False
                for mapping in enumerate_micro_kernels(
                    shape, n_s, f_s, self.platform, max_points=self.max_micro_kernels
                ):
                    tiling_had_legal = True
                    breakdown = estimate_latency(
                        shape,
                        mapping,
                        self.platform,
                        amortize_lut_distribution=self.amortize_lut_distribution,
                    )
                    evaluated += 1
                    if best is None or breakdown.total < best.latency.total:
                        best = TuningResult(shape, mapping, breakdown, evaluated)
                        best_gauge.set(breakdown.total)
                    self._progress(evaluated, pruned, best)
                if not tiling_had_legal:
                    pruned += 1
                    pruned_counter.inc()
            # Counted once at the end: per-mapping registry updates would be
            # the hot path of the scalar loop.
            candidates.inc(evaluated)
            root.set_attribute("candidates", evaluated)
            root.set_attribute("pruned", pruned)
        if best is None:
            raise RuntimeError(f"no legal mapping found for shape {shape}")
        return TuningResult(best.shape, best.mapping, best.latency, evaluated)


def model_lut_shapes(config, v: int = 4, ct: int = 16) -> List[LUTShape]:
    """Distinct LUT workload shapes of a transformer config's linears.

    ``config`` is any object with ``tokens`` and ``linear_layer_shapes()``
    (see :class:`~repro.workloads.configs.TransformerConfig`); layers that
    repeat a (H, F) shape — every block of the model — collapse to one
    entry, which is why a whole model tunes in a handful of searches.
    """
    shapes: List[LUTShape] = []
    seen = set()
    for _, h, f in config.linear_layer_shapes():
        if h % v:
            raise ValueError(f"hidden dim {h} not divisible by V={v}")
        shape = LUTShape(n=config.tokens, h=h, f=f, v=v, ct=ct)
        if shape not in seen:
            seen.add(shape)
            shapes.append(shape)
    return shapes


def tune_model_parallel(
    config,
    platform: PIMPlatform,
    v: int = 4,
    ct: int = 16,
    jobs: int = 0,
    cache: Optional["MappingCache"] = None,
    amortize_lut_distribution: bool = False,
) -> Dict[LUTShape, TuningResult]:
    """Tune every LUT shape of a model, sharding each search over ``jobs``.

    The offline entry point of the paper's workflow ("each model need to
    be tuned only once", §5.3): results land in ``cache`` when given, so
    serving processes warm-start instead of re-running Algorithm 1.
    ``jobs=0`` uses one worker per CPU.
    """
    tuner = AutoTuner(
        platform,
        amortize_lut_distribution=amortize_lut_distribution,
        jobs=jobs,
        cache=cache,
    )
    return tuner.tune_many(model_lut_shapes(config, v=v, ct=ct))
