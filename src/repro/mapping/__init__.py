"""Hardware mapping: parameter space, analytical model, and auto-tuner."""

from .analytical import LatencyBreakdown, estimate_latency, search_micro_kernels
from .space import (
    FINE_GRAIN_SLOTS,
    INDEX_BYTES,
    LOAD_SCHEMES,
    LUT_BYTES,
    OUTPUT_BYTES,
    TRAVERSALS,
    Mapping,
    buffer_bytes_required,
    enumerate_micro_kernels,
    enumerate_sub_lut_tilings,
    is_legal,
    num_pes_used,
)
from .store import MappingStore, mapping_from_dict, mapping_to_dict
from .tuner import AutoTuner, TuneProgress, TuningResult

__all__ = [
    "Mapping",
    "is_legal",
    "num_pes_used",
    "buffer_bytes_required",
    "enumerate_sub_lut_tilings",
    "enumerate_micro_kernels",
    "LOAD_SCHEMES",
    "TRAVERSALS",
    "INDEX_BYTES",
    "LUT_BYTES",
    "OUTPUT_BYTES",
    "FINE_GRAIN_SLOTS",
    "estimate_latency",
    "search_micro_kernels",
    "LatencyBreakdown",
    "AutoTuner",
    "TuneProgress",
    "TuningResult",
    "MappingStore",
    "mapping_to_dict",
    "mapping_from_dict",
]
