"""LUT-NN mapping parameters and search-space enumeration (paper §5.3).

A :class:`Mapping` bundles the four parameter groups of the auto-tuner:

* **P1** sub-LUT tiling factors ``(n_s_tile, f_s_tile)`` — how the index
  matrix and LUTs are partitioned across PEs (Fig. 8-(a));
* **P2** micro-kernel tiling factors ``(n_m_tile, f_m_tile, cb_m_tile)`` —
  on-chip tile sizes (Fig. 8-(b));
* **P3** tile traversal order — the loop nest permutation over (N, F, CB);
* **P4** LUT load scheme — static / coarse-grain / fine-grain (Fig. 9),
  with their load-tile factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import permutations
from typing import Iterator, List, Optional, Tuple

from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform

LOAD_SCHEMES = ("static", "coarse", "fine")
TRAVERSALS: Tuple[Tuple[str, str, str], ...] = tuple(permutations(("n", "f", "cb")))

#: Bytes per element of each tensor in the deployed kernel: INT8 index
#: (CT <= 256), INT8 LUT entries, INT32 output accumulators.
INDEX_BYTES = 1
LUT_BYTES = 1
OUTPUT_BYTES = 4

#: Parallel read slots assumed for the fine-grain scheme (UPMEM hardware
#: threads each keep an ``f_load_tile`` staging buffer, paper Fig. 9).
FINE_GRAIN_SLOTS = 16


@dataclass(frozen=True)
class Mapping:
    """One point in the LUT-NN mapping space (see module docstring)."""

    n_s_tile: int
    f_s_tile: int
    n_m_tile: int
    f_m_tile: int
    cb_m_tile: int
    traversal: Tuple[str, str, str] = ("n", "f", "cb")
    load_scheme: str = "static"
    cb_load_tile: int = 1
    f_load_tile: int = 1

    def __post_init__(self) -> None:
        if self.load_scheme not in LOAD_SCHEMES:
            raise ValueError(f"unknown load scheme {self.load_scheme!r}")
        if tuple(sorted(self.traversal)) != ("cb", "f", "n"):
            raise ValueError(f"traversal must permute (n, f, cb): {self.traversal}")
        for field_name in (
            "n_s_tile",
            "f_s_tile",
            "n_m_tile",
            "f_m_tile",
            "cb_m_tile",
            "cb_load_tile",
            "f_load_tile",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def with_(self, **kwargs) -> "Mapping":
        return replace(self, **kwargs)


def num_pes_used(shape: LUTShape, mapping: Mapping) -> int:
    """PE count implied by the sub-LUT partition (paper Eq. 5)."""
    return (shape.n // mapping.n_s_tile) * (shape.f // mapping.f_s_tile)


def buffer_bytes_required(shape: LUTShape, mapping: Mapping) -> int:
    """On-chip buffer footprint of the micro kernel under ``mapping``."""
    index_tile = mapping.n_m_tile * mapping.cb_m_tile * INDEX_BYTES
    output_tile = mapping.n_m_tile * mapping.f_m_tile * OUTPUT_BYTES
    if mapping.load_scheme == "static":
        lut_buffer = shape.cb * shape.ct * mapping.f_s_tile * LUT_BYTES
    elif mapping.load_scheme == "coarse":
        lut_buffer = mapping.cb_load_tile * shape.ct * mapping.f_load_tile * LUT_BYTES
    else:  # fine
        lut_buffer = FINE_GRAIN_SLOTS * mapping.f_load_tile * LUT_BYTES
    return index_tile + output_tile + lut_buffer


def is_legal(shape: LUTShape, mapping: Mapping, platform: PIMPlatform) -> bool:
    """Check divisibility, PE-count, and buffer constraints."""
    if shape.n % mapping.n_s_tile or shape.f % mapping.f_s_tile:
        return False
    if mapping.n_s_tile % mapping.n_m_tile or mapping.f_s_tile % mapping.f_m_tile:
        return False
    if shape.cb % mapping.cb_m_tile:
        return False
    if num_pes_used(shape, mapping) > platform.num_pes:
        return False
    # Load tiles must fit inside the micro-kernel tile they feed: a load
    # block larger than the m-tile would stream bytes the tile never uses.
    if mapping.load_scheme == "coarse":
        if mapping.cb_load_tile > mapping.cb_m_tile:
            return False
        if mapping.f_load_tile > mapping.f_m_tile:
            return False
    if mapping.load_scheme == "fine" and mapping.f_load_tile > mapping.f_m_tile:
        return False
    return buffer_bytes_required(shape, mapping) <= platform.local_memory.buffer_bytes


def _pow2_divisors(value: int, limit: Optional[int] = None) -> List[int]:
    """Powers of two dividing ``value`` (plus ``value`` itself), ascending."""
    out = []
    d = 1
    while d <= value:
        if value % d == 0:
            out.append(d)
        d *= 2
    if value not in out:
        out.append(value)
    if limit is not None:
        out = [d for d in out if d <= limit]
    return out


def enumerate_sub_lut_tilings(
    shape: LUTShape, platform: PIMPlatform
) -> Iterator[Tuple[int, int]]:
    """Legal (n_s_tile, f_s_tile) pairs — the outer loop of Algorithm 1."""
    for n_s in _pow2_divisors(shape.n):
        groups = shape.n // n_s
        if groups > platform.num_pes:
            continue
        for f_s in _pow2_divisors(shape.f):
            if num_pes_used(shape, Mapping(n_s, f_s, 1, 1, 1)) <= platform.num_pes:
                yield (n_s, f_s)


def mapping_sort_key(mapping: Mapping) -> Tuple:
    """Total order over mappings, independent of enumeration order.

    The parallel tuner merges per-shard winners with this key as the final
    tie-break, so equal-cost candidates resolve identically regardless of
    how the search space was sharded.
    """
    return (
        mapping.n_s_tile,
        mapping.f_s_tile,
        mapping.n_m_tile,
        mapping.f_m_tile,
        mapping.cb_m_tile,
        mapping.traversal,
        mapping.load_scheme,
        mapping.cb_load_tile,
        mapping.f_load_tile,
    )


def shard_tilings(indexed_tilings: List, jobs: int) -> List[List]:
    """Split ``[(index, tiling), ...]`` into at most ``jobs`` strided shards.

    Strided (round-robin) assignment balances load: early tilings tend to
    have small sub-LUT spaces (heavy pruning) while late ones carry the
    bulk of the micro-kernel search.  Empty shards are dropped, so the
    result length is ``min(jobs, len(indexed_tilings))``.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    shards = [indexed_tilings[i::jobs] for i in range(jobs)]
    return [shard for shard in shards if shard]


def enumerate_micro_kernels(
    shape: LUTShape,
    n_s_tile: int,
    f_s_tile: int,
    platform: PIMPlatform,
    max_points: Optional[int] = None,
) -> Iterator[Mapping]:
    """All legal micro-kernel mappings for one sub-LUT tiling.

    Enumerates P2 (power-of-two tile factors), P3 (all six traversal
    orders), and P4 (three load schemes with power-of-two load tiles).
    """
    count = 0
    n_m_options = _pow2_divisors(n_s_tile, limit=256)
    f_m_options = _pow2_divisors(f_s_tile, limit=256)
    cb_m_options = _pow2_divisors(shape.cb, limit=256)
    for n_m in n_m_options:
        for f_m in f_m_options:
            for cb_m in cb_m_options:
                for traversal in TRAVERSALS:
                    for scheme in LOAD_SCHEMES:
                        if scheme == "static":
                            candidates = [
                                Mapping(
                                    n_s_tile, f_s_tile, n_m, f_m, cb_m,
                                    traversal, "static",
                                )
                            ]
                        elif scheme == "coarse":
                            candidates = [
                                Mapping(
                                    n_s_tile, f_s_tile, n_m, f_m, cb_m,
                                    traversal, "coarse",
                                    cb_load_tile=cb_l, f_load_tile=f_l,
                                )
                                for cb_l in _pow2_divisors(shape.cb, limit=16)
                                for f_l in _pow2_divisors(f_s_tile, limit=64)
                            ]
                        else:
                            candidates = [
                                Mapping(
                                    n_s_tile, f_s_tile, n_m, f_m, cb_m,
                                    traversal, "fine", f_load_tile=f_l,
                                )
                                for f_l in _pow2_divisors(f_s_tile, limit=128)
                            ]
                        for mapping in candidates:
                            if is_legal(shape, mapping, platform):
                                yield mapping
                                count += 1
                                if max_points is not None and count >= max_points:
                                    return
