"""Persistence for tuned mappings.

The paper tunes each model's LUT kernels once, offline (§5.3: "each model
need to be tuned only once"), and ships the mapping parameters with the
model.  This module serializes :class:`~repro.mapping.tuner.TuningResult`
objects to JSON so a serving process can load them without re-running
Algorithm 1.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..core.codebook import LUTShape
from .analytical import LatencyBreakdown
from .space import Mapping
from .tuner import TuningResult

FORMAT_VERSION = 1


def mapping_to_dict(mapping: Mapping) -> dict:
    return {
        "n_s_tile": mapping.n_s_tile,
        "f_s_tile": mapping.f_s_tile,
        "n_m_tile": mapping.n_m_tile,
        "f_m_tile": mapping.f_m_tile,
        "cb_m_tile": mapping.cb_m_tile,
        "traversal": list(mapping.traversal),
        "load_scheme": mapping.load_scheme,
        "cb_load_tile": mapping.cb_load_tile,
        "f_load_tile": mapping.f_load_tile,
    }


def mapping_from_dict(data: dict) -> Mapping:
    return Mapping(
        n_s_tile=int(data["n_s_tile"]),
        f_s_tile=int(data["f_s_tile"]),
        n_m_tile=int(data["n_m_tile"]),
        f_m_tile=int(data["f_m_tile"]),
        cb_m_tile=int(data["cb_m_tile"]),
        traversal=tuple(data["traversal"]),
        load_scheme=data["load_scheme"],
        cb_load_tile=int(data["cb_load_tile"]),
        f_load_tile=int(data["f_load_tile"]),
    )


def _shape_key(shape: LUTShape) -> str:
    return f"n{shape.n}_h{shape.h}_f{shape.f}_v{shape.v}_ct{shape.ct}"


def _shape_to_dict(shape: LUTShape) -> dict:
    return {"n": shape.n, "h": shape.h, "f": shape.f, "v": shape.v, "ct": shape.ct}


def _shape_from_dict(data: dict) -> LUTShape:
    return LUTShape(**{k: int(v) for k, v in data.items()})


class MappingStore:
    """A JSON-backed registry of tuned mappings, keyed by platform + shape."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: Dict[str, dict] = {}
        if path and os.path.exists(path):
            self.load(path)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        platform_name, shape = key
        return self._key(platform_name, shape) in self._entries

    @staticmethod
    def _key(platform_name: str, shape: LUTShape) -> str:
        return f"{platform_name}::{_shape_key(shape)}"

    def put(self, platform_name: str, result: TuningResult) -> None:
        """Record a tuning result."""
        self._entries[self._key(platform_name, result.shape)] = {
            "platform": platform_name,
            "shape": _shape_to_dict(result.shape),
            "mapping": mapping_to_dict(result.mapping),
            "latency_s": result.latency.total,
            "breakdown": {
                "sub_index": result.latency.sub_index,
                "sub_lut": result.latency.sub_lut,
                "sub_output": result.latency.sub_output,
                "kernel_transfer": result.latency.kernel_transfer,
                "kernel_reduce": result.latency.kernel_reduce,
                "launch": result.latency.launch,
            },
            "candidates_evaluated": result.candidates_evaluated,
        }

    def get(self, platform_name: str, shape: LUTShape) -> Optional[TuningResult]:
        """Load a previously tuned mapping, or None when absent."""
        entry = self._entries.get(self._key(platform_name, shape))
        if entry is None:
            return None
        breakdown = LatencyBreakdown(**entry["breakdown"])
        return TuningResult(
            shape=_shape_from_dict(entry["shape"]),
            mapping=mapping_from_dict(entry["mapping"]),
            latency=breakdown,
            candidates_evaluated=int(entry["candidates_evaluated"]),
        )

    def save(self, path: Optional[str] = None) -> str:
        """Write the registry to JSON; returns the path written."""
        path = path or self.path
        if not path:
            raise ValueError("no path given to save the mapping store")
        payload = {"version": FORMAT_VERSION, "entries": self._entries}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        self.path = path
        return path

    def load(self, path: str) -> None:
        with open(path) as fh:
            payload = json.load(fh)
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported mapping store version {version!r}")
        self._entries = payload["entries"]
        self.path = path
