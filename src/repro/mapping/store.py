"""Persistence for tuned mappings.

The paper tunes each model's LUT kernels once, offline (§5.3: "each model
need to be tuned only once"), and ships the mapping parameters with the
model.  Two persistence layers implement that workflow:

* :class:`MappingStore` — a single-file JSON registry of tuning results,
  the artifact a model ships with (``repro tune --store FILE``);
* :class:`MappingCache` — a cross-run, content-addressed cache directory:
  one file per ``(LUT shape, platform fingerprint, FORMAT_VERSION)``
  entry, written atomically so concurrent tuners never corrupt each
  other, and read leniently — corrupt or stale files are skipped with a
  warning, never a crash.  :class:`~repro.mapping.tuner.AutoTuner`
  consults it before any search (warm start) and fills it after.

Cache hit/miss/write/rejection counts land in ``repro.obs`` under
``mapping_cache.*``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import warnings
from typing import Dict, Optional

from .. import obs
from ..core.codebook import LUTShape
from ..pim.platforms import PIMPlatform
from .analytical import LatencyBreakdown
from .space import Mapping
from .tuner import TuningResult

#: Bumped whenever the on-disk entry schema changes; readers skip (cache)
#: or reject (store) files written under any other version.
FORMAT_VERSION = 2


def mapping_to_dict(mapping: Mapping) -> dict:
    return {
        "n_s_tile": mapping.n_s_tile,
        "f_s_tile": mapping.f_s_tile,
        "n_m_tile": mapping.n_m_tile,
        "f_m_tile": mapping.f_m_tile,
        "cb_m_tile": mapping.cb_m_tile,
        "traversal": list(mapping.traversal),
        "load_scheme": mapping.load_scheme,
        "cb_load_tile": mapping.cb_load_tile,
        "f_load_tile": mapping.f_load_tile,
    }


def mapping_from_dict(data: dict) -> Mapping:
    return Mapping(
        n_s_tile=int(data["n_s_tile"]),
        f_s_tile=int(data["f_s_tile"]),
        n_m_tile=int(data["n_m_tile"]),
        f_m_tile=int(data["f_m_tile"]),
        cb_m_tile=int(data["cb_m_tile"]),
        traversal=tuple(data["traversal"]),
        load_scheme=data["load_scheme"],
        cb_load_tile=int(data["cb_load_tile"]),
        f_load_tile=int(data["f_load_tile"]),
    )


def platform_fingerprint(platform: PIMPlatform) -> str:
    """Stable content hash of every constant that shapes tuning results.

    Any change to the platform model — bandwidths, buffer sizes, PE
    counts, extras — yields a new fingerprint, so cached mappings tuned
    against an older hardware description are never silently reused.
    """
    payload = dataclasses.asdict(platform)
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _shape_key(shape: LUTShape) -> str:
    return f"n{shape.n}_h{shape.h}_f{shape.f}_v{shape.v}_ct{shape.ct}"


def _shape_to_dict(shape: LUTShape) -> dict:
    return {"n": shape.n, "h": shape.h, "f": shape.f, "v": shape.v, "ct": shape.ct}


def _shape_from_dict(data: dict) -> LUTShape:
    return LUTShape(**{k: int(v) for k, v in data.items()})


def _result_to_entry(platform_name: str, result: TuningResult) -> dict:
    return {
        "platform": platform_name,
        "shape": _shape_to_dict(result.shape),
        "mapping": mapping_to_dict(result.mapping),
        "latency_s": result.latency.total,
        "breakdown": {
            "sub_index": result.latency.sub_index,
            "sub_lut": result.latency.sub_lut,
            "sub_output": result.latency.sub_output,
            "kernel_transfer": result.latency.kernel_transfer,
            "kernel_reduce": result.latency.kernel_reduce,
            "launch": result.latency.launch,
        },
        "candidates_evaluated": result.candidates_evaluated,
    }


def _result_from_entry(entry: dict) -> TuningResult:
    return TuningResult(
        shape=_shape_from_dict(entry["shape"]),
        mapping=mapping_from_dict(entry["mapping"]),
        latency=LatencyBreakdown(**entry["breakdown"]),
        candidates_evaluated=int(entry["candidates_evaluated"]),
    )


def _atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON via a unique temp file + ``os.replace``.

    Concurrent writers each stage their own temp file in the target
    directory; the last rename wins and readers only ever observe a
    complete file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp-"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class MappingStore:
    """A JSON-backed registry of tuned mappings, keyed by platform + shape.

    Constructing with a path auto-loads it *leniently*: an unreadable or
    wrong-version file starts an empty store with a warning, so a damaged
    artifact degrades to re-tuning rather than crashing the process.  The
    explicit :meth:`load` stays strict and raises.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: Dict[str, dict] = {}
        if path and os.path.exists(path):
            try:
                self.load(path)
            except (ValueError, OSError) as exc:
                warnings.warn(
                    f"ignoring unusable mapping store {path!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._entries = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        platform_name, shape = key
        return self._key(platform_name, shape) in self._entries

    @staticmethod
    def _key(platform_name: str, shape: LUTShape) -> str:
        return f"{platform_name}::{_shape_key(shape)}"

    def put(self, platform_name: str, result: TuningResult) -> None:
        """Record a tuning result."""
        self._entries[self._key(platform_name, result.shape)] = _result_to_entry(
            platform_name, result
        )

    def get(self, platform_name: str, shape: LUTShape) -> Optional[TuningResult]:
        """Load a previously tuned mapping, or None when absent."""
        entry = self._entries.get(self._key(platform_name, shape))
        if entry is None:
            return None
        return _result_from_entry(entry)

    def save(self, path: Optional[str] = None) -> str:
        """Atomically write the registry to JSON; returns the path written."""
        path = path or self.path
        if not path:
            raise ValueError("no path given to save the mapping store")
        payload = {"version": FORMAT_VERSION, "entries": self._entries}
        _atomic_write_json(path, payload)
        self.path = path
        return path

    def load(self, path: str) -> None:
        """Strictly load ``path``; raises ValueError on version/format drift."""
        with open(path) as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(f"corrupt mapping store: {exc}") from exc
        version = payload.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported mapping store version {version!r}")
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            raise ValueError("corrupt mapping store: no entries object")
        self._entries = entries
        self.path = path


class MappingCache:
    """Persistent cross-run tuning cache: one JSON file per entry.

    Entries are content-addressed by ``(platform fingerprint, LUT shape,
    amortization mode, FORMAT_VERSION)``, all encoded in the filename, so
    a lookup is a single ``open()`` with no index to maintain and no lock
    to take.  Writes go through a unique temp file + atomic rename;
    unreadable, stale, or mismatched files are treated as misses (with a
    ``RuntimeWarning``), never as errors.
    """

    def __init__(self, directory: str):
        self.directory = os.path.expanduser(directory)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappingCache({self.directory!r})"

    def entry_path(
        self, platform: PIMPlatform, shape: LUTShape, amortize: bool = False
    ) -> str:
        mode = "amortized" if amortize else "full"
        name = (
            f"v{FORMAT_VERSION}-{platform_fingerprint(platform)}"
            f"-{_shape_key(shape)}-{mode}.json"
        )
        return os.path.join(self.directory, name)

    def __len__(self) -> int:
        """Number of entry files for the current FORMAT_VERSION."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        prefix = f"v{FORMAT_VERSION}-"
        return sum(1 for n in names if n.startswith(prefix) and n.endswith(".json"))

    def get(
        self, platform: PIMPlatform, shape: LUTShape, amortize: bool = False
    ) -> Optional[TuningResult]:
        """Warm-start lookup; None on miss or any unusable entry file."""
        registry = obs.get_registry()
        path = self.entry_path(platform, shape, amortize)
        if not os.path.exists(path):
            registry.counter("mapping_cache.misses").inc()
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._reject(path, f"unreadable entry: {exc}")
            return None
        if payload.get("version") != FORMAT_VERSION:
            self._reject(path, f"format version {payload.get('version')!r}")
            return None
        if payload.get("fingerprint") != platform_fingerprint(platform):
            self._reject(path, "platform fingerprint mismatch")
            return None
        try:
            result = _result_from_entry(payload["entry"])
        except (KeyError, TypeError, ValueError) as exc:
            self._reject(path, f"malformed entry: {exc}")
            return None
        if result.shape != shape:
            self._reject(path, "shape mismatch")
            return None
        registry.counter("mapping_cache.hits").inc()
        return result

    def put(
        self, platform: PIMPlatform, result: TuningResult, amortize: bool = False
    ) -> str:
        """Atomically persist one tuning result; returns the entry path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.entry_path(platform, result.shape, amortize)
        payload = {
            "version": FORMAT_VERSION,
            "fingerprint": platform_fingerprint(platform),
            "amortize_lut_distribution": amortize,
            "entry": _result_to_entry(platform.name, result),
        }
        _atomic_write_json(path, payload)
        obs.get_registry().counter("mapping_cache.writes").inc()
        return path

    @staticmethod
    def _reject(path: str, reason: str) -> None:
        obs.get_registry().counter("mapping_cache.rejected").inc()
        warnings.warn(
            f"skipping mapping cache file {path!r}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
