"""Setup shim: enables legacy editable installs where the `wheel` package
(required by setuptools' PEP 660 backend at this version) is unavailable."""

from setuptools import setup

setup()
