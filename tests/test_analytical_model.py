"""Unit tests for the analytical latency model (paper Eqs. 3-10)."""

import numpy as np
import pytest

from repro.core import LUTShape
from repro.mapping import (
    Mapping,
    estimate_latency,
    search_micro_kernels,
)
from repro.mapping.analytical import _load_count
from repro.pim import get_platform


@pytest.fixture
def platform():
    return get_platform("upmem")


@pytest.fixture
def shape():
    return LUTShape(n=1024, h=64, f=256, v=4, ct=16)


@pytest.fixture
def mapping():
    return Mapping(128, 32, 8, 8, 4, load_scheme="coarse",
                   cb_load_tile=2, f_load_tile=4)


class TestLoadCount:
    """The loop-nest reuse model behind Eqs. 8-9."""

    def trips(self):
        return {"n": 4, "f": 3, "cb": 5}

    def test_innermost_dependent_tensor_loads_every_tile(self):
        # Index depends on (n, cb); with cb innermost it reloads fully.
        assert _load_count(("n", "f", "cb"), self.trips(), ("n", "cb")) == 60

    def test_inner_irrelevant_loop_reuses(self):
        # Output depends on (n, f); cb innermost -> stays resident: 12 loads.
        assert _load_count(("n", "f", "cb"), self.trips(), ("n", "f")) == 12

    def test_outer_irrelevant_loop_evicts(self):
        # Output with cb outermost: revisited per cb iteration -> 60.
        assert _load_count(("cb", "n", "f"), self.trips(), ("n", "f")) == 60

    def test_single_dependency(self):
        assert _load_count(("n", "f", "cb"), self.trips(), ("n",)) == 4

    def test_single_trip_relevant_dim_never_evicts(self):
        # Relevant dims all at trip 1: one tile, loaded once, regardless of
        # irrelevant loops iterating around it.
        trips = {"n": 16, "f": 1, "cb": 1}
        assert _load_count(("f", "n", "cb"), trips, ("cb", "f")) == 1
        assert _load_count(("n", "f", "cb"), trips, ("cb", "f")) == 1
        # One moving relevant dim outer, static one inner.
        trips2 = {"n": 4, "f": 2, "cb": 1}
        assert _load_count(("f", "n", "cb"), trips2, ("cb", "f")) == 2

    def test_matches_explicit_walk(self):
        """Cross-validate against a brute-force resident-tag walk."""
        import itertools

        for trips in ({"n": 3, "f": 4, "cb": 2}, {"n": 5, "f": 1, "cb": 2},
                      {"n": 1, "f": 3, "cb": 1}):
            self._check_all_orders(trips)

    def _check_all_orders(self, trips):
        import itertools

        for order in itertools.permutations(("n", "f", "cb")):
            for deps in [("n", "cb"), ("n", "f"), ("cb", "f")]:
                resident = None
                loads = 0
                dims = {}
                for i0 in range(trips[order[0]]):
                    dims[order[0]] = i0
                    for i1 in range(trips[order[1]]):
                        dims[order[1]] = i1
                        for i2 in range(trips[order[2]]):
                            dims[order[2]] = i2
                            tag = tuple(dims[d] for d in deps)
                            if tag != resident:
                                loads += 1
                                resident = tag
                assert _load_count(order, trips, deps) == loads, (order, deps)


class TestEstimateLatency:
    def test_breakdown_composition(self, shape, mapping, platform):
        lb = estimate_latency(shape, mapping, platform)
        assert lb.sub_lut_partition == pytest.approx(
            lb.sub_index + lb.sub_lut + lb.sub_output
        )
        assert lb.micro_kernel == pytest.approx(lb.kernel_transfer + lb.kernel_reduce)
        assert lb.total == pytest.approx(lb.sub_lut_partition + lb.micro_kernel + lb.launch)
        assert lb.total > 0

    def test_illegal_mapping_rejected(self, shape, platform):
        with pytest.raises(ValueError):
            estimate_latency(shape, Mapping(100, 32, 4, 8, 4), platform)

    def test_amortized_lut_distribution_cheaper(self, shape, mapping, platform):
        full = estimate_latency(shape, mapping, platform)
        amortized = estimate_latency(shape, mapping, platform,
                                     amortize_lut_distribution=True)
        assert amortized.sub_lut == 0.0
        assert amortized.total < full.total

    def test_reduce_scales_with_work(self, platform):
        small = LUTShape(n=512, h=64, f=256, v=4, ct=16)
        large = LUTShape(n=2048, h=64, f=256, v=4, ct=16)
        m_small = Mapping(64, 32, 8, 8, 4, load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
        m_large = Mapping(256, 32, 8, 8, 4, load_scheme="coarse", cb_load_tile=2, f_load_tile=4)
        t_small = estimate_latency(small, m_small, platform).kernel_reduce
        t_large = estimate_latency(large, m_large, platform).kernel_reduce
        assert t_large == pytest.approx(4 * t_small)

    def test_static_load_pays_once(self, shape, platform):
        static = Mapping(128, 8, 8, 8, 4, load_scheme="static")
        lb = estimate_latency(shape, static, platform)
        local = platform.local_memory
        lut_bytes = shape.cb * shape.ct * 8
        expected = local.latency(lut_bytes, min(lut_bytes, 2048))
        # The LUT part of kernel transfer equals a single staging pass.
        index_output = lb.kernel_transfer - expected
        assert index_output > 0

    def test_fine_grain_pays_per_row_gather(self, shape, platform):
        fine = Mapping(128, 32, 8, 8, 4, load_scheme="fine", f_load_tile=4)
        coarse = Mapping(128, 32, 8, 8, 4, load_scheme="coarse",
                         cb_load_tile=4, f_load_tile=8)
        t_fine = estimate_latency(shape, fine, platform).kernel_transfer
        t_coarse = estimate_latency(shape, coarse, platform).kernel_transfer
        # At N_s >> CT the per-row gather must exceed the bulk stream.
        assert t_fine > t_coarse


class TestVectorizedSearch:
    def test_matches_scalar_exhaustive(self, platform):
        """The numpy KernelSearch equals the scalar reference everywhere."""
        from repro.mapping import enumerate_micro_kernels

        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        for n_s, f_s in [(64, 16), (256, 64), (32, 8)]:
            found = search_micro_kernels(shape, n_s, f_s, platform)
            assert found is not None
            mapping, cost = found
            best_scalar = np.inf
            for m in enumerate_micro_kernels(shape, n_s, f_s, platform):
                lb = estimate_latency(shape, m, platform)
                best_scalar = min(best_scalar, lb.micro_kernel)
            assert cost == pytest.approx(best_scalar, rel=1e-9)
            # The returned mapping really achieves its reported cost.
            lb = estimate_latency(shape, mapping, platform)
            assert lb.micro_kernel == pytest.approx(cost, rel=1e-9)

    def test_returns_none_when_nothing_fits(self):
        from dataclasses import replace

        platform = get_platform("upmem")
        tiny_buffer = replace(
            platform, local_memory=replace(platform.local_memory, buffer_bytes=4)
        )
        shape = LUTShape(n=256, h=32, f=64, v=4, ct=8)
        assert search_micro_kernels(shape, 64, 16, tiny_buffer) is None
