"""Tentpole tests: the double-buffered host<->PIM overlap pipeline.

Covers the three layers the ``overlap`` flag threads through —

* the analytical model (:func:`repro.mapping.analytical.estimate_latency`
  with ``overlap=True`` / :func:`~repro.mapping.analytical.with_overlap`),
* the event-level simulator (:meth:`repro.pim.PIMSimulator.run`),
* the engines (:class:`~repro.engine.engine.PIMDLEngine`,
  :class:`~repro.engine.decode.LUTDecodeEngine`) and serving layer —

and, crucially, the *off* switch: ``overlap=False`` (the default) must be
bit-identical to the pre-pipeline system, so the golden mapping table and
every existing latency pin stay untouched.
"""

import pytest

from repro.baselines import wimpy_host
from repro.core import LUTShape
from repro.engine import PIMDLEngine
from repro.engine.decode import LUTDecodeEngine
from repro.engine.serving import GenerationServer
from repro.mapping import (
    AutoTuner,
    Mapping,
    estimate_latency,
    pipeline_overlap_hidden,
    with_overlap,
)
from repro.pim import PIMSimulator, get_platform
from repro.resilience import FaultInjector, FaultPlan
from repro.workloads import bert_base

# A transfer-bound multi-tile mapping for BERT-base's (128, 768, 768)
# layer on UPMEM: small micro-kernel tiles under a coarse load scheme,
# so per-tile DMA slightly exceeds the reduce stream and the pipeline has
# real, near-fully-hideable work.  (The *tuned* mapping for this shape is
# single-tile — nothing to overlap — which is exactly why these tests
# pick the mapping by hand.)
SHAPE = LUTShape(n=128, h=768, f=768, v=4, ct=16)
MULTI_TILE = Mapping(
    n_s_tile=64, f_s_tile=4, n_m_tile=4, f_m_tile=1, cb_m_tile=16,
    traversal=("n", "cb", "f"), load_scheme="coarse",
    cb_load_tile=8, f_load_tile=1,
)


@pytest.fixture(scope="module")
def upmem():
    return get_platform("upmem")


class TestAnalyticalOverlap:
    def test_off_is_bit_identical(self, upmem):
        base = estimate_latency(SHAPE, MULTI_TILE, upmem)
        off = estimate_latency(SHAPE, MULTI_TILE, upmem, overlap=False)
        assert base == off
        assert base.overlap_hidden == 0.0
        assert base.exposed_transfer == base.kernel_transfer

    def test_overlap_preserves_sequential_work(self, upmem):
        seq = estimate_latency(SHAPE, MULTI_TILE, upmem)
        ov = estimate_latency(SHAPE, MULTI_TILE, upmem, overlap=True)
        assert ov.overlap_hidden > 0.0
        # The pipelined total is the sequential total minus exactly the
        # hidden transfer — no work is created or destroyed.
        assert ov.total == pytest.approx(seq.total - ov.overlap_hidden, rel=1e-12)
        # Every phase except the folded micro_kernel matches.
        assert ov.sub_index == seq.sub_index
        assert ov.sub_lut == seq.sub_lut
        assert ov.sub_output == seq.sub_output
        assert ov.kernel_transfer == seq.kernel_transfer
        assert ov.kernel_reduce == seq.kernel_reduce
        assert ov.launch == seq.launch
        assert ov.exposed_transfer == pytest.approx(
            ov.kernel_transfer - ov.overlap_hidden
        )

    def test_hidden_is_bounded_by_both_streams(self, upmem):
        lat = estimate_latency(SHAPE, MULTI_TILE, upmem)
        hidden = pipeline_overlap_hidden(SHAPE, MULTI_TILE, lat)
        # (T-1)/T * min(transfer, compute) < min of either stream.
        assert 0.0 < hidden < min(lat.kernel_transfer, lat.kernel_reduce)

    def test_single_tile_hides_nothing(self, upmem):
        # The tuned mapping for this shape is a single micro-tile: fill
        # and drain consume the whole pipeline, so nothing is hidden.
        tuned = AutoTuner(upmem).tune(SHAPE)
        lat_ov = estimate_latency(SHAPE, tuned.mapping, upmem, overlap=True)
        assert lat_ov == tuned.latency
        assert lat_ov.overlap_hidden == 0.0

    def test_with_overlap_noop_returns_same_object(self, upmem):
        tuned = AutoTuner(upmem).tune(SHAPE)
        assert with_overlap(SHAPE, tuned.mapping, tuned.latency) is tuned.latency

    def test_tuned_mappings_unaffected_by_overlap_flag(self, upmem):
        # The tuner never sees the overlap flag — golden mappings stay put.
        result = AutoTuner(upmem).tune(SHAPE)
        assert result.latency.overlap_hidden == 0.0


class TestSimulatorOverlap:
    def test_off_is_bit_identical(self, upmem):
        sim = PIMSimulator(upmem)
        default = sim.run(SHAPE, MULTI_TILE)
        off = sim.run(SHAPE, MULTI_TILE, overlap=False)
        assert default.total_s == off.total_s
        assert default.kernel_s == off.kernel_s
        assert default.overlap_hidden_s == 0.0 == off.overlap_hidden_s
        assert default.profile.phase_seconds == off.profile.phase_seconds

    def test_overlap_hides_transfer(self, upmem):
        sim = PIMSimulator(upmem)
        seq = sim.run(SHAPE, MULTI_TILE)
        ov = sim.run(SHAPE, MULTI_TILE, overlap=True)
        assert ov.overlap_hidden_s > 0.0
        assert ov.total_s == pytest.approx(
            seq.total_s - ov.overlap_hidden_s, rel=1e-12
        )
        # The hidden time comes out of the dma phase alone.
        assert ov.profile.phase_seconds["dma"] == pytest.approx(
            seq.profile.phase_seconds["dma"] - ov.overlap_hidden_s, rel=1e-12
        )
        assert ov.profile.phase_seconds["reduce"] == pytest.approx(
            seq.profile.phase_seconds["reduce"], rel=1e-12
        )

    def test_phases_partition_total_under_overlap(self, upmem):
        report = PIMSimulator(upmem).run(SHAPE, MULTI_TILE, overlap=True)
        assert sum(report.profile.phase_seconds.values()) == pytest.approx(
            report.total_s, abs=1e-9
        )
        assert report.profile.overlap_hidden_s == report.overlap_hidden_s

    def test_phases_partition_total_under_overlap_and_straggler(self, upmem):
        injector = FaultInjector(FaultPlan(seed=0, straggler_factor=1.7))
        report = PIMSimulator(upmem).run(
            SHAPE, MULTI_TILE, injector=injector, overlap=True
        )
        assert "straggler" in report.faults
        assert sum(report.profile.phase_seconds.values()) == pytest.approx(
            report.total_s, abs=1e-9
        )
        # The straggler stretches hidden time with everything else.
        clean = PIMSimulator(upmem).run(SHAPE, MULTI_TILE, overlap=True)
        assert report.overlap_hidden_s == pytest.approx(
            1.7 * clean.overlap_hidden_s, rel=1e-12
        )

    def test_simulator_agrees_with_analytical_on_hidden_fraction(self, upmem):
        """Both layers of the model agree the mapping is pipeline-friendly."""
        lat = estimate_latency(SHAPE, MULTI_TILE, upmem, overlap=True)
        report = PIMSimulator(upmem).run(SHAPE, MULTI_TILE, overlap=True)
        model_frac = lat.overlap_hidden / lat.kernel_transfer
        sim_frac = report.overlap_hidden_s / (
            report.overlap_hidden_s + report.profile.phase_seconds["dma"]
        )
        assert model_frac > 0.5
        assert sim_frac > 0.5


@pytest.fixture(scope="module")
def tiny_bert():
    return bert_base(seq_len=128, batch_size=1).with_(num_layers=1)


class TestEngineOverlap:
    def test_engine_off_matches_default(self, tiny_bert, upmem):
        host = wimpy_host()
        base = PIMDLEngine(upmem, host).run(tiny_bert)
        off = PIMDLEngine(upmem, host, overlap=False).run(tiny_bert)
        assert base.total_s == off.total_s
        assert off.overlap_hidden_s == 0.0

    def test_engine_phase_invariant_under_overlap(self, tiny_bert, upmem):
        report = PIMDLEngine(upmem, wimpy_host(), overlap=True).run(tiny_bert)
        # Phases account for the *sequential* work; the exposed total is
        # wall clock.  (With the tuned single-tile mappings hidden may be
        # zero — the invariant must hold either way.)
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.total_s + report.overlap_hidden_s, rel=1e-9
        )
        assert report.overlap_hidden_s >= 0.0

    def test_engine_overlap_never_slower(self, tiny_bert, upmem):
        host = wimpy_host()
        seq = PIMDLEngine(upmem, host).run(tiny_bert)
        ov = PIMDLEngine(upmem, host, overlap=True).run(tiny_bert)
        assert ov.total_s <= seq.total_s
        assert ov.total_s == pytest.approx(
            seq.total_s - ov.overlap_hidden_s, rel=1e-9
        )

    def test_decode_phases_sum_to_token_latency(self, tiny_bert, upmem):
        report = LUTDecodeEngine(upmem, wimpy_host(), overlap=True).run(
            tiny_bert, batch_size=1, context_len=128
        )
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.token_latency_s, rel=1e-9
        )
        assert report.overlap_hidden_s >= 0.0

    def test_decode_off_matches_default(self, tiny_bert, upmem):
        host = wimpy_host()
        base = LUTDecodeEngine(upmem, host).run(tiny_bert, batch_size=1)
        off = LUTDecodeEngine(upmem, host, overlap=False).run(
            tiny_bert, batch_size=1
        )
        assert base.token_latency_s == off.token_latency_s
        assert off.overlap_hidden_s == 0.0

    def test_server_threads_overlap_to_both_engines(self, tiny_bert, upmem):
        server = GenerationServer(upmem, wimpy_host(), overlap=True)
        assert server.prefill_engine.overlap is True
        assert server.decode_engine.overlap is True
        report = server.run(tiny_bert, prompt_len=32, generate_len=2,
                            batch_size=1)
        assert report.request_latency_s > 0.0

    def test_server_off_is_identical(self, tiny_bert, upmem):
        host = wimpy_host()
        base = GenerationServer(upmem, host).run(
            tiny_bert, prompt_len=32, generate_len=2, batch_size=1
        )
        off = GenerationServer(upmem, host, overlap=False).run(
            tiny_bert, prompt_len=32, generate_len=2, batch_size=1
        )
        assert base.prefill_s == off.prefill_s
        assert base.decode_s == off.decode_s
