"""Cross-platform consistency tests: UPMEM vs HBM-PIM vs AiM."""

import numpy as np
import pytest

from repro.core import LUTShape, lut_lookup
from repro.mapping import AutoTuner, estimate_latency
from repro.pim import PIMSimulator, get_platform

PLATFORM_NAMES = ("upmem", "hbm-pim", "aim")


@pytest.fixture(scope="module")
def shape():
    return LUTShape(n=2048, h=256, f=512, v=4, ct=16)


@pytest.fixture(scope="module")
def tuned(shape):
    return {name: AutoTuner(get_platform(name)).tune(shape) for name in PLATFORM_NAMES}


class TestCrossPlatformTuning:
    def test_all_platforms_tune_successfully(self, tuned, shape):
        for name, result in tuned.items():
            assert result.cost > 0
            assert result.shape == shape

    def test_simulated_platforms_much_faster_than_upmem(self, tuned):
        """HBM-PIM/AiM have orders more bandwidth and compute."""
        assert tuned["hbm-pim"].cost < tuned["upmem"].cost / 5
        assert tuned["aim"].cost < tuned["upmem"].cost / 5

    def test_aim_beats_hbm_pim_on_reduce_bound_kernels(self, tuned):
        """AiM's 16 vs 4.8 TFLOPS shows on the same workload."""
        assert tuned["aim"].cost <= tuned["hbm-pim"].cost * 1.1

    def test_model_tracks_simulator_on_every_platform(self):
        """On production-sized kernels the closed form tracks the simulator.

        (On tiny kernels the simulator's per-PE command and per-rank setup
        overheads — which Eqs. 3-10 deliberately omit — dominate, so the
        agreement bound is only asserted at serving scale.)
        """
        big = LUTShape(n=32768, h=768, f=3072, v=4, ct=16)
        for name in PLATFORM_NAMES:
            platform = get_platform(name)
            result = AutoTuner(platform).tune(big)
            sim = PIMSimulator(platform).run(big, result.mapping)
            err = abs(sim.total_s - result.cost) / sim.total_s
            assert err < 0.25, f"{name}: model-vs-sim error {err:.1%}"

    def test_functional_output_identical_across_platforms(self, tuned, shape):
        """The same kernel inputs produce the same outputs everywhere —
        mappings change timing, never results."""
        rng = np.random.default_rng(0)
        indices = rng.integers(0, shape.ct, size=(shape.n, shape.cb)).astype(np.int32)
        lut = rng.normal(size=(shape.cb, shape.ct, shape.f))
        reference = lut_lookup(indices, lut)
        for name, result in tuned.items():
            sim = PIMSimulator(get_platform(name))
            report = sim.run(shape, result.mapping, indices=indices, lut=lut)
            np.testing.assert_allclose(report.output, reference, atol=1e-12)


class TestAmortizationAcrossPlatforms:
    def test_amortized_never_slower(self, shape):
        for name in PLATFORM_NAMES:
            platform = get_platform(name)
            full = AutoTuner(platform).tune(shape)
            amortized = AutoTuner(platform, amortize_lut_distribution=True).tune(shape)
            assert amortized.cost <= full.cost + 1e-12

    def test_estimate_consistency_for_shared_mapping(self, shape):
        """A mapping legal everywhere costs least on the fastest platform."""
        from repro.mapping import Mapping, is_legal

        mapping = Mapping(n_s_tile=512, f_s_tile=64, n_m_tile=16, f_m_tile=16,
                          cb_m_tile=8, load_scheme="coarse",
                          cb_load_tile=2, f_load_tile=8)
        costs = {}
        for name in PLATFORM_NAMES:
            platform = get_platform(name)
            if is_legal(shape, mapping, platform):
                costs[name] = estimate_latency(shape, mapping, platform).total
        assert "upmem" in costs
        for name, cost in costs.items():
            if name != "upmem":
                assert cost < costs["upmem"]
