"""Unit tests for the Module system (registration, traversal, replacement)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, ModuleList, Sequential


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Tensor(np.ones(2), requires_grad=True)

    def forward(self, x):
        return x * self.w


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.a = Leaf()
        self.b = Leaf()
        self.bias = Tensor(np.zeros(2), requires_grad=True)

    def forward(self, x):
        return self.a(x) + self.b(x) + self.bias


class TestRegistration:
    def test_parameters_collected_recursively(self):
        m = Nested()
        assert len(m.parameters()) == 3

    def test_named_parameters_qualified(self):
        names = {name for name, _ in Nested().named_parameters()}
        assert names == {"a.w", "b.w", "bias"}

    def test_named_modules(self):
        names = {name for name, _ in Nested().named_modules()}
        assert names == {"", "a", "b"}

    def test_shared_parameter_deduplicated(self):
        m = Nested()
        m.b.w = m.a.w  # tie weights
        assert len(m.parameters()) == 2

    def test_non_grad_tensor_not_registered(self):
        m = Leaf()
        m.buffer = Tensor(np.zeros(2))  # no requires_grad
        assert all(p is not m.buffer for p in m.parameters())


class TestReplaceModule:
    def test_replace_leaf(self):
        m = Nested()
        new = Leaf()
        m.replace_module("a", new)
        assert m.a is new

    def test_replace_nested_path(self):
        outer = Module()
        outer.inner = Nested()
        new = Leaf()
        outer.replace_module("inner.b", new)
        assert outer.inner.b is new

    def test_replace_missing_raises(self):
        with pytest.raises(KeyError):
            Nested().replace_module("nope", Leaf())

    def test_replace_missing_nested_raises(self):
        outer = Module()
        outer.inner = Nested()
        with pytest.raises(KeyError):
            outer.replace_module("inner.nope", Leaf())


class TestModes:
    def test_train_eval_recursive(self):
        m = Nested()
        m.eval()
        assert not m.training and not m.a.training
        m.train()
        assert m.training and m.b.training

    def test_zero_grad_clears_all(self):
        m = Nested()
        out = m(Tensor(np.ones(2)))
        out.sum().backward()
        assert m.a.w.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_round_trip(self):
        m1, m2 = Nested(), Nested()
        m1.a.w.data[:] = 7.0
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m2.a.w.data, 7.0)

    def test_state_dict_is_copy(self):
        m = Nested()
        state = m.state_dict()
        state["a.w"][:] = 99.0
        assert m.a.w.data[0] == 1.0

    def test_missing_key_raises(self):
        m = Nested()
        state = m.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Nested()
        state = m.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestContainers:
    def test_sequential_applies_in_order(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(4, 8, rng=rng), Linear(8, 2, rng=rng))
        out = seq(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 2)

    def test_sequential_len_getitem_iter(self):
        seq = Sequential(Leaf(), Leaf(), Leaf())
        assert len(seq) == 3
        assert isinstance(seq[1], Leaf)
        assert sum(1 for _ in seq) == 3

    def test_sequential_parameters(self):
        seq = Sequential(Leaf(), Leaf())
        assert len(seq.parameters()) == 2

    def test_module_list_append_and_iterate(self):
        ml = ModuleList()
        ml.append(Leaf())
        ml.append(Leaf())
        assert len(ml) == 2
        assert isinstance(ml[0], Leaf)
        assert len(list(ml)) == 2

    def test_module_list_init_from_iterable(self):
        ml = ModuleList(Leaf() for _ in range(4))
        assert len(ml) == 4

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
