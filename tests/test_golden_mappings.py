"""Golden tuning results for the shipped evaluation workloads (UPMEM).

Pins the exact mapping and analytical latency Algorithm 1 returns for
every distinct linear-layer shape of the paper's three throughput models
(BERT-base/large, ViT-huge) on the UPMEM platform.  Any change to the
analytical model, the enumeration order, or the platform constants that
silently shifts a tuned mapping fails here loudly — if the shift is
intentional, regenerate the table below (each row prints from a plain
``AutoTuner(upmem).tune(shape)``).
"""

import pytest

from repro.core import LUTShape
from repro.mapping import AutoTuner, Mapping
from repro.pim import get_platform

# (shape, expected mapping, expected total latency in seconds).
# Regenerate with: for each shape, AutoTuner(get_platform("upmem")).tune(shape).
GOLDEN = [
    # BERT-base (N = 64 x 512): QKV, O, FFN1, FFN2
    (
        LUTShape(n=32768, h=768, f=2304, v=4, ct=16),
        Mapping(1024, 128, 64, 128, 192, ("n", "f", "cb"), "coarse", 16, 64),
        0.3797067577637024,
    ),
    (
        LUTShape(n=32768, h=768, f=768, v=4, ct=16),
        Mapping(512, 64, 128, 64, 192, ("n", "f", "cb"), "coarse", 8, 64),
        0.11174644420354937,
    ),
    (
        LUTShape(n=32768, h=768, f=3072, v=4, ct=16),
        Mapping(1024, 128, 64, 128, 192, ("n", "f", "cb"), "coarse", 16, 64),
        0.4087336282317875,
    ),
    (
        LUTShape(n=32768, h=3072, f=768, v=4, ct=16),
        Mapping(512, 64, 64, 64, 256, ("f", "cb", "n"), "coarse", 16, 64),
        0.3755722772726738,
    ),
    # BERT-large (N = 64 x 512)
    (
        LUTShape(n=32768, h=1024, f=3072, v=4, ct=16),
        Mapping(1024, 128, 64, 128, 256, ("n", "f", "cb"), "coarse", 16, 64),
        0.5151075104806353,
    ),
    (
        LUTShape(n=32768, h=1024, f=1024, v=4, ct=16),
        Mapping(512, 64, 64, 64, 256, ("n", "f", "cb"), "coarse", 16, 64),
        0.15510497730365724,
    ),
    (
        LUTShape(n=32768, h=1024, f=4096, v=4, ct=16),
        Mapping(1024, 128, 64, 128, 256, ("n", "f", "cb"), "coarse", 16, 64),
        0.556955732438082,
    ),
    (
        LUTShape(n=32768, h=4096, f=1024, v=4, ct=16),
        Mapping(512, 64, 64, 64, 256, ("f", "cb", "n"), "coarse", 16, 64),
        0.525888860363565,
    ),
    # ViT-huge (N = 128 x 264)
    (
        LUTShape(n=33792, h=1280, f=3840, v=4, ct=16),
        Mapping(1024, 128, 256, 32, 64, ("n", "f", "cb"), "coarse", 16, 32),
        0.665290628869497,
    ),
    (
        LUTShape(n=33792, h=1280, f=1280, v=4, ct=16),
        Mapping(1024, 64, 256, 32, 64, ("n", "f", "cb"), "coarse", 16, 32),
        0.3132492677478184,
    ),
    (
        LUTShape(n=33792, h=1280, f=5120, v=4, ct=16),
        Mapping(1024, 256, 256, 32, 64, ("n", "f", "cb"), "coarse", 16, 32),
        1.1953733102617903,
    ),
    (
        LUTShape(n=33792, h=5120, f=1280, v=4, ct=16),
        Mapping(1024, 64, 64, 64, 256, ("f", "cb", "n"), "coarse", 16, 64),
        1.129058288945975,
    ),
]


@pytest.fixture(scope="module")
def tuner():
    return AutoTuner(get_platform("upmem"))


@pytest.mark.parametrize(
    "shape,expected_mapping,expected_cost",
    GOLDEN,
    ids=[f"n{s.n}_h{s.h}_f{s.f}" for s, _, _ in GOLDEN],
)
def test_golden_mapping(tuner, shape, expected_mapping, expected_cost):
    result = tuner.tune(shape)
    assert result.mapping == expected_mapping
    assert result.cost == pytest.approx(expected_cost, rel=1e-12)


@pytest.mark.slow
def test_golden_table_holds_under_parallel_search():
    """The pinned winners are job-count independent too."""
    tuner = AutoTuner(get_platform("upmem"), jobs=2)
    for shape, expected_mapping, expected_cost in GOLDEN:
        result = tuner.tune(shape)
        assert result.mapping == expected_mapping
        assert result.cost == pytest.approx(expected_cost, rel=1e-12)
