"""Tests for the measured host kernel-schedule search and its cache.

The schedule search replaces the hand-tuned ``DEFAULT_BLOCK_ROWS`` /
gather-strategy heuristics with per-(shape, dtype, CT) measurements,
persisted in a content-addressed :class:`repro.kernels.KernelScheduleCache`
(the host-side sibling of :class:`repro.mapping.MappingCache`).
"""

import json
import os

import numpy as np
import pytest

from repro.core import LUTShape
from repro.kernels import (
    DEFAULT_BLOCK_ROWS,
    KernelSchedule,
    KernelScheduleCache,
    search_kernel_schedule,
)
from repro.kernels.lut import GATHER_STRATEGIES, lut_gather_reduce
from repro.kernels.schedule import FORMAT_VERSION
from repro.mapping import AutoTuner
from repro.pim import get_platform

# Small enough that the measured search stays fast in CI.
SEARCH_KW = dict(n=64, h=64, f=32, v=4, ct=16, repeats=1)


def _search(cache=None, seed=0, **overrides):
    kw = {**SEARCH_KW, **overrides}
    return search_kernel_schedule(
        rng=np.random.default_rng(seed), cache=cache, **kw
    )


class TestSearch:
    def test_winner_never_slower_than_default(self):
        schedule = _search()
        # The default config is always a candidate and the baseline is its
        # own measured time, so this holds structurally, not statistically.
        assert schedule.speedup_vs_default >= 1.0
        assert schedule.candidates_evaluated > 0

    def test_searched_fields_are_legal(self):
        schedule = _search()
        assert schedule.ccs_block_rows > 0
        assert schedule.gather_block_rows > 0
        assert schedule.gather_strategy in GATHER_STRATEGIES
        assert schedule.total_seconds == pytest.approx(
            schedule.ccs_seconds + schedule.gather_seconds
        )

    def test_to_profile_carries_measured_throughput(self):
        schedule = _search()
        profile = schedule.to_profile()
        assert profile.block_rows == schedule.ccs_block_rows
        assert profile.dtype == schedule.dtype
        assert profile.ccs_ops_per_s > 0
        assert profile.gather_elements_per_s > 0

    def test_gather_strategy_is_numerically_transparent(self):
        # Forcing either strategy must not change the kernel's output —
        # the schedule search only picks between equivalent loop shapes.
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 16, size=(32, 16)).astype(np.int32)
        lut = rng.normal(size=(16, 16, 8))
        base = lut_gather_reduce(indices, lut)
        for strategy in GATHER_STRATEGIES:
            np.testing.assert_array_equal(
                lut_gather_reduce(indices, lut, strategy=strategy), base
            )

    def test_unknown_strategy_rejected(self):
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 16, size=(4, 4)).astype(np.int32)
        lut = rng.normal(size=(4, 16, 8))
        with pytest.raises(ValueError, match="strategy"):
            lut_gather_reduce(indices, lut, strategy="bogus")


class TestCache:
    def test_roundtrip_hit_skips_all_candidates(self, tmp_path):
        cache = KernelScheduleCache(str(tmp_path))
        cold = _search(cache=cache)
        assert cold.candidates_evaluated > 0
        warm = _search(cache=cache)
        assert warm.candidates_evaluated == 0
        # The hit returns the identical winner.
        assert warm.ccs_block_rows == cold.ccs_block_rows
        assert warm.gather_block_rows == cold.gather_block_rows
        assert warm.gather_strategy == cold.gather_strategy
        assert warm.total_seconds == cold.total_seconds

    def test_miss_on_different_shape_or_dtype(self, tmp_path):
        cache = KernelScheduleCache(str(tmp_path))
        _search(cache=cache)
        assert cache.get(n=128, h=64, f=32, v=4, ct=16, dtype="float32") is None
        assert cache.get(dtype="float64", **{k: SEARCH_KW[k]
                                             for k in "nhfv"},
                         ct=SEARCH_KW["ct"]) is None

    def test_corrupt_entry_is_a_warned_miss(self, tmp_path):
        cache = KernelScheduleCache(str(tmp_path))
        schedule = _search(cache=cache)
        path = cache.entry_path(
            n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
            v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
        )
        assert os.path.exists(path)
        with open(path, "w") as fh:
            fh.write("{not json")
        with pytest.warns(RuntimeWarning):
            assert cache.get(
                n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
                v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
            ) is None
        assert schedule.speedup_vs_default >= 1.0

    def test_foreign_fingerprint_rejected(self, tmp_path):
        writer = KernelScheduleCache(str(tmp_path), fingerprint="deadbeef0000")
        reader = KernelScheduleCache(str(tmp_path))
        schedule = _search(cache=writer)
        assert writer.get(
            n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
            v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
        ) is not None
        # A different machine fingerprint must not reuse measured timings.
        assert reader.get(
            n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
            v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
        ) is None
        assert schedule.shape == (
            SEARCH_KW["n"], SEARCH_KW["h"], SEARCH_KW["f"],
            SEARCH_KW["v"], SEARCH_KW["ct"],
        )

    def test_format_version_pins_entries(self, tmp_path):
        cache = KernelScheduleCache(str(tmp_path))
        _search(cache=cache)
        path = cache.entry_path(
            n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
            v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
        )
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["format_version"] == FORMAT_VERSION
        payload["format_version"] = FORMAT_VERSION + 1
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.warns(RuntimeWarning):
            assert cache.get(
                n=SEARCH_KW["n"], h=SEARCH_KW["h"], f=SEARCH_KW["f"],
                v=SEARCH_KW["v"], ct=SEARCH_KW["ct"], dtype="float32",
            ) is None

    def test_schedule_roundtrips_through_json(self):
        from dataclasses import replace

        schedule = _search()
        clone = KernelSchedule.from_dict(schedule.to_jsonable())
        # A deserialized entry re-measured nothing, so its evaluation
        # count resets to 0 (that's how cache hits advertise themselves).
        assert clone == replace(schedule, candidates_evaluated=0)

    def test_default_block_rows_always_candidate(self):
        schedule = _search(block_rows_candidates=(7,))
        # Even a hostile candidate list keeps the hand-tuned default in
        # the race, so "searched >= default" can't be vacuously broken.
        assert schedule.ccs_block_rows in (7, DEFAULT_BLOCK_ROWS)
        assert schedule.speedup_vs_default >= 1.0


class TestWarmStart:
    def test_tuner_warm_host_schedule(self, tmp_path):
        tuner = AutoTuner(
            get_platform("upmem"),
            schedule_cache=KernelScheduleCache(str(tmp_path)),
        )
        shape = LUTShape(n=64, h=64, f=32, v=4, ct=16)
        cold = tuner.warm_host_schedule(shape, repeats=1)
        assert cold.candidates_evaluated > 0
        warm = tuner.warm_host_schedule(shape, repeats=1)
        assert warm.candidates_evaluated == 0

    def test_serving_warmup_installs_measured_profile(self, tmp_path):
        from repro.baselines import wimpy_host
        from repro.engine.serving import GenerationServer
        from repro.workloads import bert_base

        config = bert_base(seq_len=32, batch_size=1).with_(num_layers=1)
        server = GenerationServer(
            get_platform("upmem"), wimpy_host(),
            schedule_cache=str(tmp_path),
        )
        assert server.prefill_engine.host_kernel_profile is None
        server.warmup(config)
        assert server.prefill_engine.host_kernel_profile is not None
        assert server.decode_engine.host_kernel_profile is not None
        assert len(os.listdir(str(tmp_path))) >= 1

    def test_serving_warmup_respects_explicit_profile(self, tmp_path):
        from repro.baselines import wimpy_host
        from repro.engine.serving import GenerationServer
        from repro.kernels import measure_host_kernels
        from repro.workloads import bert_base

        profile = measure_host_kernels(n=32, h=32, f=16, repeats=1)
        config = bert_base(seq_len=32, batch_size=1).with_(num_layers=1)
        server = GenerationServer(
            get_platform("upmem"), wimpy_host(),
            host_kernel_profile=profile, schedule_cache=str(tmp_path),
        )
        server.warmup(config)
        # An explicitly measured profile wins over the derived one.
        assert server.prefill_engine.host_kernel_profile is profile


class TestMeasureRepeats:
    def test_measure_host_kernels_records_repeats(self):
        from repro.kernels import measure_host_kernels

        profile = measure_host_kernels(n=32, h=32, f=16, repeats=2)
        assert profile.repeats == 2

    def test_repeats_floor_is_one(self):
        from repro.kernels import measure_host_kernels

        profile = measure_host_kernels(n=32, h=32, f=16, repeats=0)
        assert profile.repeats == 1
