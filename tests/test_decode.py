"""Unit tests for the decode-phase engines and the GPT-style DecoderLM."""

import numpy as np
import pytest

from repro.autograd import Adam, Tensor, cross_entropy
from repro.baselines import a2_gpu, v100_gpu
from repro.engine import GEMVDecodeEngine, HostDecodeEngine, LUTDecodeEngine
from repro.nn import DecoderLM, MultiHeadAttention
from repro.pim import get_platform
from repro.workloads import opt_style


class TestCausalAttention:
    def test_causal_masks_future_positions(self):
        rng = np.random.default_rng(0)
        attn = MultiHeadAttention(8, 2, causal=True, rng=rng)
        x = rng.normal(size=(1, 5, 8))
        out1 = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 4] = 100.0  # change the last token only
        out2 = attn(Tensor(x2)).data
        # Earlier positions must be unaffected by a future token change.
        np.testing.assert_allclose(out1[0, :4], out2[0, :4], atol=1e-9)
        # The changed position itself does change.
        assert not np.allclose(out1[0, 4], out2[0, 4])

    def test_non_causal_leaks_future(self):
        rng = np.random.default_rng(1)
        attn = MultiHeadAttention(8, 2, causal=False, rng=rng)
        x = rng.normal(size=(1, 5, 8))
        out1 = attn(Tensor(x)).data
        x2 = x.copy()
        x2[0, 4] = 100.0
        out2 = attn(Tensor(x2)).data
        assert not np.allclose(out1[0, 0], out2[0, 0])


class TestDecoderLM:
    @pytest.fixture
    def model(self):
        return DecoderLM(vocab_size=24, max_seq_len=12, dim=32,
                         num_layers=2, num_heads=4, rng=np.random.default_rng(2))

    def test_logits_shape(self, model):
        tokens = np.random.default_rng(3).integers(0, 24, size=(4, 8))
        assert model(tokens).shape == (4, 8, 24)

    def test_rejects_long_sequence(self, model):
        with pytest.raises(ValueError):
            model(np.zeros((1, 13), dtype=int))

    def test_generate_extends_prompt(self, model):
        out = model.generate(np.array([[1, 2, 3]]), new_tokens=4)
        assert out.shape == (1, 7)
        np.testing.assert_array_equal(out[0, :3], [1, 2, 3])
        assert np.all((0 <= out) & (out < 24))

    def test_generate_zero_tokens(self, model):
        out = model.generate(np.array([[5]]), new_tokens=0)
        np.testing.assert_array_equal(out, [[5]])

    def test_generate_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.generate(np.array([[1]]), new_tokens=-1)

    def test_generate_sampling_mode(self, model):
        out = model.generate(np.array([[1, 2]]), new_tokens=3, greedy=False,
                             rng=np.random.default_rng(7))
        assert out.shape == (1, 5)

    def test_learns_a_repetition_pattern(self):
        """A trainable decoder: learn 'next token = current token'."""
        rng = np.random.default_rng(4)
        model = DecoderLM(vocab_size=8, max_seq_len=8, dim=32,
                          num_layers=2, num_heads=4, rng=rng)
        optimizer = Adam(model.parameters(), lr=3e-3)
        for _ in range(60):
            tokens = np.repeat(rng.integers(0, 8, size=(16, 1)), 8, axis=1)
            logits = model(tokens[:, :-1])
            flat = logits.reshape(16 * 7, 8)
            loss = cross_entropy(flat, tokens[:, 1:].reshape(-1))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        # Greedy generation should now repeat the prompt token.
        out = model.generate(np.array([[3, 3, 3]]), new_tokens=3)
        assert np.all(out[0, 3:] == 3)

    def test_decoder_layers_are_lut_convertible(self, model):
        from repro.core import convert_to_lut_nn, lut_layers

        tokens = np.random.default_rng(5).integers(0, 24, size=(16, 8))
        convert_to_lut_nn(model, [tokens], v=4, ct=4,
                          rng=np.random.default_rng(6))
        assert len(lut_layers(model)) == 2 * 4
        assert model(tokens).shape == (16, 8, 24)


class TestDecodeEngines:
    @pytest.fixture(scope="class")
    def config(self):
        return opt_style(1024, seq_len=128, batch_size=1)

    def test_report_composition(self, config):
        platform = get_platform("aim")
        report = GEMVDecodeEngine(platform, a2_gpu()).run(config, batch_size=1)
        assert report.token_latency_s == pytest.approx(
            report.linear_s + report.attention_s + report.other_s
        )
        assert report.tokens_per_s == pytest.approx(1.0 / report.token_latency_s)

    def test_lut_decode_beats_gemv_decode(self, config):
        """LUT-NN's V-fold weight-traffic cut applies to decode too."""
        platform = get_platform("aim")
        host = a2_gpu()
        gemv = GEMVDecodeEngine(platform, host).run(config, batch_size=1)
        lut = LUTDecodeEngine(platform, host, v=4, ct=16).run(config, batch_size=1)
        assert lut.linear_s < gemv.linear_s

    def test_longer_context_costs_more_attention(self, config):
        platform = get_platform("aim")
        host = a2_gpu()
        short = LUTDecodeEngine(platform, host).run(config, context_len=128)
        long = LUTDecodeEngine(platform, host).run(config, context_len=1024)
        assert long.attention_s > short.attention_s
        assert long.linear_s == pytest.approx(short.linear_s)

    def test_batching_amortizes_weight_streaming(self, config):
        platform = get_platform("aim")
        host = a2_gpu()
        engine = LUTDecodeEngine(platform, host)
        b1 = engine.run(config, batch_size=1)
        b8 = engine.run(config, batch_size=8)
        assert b8.tokens_per_s > b1.tokens_per_s

    def test_host_decode_engine(self, config):
        report = HostDecodeEngine(v100_gpu()).run(config, batch_size=1)
        assert report.token_latency_s > 0
        assert "V100" in report.engine

    def test_lut_decode_rejects_indivisible_dims(self):
        platform = get_platform("aim")
        engine = LUTDecodeEngine(platform, a2_gpu(), v=7)
        with pytest.raises(ValueError):
            engine.run(opt_style(1024, seq_len=64, batch_size=1))
