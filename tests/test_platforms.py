"""Unit tests for DRAM-PIM platform models and primitives."""

import pytest

from repro.pim import (
    PLATFORMS,
    LocalMemory,
    PECompute,
    TransferBandwidth,
    aim,
    get_platform,
    hbm_pim,
    upmem_pim_dimm,
)


class TestTransferBandwidth:
    def test_latency_alpha_beta(self):
        bw = TransferBandwidth(peak_bytes_per_s=1e9, setup_latency_s=1e-6)
        assert bw.latency(1e9) == pytest.approx(1.0 + 1e-6)
        assert bw.latency(0) == 0.0

    def test_small_transfers_setup_dominated(self):
        bw = TransferBandwidth(peak_bytes_per_s=1e9, setup_latency_s=1e-3)
        assert bw.effective_bandwidth(1000) < 0.01 * bw.peak_bytes_per_s

    def test_tile_knee_collapses_small_tiles(self):
        bw = TransferBandwidth(1e9, 0.0, tile_knee_bytes=8192)
        assert bw.rate(8192) == pytest.approx(0.5e9)
        assert bw.rate(1e9) == pytest.approx(1e9, rel=1e-4)
        assert bw.rate(None) == 1e9

    def test_knee_disabled_by_default(self):
        bw = TransferBandwidth(1e9, 0.0)
        assert bw.rate(1) == 1e9

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            TransferBandwidth(1e9, 0.0).latency(-1)


class TestLocalMemory:
    def test_streaming_latency(self):
        mem = LocalMemory(peak_bytes_per_s=1e9, access_setup_s=0.0, buffer_bytes=1024)
        assert mem.latency(1e9, 2048) == pytest.approx(1.0)

    def test_small_access_pays_setup_per_chunk(self):
        mem = LocalMemory(peak_bytes_per_s=1e9, access_setup_s=1e-6, buffer_bytes=1024)
        t_small = mem.latency(1e6, 8)
        t_large = mem.latency(1e6, 2048)
        assert t_small > 50 * t_large

    def test_zero_bytes(self):
        mem = LocalMemory(1e9, 1e-6, 1024)
        assert mem.latency(0, 8) == 0.0

    def test_access_clamped_to_total(self):
        mem = LocalMemory(1e9, 1e-6, 1024)
        # One access when the chunk exceeds the total.
        assert mem.latency(100, 1000) == pytest.approx(1e-6 + 100 / 1e9)


class TestPECompute:
    def test_add_mult_lookup_times(self):
        pe = PECompute(frequency_hz=1e9, add_cycles=2, mult_cycles=10,
                       lookup_overhead_cycles=4, simd_lanes=2)
        assert pe.add_time(1e9) == pytest.approx(1.0)
        assert pe.mult_time(1e9) == pytest.approx(5.0)
        assert pe.lookup_time(1e9) == pytest.approx(4.0)


class TestPlatforms:
    def test_registry_and_getter(self):
        assert set(PLATFORMS) == {"upmem", "hbm-pim", "aim"}
        assert get_platform("UPMEM").name == "UPMEM PIM-DIMM"
        with pytest.raises(KeyError):
            get_platform("tpu")

    def test_upmem_table3_configuration(self):
        p = upmem_pim_dimm()
        assert p.num_pes == 1024
        assert p.compute.frequency_hz == 350e6
        assert p.local_memory.buffer_bytes == 64 * 1024
        assert p.pim_power_w == pytest.approx(8 * 13.92)
        assert "fp32_mac_cycles" in p.extras

    def test_hbm_pim_aggregate_compute_near_4_8_tflops(self):
        """Effective lanes are sized to the paper's 4.8 TFLOPS total."""
        p = hbm_pim()
        assert p.peak_add_throughput == pytest.approx(4.8e12, rel=0.5)

    def test_aim_faster_than_hbm_pim(self):
        """Paper §6.7: AiM has ~3.3x HBM-PIM's aggregate compute."""
        assert aim().peak_add_throughput > 2 * hbm_pim().peak_add_throughput

    def test_pes_per_rank(self):
        p = upmem_pim_dimm()
        assert p.pes_per_rank * p.ranks == p.num_pes

    def test_simulated_platforms_keep_luts_resident(self):
        assert hbm_pim().extras.get("lut_resident")
        assert aim().extras.get("lut_resident")
        assert not upmem_pim_dimm().extras.get("lut_resident", 0)

    def test_broadcast_faster_than_scatter_on_upmem(self):
        """[33]: broadcasting yields the highest host->PIM bandwidth."""
        p = upmem_pim_dimm()
        assert p.broadcast.peak_bytes_per_s > p.scatter.peak_bytes_per_s
        assert p.scatter.peak_bytes_per_s > p.gather.peak_bytes_per_s
