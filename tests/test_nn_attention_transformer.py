"""Unit tests for attention, encoder layers, and the classifier models."""

import numpy as np
import pytest

from repro.autograd import Adam, Tensor, cross_entropy
from repro.nn import (
    EncoderLayer,
    FeedForward,
    MultiHeadAttention,
    PatchClassifier,
    TextClassifier,
    TransformerEncoder,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(16, 3)

    def test_mask_blocks_padded_keys(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[1, 1, 0, 0]])
        # Changing padded positions must not affect valid-token outputs.
        out1 = attn(Tensor(x), mask=mask).data
        x2 = x.copy()
        x2[0, 2:] = 100.0
        out2 = attn(Tensor(x2), mask=mask).data
        np.testing.assert_allclose(out1[0, :2], out2[0, :2], atol=1e-9)

    def test_gradients_reach_projections(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert attn.qkv.weight.grad is not None
        assert attn.out_proj.weight.grad is not None
        assert x.grad is not None

    def test_fused_qkv_width(self, rng):
        attn = MultiHeadAttention(8, 2, rng=rng)
        assert attn.qkv.out_features == 24


class TestEncoder:
    def test_feedforward_shapes(self, rng):
        ffn = FeedForward(8, 32, rng=rng)
        assert ffn(Tensor(rng.normal(size=(2, 3, 8)))).shape == (2, 3, 8)

    def test_encoder_layer_preserves_shape(self, rng):
        layer = EncoderLayer(8, 2, rng=rng)
        assert layer(Tensor(rng.normal(size=(2, 5, 8)))).shape == (2, 5, 8)

    def test_encoder_stacks_layers(self, rng):
        enc = TransformerEncoder(3, 8, 2, rng=rng)
        assert len(enc.layers) == 3
        assert enc(Tensor(rng.normal(size=(1, 4, 8)))).shape == (1, 4, 8)

    def test_encoder_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            TransformerEncoder(0, 8, 2)

    def test_each_layer_has_four_linears(self, rng):
        from repro.nn import Linear

        layer = EncoderLayer(8, 2, rng=rng)
        linears = [m for _, m in layer.named_modules() if isinstance(m, Linear)]
        # qkv, out_proj, fc1, fc2 — the paper's four conversion targets.
        assert len(linears) == 4


class TestTextClassifier:
    def test_forward_shape(self, rng):
        m = TextClassifier(20, 8, 3, dim=16, num_layers=1, num_heads=2, rng=rng)
        logits = m(rng.integers(0, 20, size=(4, 8)))
        assert logits.shape == (4, 3)

    def test_rejects_long_sequence(self, rng):
        m = TextClassifier(20, 8, 3, dim=16, num_layers=1, num_heads=2, rng=rng)
        with pytest.raises(ValueError):
            m(rng.integers(0, 20, size=(2, 9)))

    def test_loss_decreases_when_training(self, rng):
        m = TextClassifier(20, 8, 3, dim=16, num_layers=1, num_heads=2, rng=rng)
        tokens = rng.integers(0, 20, size=(16, 8))
        labels = rng.integers(0, 3, size=16)
        opt = Adam(m.parameters(), lr=1e-3)
        losses = []
        for _ in range(10):
            loss = cross_entropy(m(tokens), labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]


class TestPatchClassifier:
    def test_forward_shape(self, rng):
        m = PatchClassifier(9, 12, 4, dim=16, num_layers=1, num_heads=2, rng=rng)
        assert m(rng.normal(size=(3, 9, 12))).shape == (3, 4)

    def test_cls_token_receives_gradient(self, rng):
        m = PatchClassifier(4, 6, 2, dim=16, num_layers=1, num_heads=2, rng=rng)
        out = m(rng.normal(size=(2, 4, 6)))
        cross_entropy(out, np.array([0, 1])).backward()
        assert m.cls_token.grad is not None
        assert np.any(m.cls_token.grad != 0)

    def test_accepts_tensor_input(self, rng):
        m = PatchClassifier(4, 6, 2, dim=16, num_layers=1, num_heads=2, rng=rng)
        out = m(Tensor(rng.normal(size=(2, 4, 6))))
        assert out.shape == (2, 2)
