"""Smoke tests for the CLI's observability surface: --json output modes,
--emit-trace / --metrics-json flags, tune --progress, and trace-export."""

import json
import os

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def fresh_obs():
    obs.reset()
    yield
    obs.reset()


SHAPE_ARGS = ["--n", "512", "--h", "64", "--f", "128", "--v", "4", "--ct", "8"]


class TestJsonOutputModes:
    def test_platforms_json(self, capsys):
        assert main(["platforms", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "upmem" in payload
        assert payload["upmem"]["num_pes"] > 0
        assert payload["upmem"]["buffer_bytes"] > 0

    def test_flops_json(self, capsys):
        assert main(["flops", "--n", "1024", "--h", "1024", "--f", "1024",
                     "--v", "2", "--ct", "16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["flop_reduction"] == pytest.approx(3.657, abs=1e-3)
        assert payload["gemm"]["total"] > payload["lut_nn"]["total"]
        assert 0 <= payload["lut_nn"]["multiplication_fraction"] <= 1

    def test_compare_json(self, capsys):
        assert main(["compare", "--model", "bert-base", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "BERT-base"
        engines = payload["engines"]
        assert any(name.startswith("pim-dl") for name in engines)
        for report in engines.values():
            assert report["total_s"] > 0
            assert "per_category_seconds" in report


class TestTelemetryFlags:
    def test_tune_progress_and_metrics_json(self, capsys, tmp_path):
        metrics_path = str(tmp_path / "metrics.json")
        assert main(["tune", *SHAPE_ARGS, "--progress", "20",
                     "--metrics-json", metrics_path]) == 0
        err = capsys.readouterr().err
        assert "[tune] 20 candidates" in err
        with open(metrics_path) as fh:
            metrics = json.load(fh)
        assert metrics["tuner.candidates_evaluated"]["value"] > 0
        assert metrics["tuner.best_cost_s"]["value"] > 0

    def test_simulate_emit_trace(self, tmp_path):
        trace_path = str(tmp_path / "sim.json")
        assert main(["simulate", *SHAPE_ARGS, "--emit-trace", trace_path]) == 0
        with open(trace_path) as fh:
            document = json.load(fh)
        cats = {e.get("cat") for e in document["traceEvents"]}
        assert "pim-kernel" in cats  # simulator micro-kernel timeline

    def test_compare_emit_trace_is_loadable_and_complete(self, tmp_path):
        """Acceptance: one file holds engine op spans + micro-kernel events."""
        trace_path = str(tmp_path / "compare.json")
        assert main(["compare", "--model", "bert-base",
                     "--emit-trace", trace_path]) == 0
        assert os.path.exists(trace_path)
        with open(trace_path) as fh:
            document = json.load(fh)
        events = document["traceEvents"]
        cats = {e.get("cat") for e in events}
        # Engine-level op timelines...
        assert {"lut", "ccs", "gemm", "attention", "elementwise"} <= cats
        # ...and simulated micro-kernel events, in the same file.
        assert "pim-kernel" in cats
        timed = [e for e in events if e.get("ph") != "M"]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in timed if e["ph"] == "X")
        # The metrics snapshot rides along.
        assert document["otherData"]["metrics"]["engine.runs"]["value"] == 4


class TestProfileFlag:
    def test_simulate_profile_prints_bottleneck(self, capsys):
        assert main(["simulate", *SHAPE_ARGS, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck:" in out
        assert "reduce" in out

    def test_simulate_profile_writes_per_rank_trace(self, capsys, tmp_path):
        """Acceptance: --profile emits a per-rank Chrome trace plus a
        BottleneckReport whose phases sum to the simulated total."""
        trace_path = str(tmp_path / "ranks.json")
        assert main(["simulate", *SHAPE_ARGS, "--profile", trace_path]) == 0
        out = capsys.readouterr().out
        assert "bottleneck:" in out
        with open(trace_path) as fh:
            document = json.load(fh)
        rank_events = [
            e for e in document["traceEvents"] if e.get("cat") == "pim-rank"
        ]
        assert rank_events
        assert all(e["ph"] == "X" for e in rank_events)

    def test_compare_attribution_per_engine(self, capsys):
        assert main(["compare", "--model", "bert-base", "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "[pim-dl" in out
        assert out.count("bottleneck:") >= 2  # every engine with phases


class TestServeSimRateValidation:
    ARGS = ["serve-sim", "--model", "bert-base", "--requests", "2"]

    def test_zero_rate_rejected(self, capsys):
        assert main([*self.ARGS, "--rate", "0"]) == 2
        assert "--rate must be positive" in capsys.readouterr().err

    def test_negative_rate_rejected(self, capsys):
        assert main([*self.ARGS, "--rate", "-3"]) == 2
        assert "--rate must be positive" in capsys.readouterr().err

    def test_zero_utilization_rejected(self, capsys):
        assert main([*self.ARGS, "--utilization", "0"]) == 2
        assert "--utilization must be positive" in capsys.readouterr().err


class TestTraceExport:
    def test_trace_export_writes_loadable_file(self, capsys, tmp_path):
        out = str(tmp_path / "kernel.json")
        assert main(["trace-export", *SHAPE_ARGS, "--out", out]) == 0
        assert "chrome trace written" in capsys.readouterr().out
        with open(out) as fh:
            document = json.load(fh)
        events = document["traceEvents"]
        assert any(e.get("cat") == "pim-kernel" for e in events)
        assert any(e["name"] == "tuner.tune" for e in events)
        kinds = {e["name"] for e in events if e.get("cat") == "pim-kernel"}
        assert "reduce" in kinds
