"""Unit tests for the LUT-NN converter (recording, filtering, replacement)."""

import numpy as np
import pytest

from repro.core import (
    ActivationRecorder,
    LUTLinear,
    convert_to_lut_nn,
    encoder_linear_filter,
    find_target_linears,
    freeze_all_luts,
    lut_layers,
    record_activations,
    set_lut_mode,
)
from repro.nn import Linear, TextClassifier


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def model(rng):
    return TextClassifier(
        vocab_size=30, max_seq_len=10, num_classes=3,
        dim=16, num_layers=2, num_heads=2, rng=rng,
    )


@pytest.fixture
def tokens(rng):
    return rng.integers(0, 30, size=(8, 10))


class TestTargetSelection:
    def test_default_filter_targets_encoder_only(self, model):
        targets = find_target_linears(model)
        names = [n for n, _ in targets]
        assert len(targets) == 2 * 4  # 2 layers x (qkv, out_proj, fc1, fc2)
        assert all(".encoder." in f".{n}." for n in names)
        assert "pooler" not in " ".join(names)
        assert "classifier" not in " ".join(names)

    def test_custom_filter(self, model):
        targets = find_target_linears(model, lambda n, layer: n.endswith("fc1"))
        assert len(targets) == 2
        assert all(n.endswith("fc1") for n, _ in targets)

    def test_encoder_filter_function(self):
        assert encoder_linear_filter("encoder.layers.0.ffn.fc1", None)
        assert not encoder_linear_filter("pooler", None)


class TestActivationRecorder:
    def test_records_flattened_inputs(self, model, tokens):
        targets = find_target_linears(model)
        recorder = record_activations(model, [tokens], targets)
        acts = recorder.activations(targets[0][0])
        assert acts.shape == (8 * 10, 16)

    def test_restores_forward_methods(self, model, tokens):
        targets = find_target_linears(model)
        record_activations(model, [tokens], targets)
        # The instance-level wrapper must be gone: forward resolves to the
        # class method again and no further recording happens.
        assert all("forward" not in layer.__dict__ for _, layer in targets)
        assert all(layer.forward.__func__ is Linear.forward for _, layer in targets)

    def test_max_rows_caps_recording(self, model, tokens):
        targets = find_target_linears(model)
        recorder = record_activations(model, [tokens, tokens], targets, max_rows=30)
        assert recorder.activations(targets[0][0]).shape[0] == 30

    def test_no_records_raises(self):
        recorder = ActivationRecorder([("x", Linear(2, 2))])
        with pytest.raises(RuntimeError):
            recorder.activations("x")

    def test_model_mode_restored(self, model, tokens):
        model.train()
        record_activations(model, [tokens], find_target_linears(model))
        assert model.training


class TestConversion:
    def test_replaces_all_targets_in_place(self, model, tokens, rng):
        replaced = convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        assert len(replaced) == 8
        assert all(isinstance(layer, LUTLinear) for _, layer in replaced)
        assert len(lut_layers(model)) == 8
        assert len(find_target_linears(model)) == 0  # no plain Linears left

    def test_converted_model_runs(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        logits = model(tokens)
        assert logits.shape == (8, 3)

    def test_layers_start_in_calibrate_mode(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        assert all(layer.mode == "calibrate" for _, layer in lut_layers(model))

    def test_random_init_forwarded(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng, centroid_init="random")
        assert len(lut_layers(model)) == 8

    def test_no_targets_raises(self, model, tokens):
        with pytest.raises(ValueError):
            convert_to_lut_nn(model, [tokens], v=2, ct=4, layer_filter=lambda n, layer: False)

    def test_layer_names_recorded(self, model, tokens, rng):
        replaced = convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        for name, layer in replaced:
            assert layer.layer_name == name


class TestModeHelpers:
    def test_set_lut_mode_all(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        set_lut_mode(model, "lut")
        assert all(layer.mode == "lut" for _, layer in lut_layers(model))

    def test_freeze_all_luts(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        freeze_all_luts(model)
        assert all(layer.lut is not None for _, layer in lut_layers(model))

    def test_freeze_all_quantized(self, model, tokens, rng):
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        freeze_all_luts(model, quantize_int8=True)
        assert all(layer.quantized_lut is not None for _, layer in lut_layers(model))

    def test_conversion_preserves_exact_path(self, model, tokens, rng):
        """In 'exact' mode the converted model must equal the original."""
        before = model(tokens).data.copy()
        convert_to_lut_nn(model, [tokens], v=2, ct=4, rng=rng)
        set_lut_mode(model, "exact")
        model.eval()
        np.testing.assert_allclose(model(tokens).data, before, atol=1e-10)
