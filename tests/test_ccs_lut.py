"""Unit + property tests for CCS, LUT construction, lookup, quantization.

Includes the key algebraic identity of LUT-NN: looking up pre-computed
partial sums equals multiplying the centroid-replaced activations by the
weight matrix exactly (the only approximation in LUT-NN is the
activation -> centroid snap, never the table arithmetic).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Codebooks,
    LUTShape,
    build_lut,
    ccs_flops,
    closest_centroid_search,
    hard_replace,
    lut_bytes,
    lut_lookup,
    lut_matmul,
    quantization_error,
    quantize_lut,
    reduce_flops,
    squared_distances,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def random_codebooks(rng, cb=3, ct=4, v=2):
    return Codebooks(rng.normal(size=(cb, ct, v)))


class TestCCS:
    def test_distances_match_brute_force(self, rng):
        cbs = random_codebooks(rng)
        x = rng.normal(size=(5, 6))
        dists = squared_distances(x, cbs)
        sub = x.reshape(5, 3, 2)
        brute = ((sub[:, :, None, :] - cbs.centroids[None]) ** 2).sum(-1)
        np.testing.assert_allclose(dists, brute, atol=1e-10)

    def test_indices_are_argmin(self, rng):
        cbs = random_codebooks(rng)
        x = rng.normal(size=(7, 6))
        idx = closest_centroid_search(x, cbs)
        np.testing.assert_array_equal(idx, squared_distances(x, cbs).argmin(-1))
        assert idx.dtype == np.int32

    def test_exact_centroid_input_selects_itself(self, rng):
        cbs = random_codebooks(rng)
        # Build an input whose sub-vectors are centroids 1, 3, 0.
        x = np.concatenate(
            [cbs.centroids[0, 1], cbs.centroids[1, 3], cbs.centroids[2, 0]]
        )[None]
        np.testing.assert_array_equal(
            closest_centroid_search(x, cbs)[0], [1, 3, 0]
        )

    def test_rejects_non_2d(self, rng):
        cbs = random_codebooks(rng)
        with pytest.raises(ValueError):
            closest_centroid_search(rng.normal(size=(2, 3, 6)), cbs)

    def test_hard_replace_snaps_to_centroids(self, rng):
        cbs = random_codebooks(rng)
        x = rng.normal(size=(4, 6))
        replaced = hard_replace(x, cbs)
        idx = closest_centroid_search(x, cbs)
        for i in range(4):
            for c in range(3):
                np.testing.assert_allclose(
                    replaced[i, 2 * c : 2 * c + 2], cbs.centroids[c, idx[i, c]]
                )

    def test_hard_replace_idempotent(self, rng):
        cbs = random_codebooks(rng)
        x = rng.normal(size=(4, 6))
        once = hard_replace(x, cbs)
        np.testing.assert_allclose(hard_replace(once, cbs), once)

    def test_ccs_flops_formula(self):
        assert ccs_flops(10, 8, 4) == 3 * 10 * 8 * 4


class TestLUT:
    def test_build_lut_matches_definition(self, rng):
        cbs = random_codebooks(rng)
        w = rng.normal(size=(6, 5))
        lut = build_lut(cbs, w)
        assert lut.shape == (3, 4, 5)
        for c in range(3):
            for k in range(4):
                expected = cbs.centroids[c, k] @ w[2 * c : 2 * c + 2]
                np.testing.assert_allclose(lut[c, k], expected, atol=1e-12)

    def test_build_lut_rejects_mismatched_weight(self, rng):
        cbs = random_codebooks(rng)
        with pytest.raises(ValueError):
            build_lut(cbs, rng.normal(size=(5, 4)))

    def test_lookup_equals_replaced_matmul(self, rng):
        """Core identity: lut_matmul(x) == hard_replace(x) @ W exactly."""
        cbs = random_codebooks(rng, cb=4, ct=5, v=3)
        w = rng.normal(size=(12, 7))
        x = rng.normal(size=(9, 12))
        lut = build_lut(cbs, w)
        approx = lut_matmul(x, cbs, lut)
        np.testing.assert_allclose(approx, hard_replace(x, cbs) @ w, atol=1e-10)

    def test_lookup_validation(self, rng):
        lut = rng.normal(size=(3, 4, 5))
        with pytest.raises(ValueError):
            lut_lookup(np.zeros((2, 2), dtype=int), lut)  # wrong CB
        with pytest.raises(ValueError):
            lut_lookup(np.zeros(3, dtype=int), lut)  # not 2-D
        with pytest.raises(IndexError):
            lut_lookup(np.full((2, 3), 4), lut)  # index out of range

    def test_reduce_flops_and_bytes(self):
        s = LUTShape(n=8, h=8, f=4, v=2, ct=2)
        assert reduce_flops(s) == 8 * 4 * 4
        assert lut_bytes(s) == s.lut_elements
        assert lut_bytes(s, dtype_bytes=4) == 4 * s.lut_elements

    def test_approximation_improves_with_more_centroids(self, rng):
        x = rng.normal(size=(200, 8))
        w = rng.normal(size=(8, 6))
        errs = []
        for ct in (2, 8, 32):
            cbs = Codebooks.from_activations(x, v=2, ct=ct, rng=rng)
            approx = lut_matmul(x, cbs, build_lut(cbs, w))
            errs.append(np.linalg.norm(approx - x @ w))
        assert errs[0] > errs[1] > errs[2]


class TestQuantization:
    def test_round_trip_error_bounded(self, rng):
        lut = rng.normal(size=(3, 4, 5)) * 7
        q = quantize_lut(lut)
        per_cb_bound = np.max(np.abs(lut), axis=(1, 2)) / 127 * 0.5 + 1e-9
        err = np.max(np.abs(lut - q.dequantize()), axis=(1, 2))
        assert np.all(err <= per_cb_bound)

    def test_values_are_int8(self, rng):
        q = quantize_lut(rng.normal(size=(2, 2, 2)))
        assert q.values.dtype == np.int8
        assert np.all(np.abs(q.values.astype(int)) <= 127)

    def test_zero_table(self):
        q = quantize_lut(np.zeros((2, 3, 4)))
        np.testing.assert_allclose(q.dequantize(), 0.0)
        np.testing.assert_allclose(q.scales, 1.0)

    def test_per_codebook_scales(self, rng):
        lut = np.stack([np.ones((2, 2)), 100 * np.ones((2, 2))])
        q = quantize_lut(lut)
        assert q.scales[1] == pytest.approx(100 / 127)
        assert q.scales[0] == pytest.approx(1 / 127)

    def test_quantization_error_helper(self, rng):
        lut = rng.normal(size=(2, 3, 4))
        q = quantize_lut(lut)
        assert quantization_error(lut, q) == pytest.approx(
            np.max(np.abs(lut - q.dequantize()))
        )

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            quantize_lut(np.zeros((2, 2)))
        from repro.core import QuantizedLUT

        with pytest.raises(TypeError):
            QuantizedLUT(values=np.zeros((2, 2, 2)), scales=np.ones(2))
        with pytest.raises(ValueError):
            QuantizedLUT(
                values=np.zeros((2, 2, 2), dtype=np.int8), scales=np.ones(3)
            )

    def test_nbytes(self, rng):
        q = quantize_lut(rng.normal(size=(2, 3, 4)))
        assert q.nbytes == 24 + 2 * 8


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 16),
    cb=st.integers(1, 4),
    ct=st.integers(1, 6),
    v=st.integers(1, 3),
    f=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_lut_identity_property(n, cb, ct, v, f, seed):
    """Property: table lookup == exact matmul on centroid-replaced inputs."""
    rng = np.random.default_rng(seed)
    cbs = Codebooks(rng.normal(size=(cb, ct, v)))
    w = rng.normal(size=(cb * v, f))
    x = rng.normal(size=(n, cb * v))
    lut = build_lut(cbs, w)
    np.testing.assert_allclose(
        lut_matmul(x, cbs, lut), hard_replace(x, cbs) @ w, atol=1e-9
    )
