"""MoE expert layers as LUTs: routing traces, placement, pricing, CLI.

Covers the whole stack the MoE serving model is built from: seeded
routing generators (``repro.workloads.routing``), expert-to-rank
placement (``repro.pim.placement``), the ``MoEFeedForward`` reference
layer (``repro.nn.moe``) and its LUT convertibility, the engine-side
pricing (``repro.engine.moe`` via ``PIMDLEngine``/``LUTDecodeEngine``),
and the ``moe`` CLI subcommand.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.baselines import wimpy_host
from repro.core import convert_to_lut_nn, lut_layers, set_lut_mode
from repro.engine import (LUTDecodeEngine, MOE, PIMDLEngine, model_graph,
                          token_bucket)
from repro.nn import MoEFeedForward, TextClassifier, reset_default_rng
from repro.pim import (EXPERT_PLACERS, balanced_placement, get_platform,
                       load_imbalance, makespan, place_experts, rank_loads,
                       round_robin_placement)
from repro.workloads import (MoEConfig, bert_base, route_tokens,
                             uniform_routing, zipf_routing)


@pytest.fixture(scope="module")
def upmem():
    return get_platform("upmem")


@pytest.fixture(scope="module")
def small_bert():
    # One layer, small token count: tuner-backed pricing stays fast.
    return bert_base(seq_len=128, batch_size=1).with_(num_layers=1)


class TestRoutingTraces:
    def test_same_seed_same_trace(self):
        a = zipf_routing(256, 16, top_k=2, s=1.2, seed=7)
        b = zipf_routing(256, 16, top_k=2, s=1.2, seed=7)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_different_seed_different_trace(self):
        a = uniform_routing(256, 16, top_k=2, seed=0)
        b = uniform_routing(256, 16, top_k=2, seed=1)
        assert not np.array_equal(a.assignments, b.assignments)

    def test_top_k_experts_distinct_per_token(self):
        trace = zipf_routing(128, 8, top_k=4, s=1.5, seed=3)
        for row in trace.assignments:
            assert len(set(row.tolist())) == 4

    def test_counts_sum_to_token_slots(self):
        trace = uniform_routing(200, 16, top_k=2, seed=0)
        counts = trace.expert_token_counts()
        assert counts.sum() == 200 * 2
        assert trace.tokens == 200

    def test_zipf_skewer_than_uniform(self):
        uni = uniform_routing(4096, 16, top_k=2, seed=0)
        zipf = zipf_routing(4096, 16, top_k=2, s=1.2, seed=0)
        assert zipf.skew_index() > uni.skew_index()

    def test_zipf_expert_zero_hottest(self):
        counts = zipf_routing(4096, 16, top_k=1, s=1.2, seed=0).expert_token_counts()
        assert counts.argmax() == 0

    def test_route_tokens_dispatch(self):
        moe = MoEConfig(num_experts=8, top_k=2, routing="zipf", zipf_s=1.2, seed=5)
        direct = zipf_routing(64, 8, top_k=2, s=1.2, seed=5)
        np.testing.assert_array_equal(
            route_tokens(64, moe).assignments, direct.assignments
        )

    @pytest.mark.parametrize("bad", [0, -1, None])
    def test_zero_tokens_rejected(self, bad):
        with pytest.raises(ValueError):
            uniform_routing(bad, 8, top_k=1)

    def test_top_k_beyond_experts_rejected(self):
        with pytest.raises(ValueError):
            zipf_routing(10, 4, top_k=5)

    def test_nonpositive_zipf_s_rejected(self):
        with pytest.raises(ValueError):
            zipf_routing(10, 4, top_k=1, s=0.0)


class TestMoEConfig:
    def test_valid_config_is_hashable(self):
        moe = MoEConfig(num_experts=8)
        assert hash(moe) == hash(MoEConfig(num_experts=8))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_experts": 0},
            {"num_experts": None},
            {"num_experts": 8, "top_k": 0},
            {"num_experts": 8, "top_k": 9},
            {"num_experts": 8, "routing": "pareto"},
            {"num_experts": 8, "zipf_s": 0.0},
            {"num_experts": 8, "seed": -1},
            {"num_experts": 8, "placement": "random"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MoEConfig(**kwargs)


class TestPlacement:
    def test_round_robin_assignment(self):
        assert round_robin_placement(6, 4) == (0, 1, 2, 3, 0, 1)

    def test_balanced_never_worse_than_round_robin(self):
        rng = np.random.default_rng(11)
        for _ in range(25):
            ranks = int(rng.integers(2, 9))
            loads = rng.pareto(1.5, size=int(rng.integers(ranks, 40)))
            rr = makespan(round_robin_placement(loads.size, ranks), loads, ranks)
            bal = makespan(balanced_placement(loads, ranks), loads, ranks)
            assert bal <= rr + 1e-12

    def test_balanced_splits_two_heavy_experts(self):
        # RR puts both heavy experts on rank 0; balanced must split them.
        loads = [10.0, 0.1, 10.0, 0.1]
        assert makespan(balanced_placement(loads, 2), loads, 2) == pytest.approx(10.1)

    def test_place_experts_dispatch_and_unknown(self):
        loads = [1.0, 2.0, 3.0]
        assert place_experts("round-robin", loads, 2) == (0, 1, 0)
        assert "balanced" in EXPERT_PLACERS
        with pytest.raises(ValueError):
            place_experts("hashing", loads, 2)

    def test_rank_loads_and_makespan(self):
        loads = rank_loads((0, 1, 0), [1.0, 2.0, 3.0], 2)
        assert loads == (4.0, 2.0)
        assert makespan((0, 1, 0), [1.0, 2.0, 3.0], 2) == 4.0

    def test_load_imbalance_edges(self):
        assert load_imbalance([]) == 0.0
        assert load_imbalance([0.0, 0.0]) == 0.0
        assert load_imbalance([2.0, 2.0]) == 0.0
        assert 0.0 < load_imbalance([1.0, 3.0]) < 1.0

    def test_empty_loads_rejected_by_balanced(self):
        with pytest.raises(ValueError):
            balanced_placement([], 2)
        with pytest.raises(ValueError):
            balanced_placement([1.0], 0)


class TestMoEFeedForward:
    def test_output_shape_matches_input(self):
        rng = np.random.default_rng(0)
        layer = MoEFeedForward(16, 32, num_experts=4, top_k=2, rng=rng)
        x = rng.standard_normal((3, 10, 16))
        from repro.autograd import Tensor

        out = layer(Tensor(x))
        assert out.data.shape == (3, 10, 16)

    def test_gate_weights_sum_to_one_over_top_k(self):
        rng = np.random.default_rng(1)
        layer = MoEFeedForward(8, 16, num_experts=6, top_k=2, rng=rng)
        logits = rng.standard_normal((5, 6))
        weights, assignments = layer.route(logits)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-12)
        assert assignments.shape == (5, 2)
        # Weight mass sits exactly on the selected experts.
        for t in range(5):
            selected = set(assignments[t].tolist())
            for e in range(6):
                if e not in selected:
                    assert weights[t, e] == 0.0

    def test_records_routing_histogram(self):
        rng = np.random.default_rng(2)
        layer = MoEFeedForward(8, 16, num_experts=4, top_k=2, rng=rng)
        from repro.autograd import Tensor

        layer(Tensor(rng.standard_normal((2, 6, 8))))
        assert layer.last_assignments.shape == (12, 2)
        assert layer.last_expert_tokens.sum() == 12 * 2

    def test_seeded_default_rng_reproducible(self):
        from repro.autograd import Tensor

        reset_default_rng(0)
        a = MoEFeedForward(8, 16, num_experts=3, top_k=1)
        reset_default_rng(0)
        b = MoEFeedForward(8, 16, num_experts=3, top_k=1)
        x = Tensor(np.random.default_rng(3).standard_normal((4, 8)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_experts_differ_from_each_other(self):
        rng = np.random.default_rng(4)
        layer = MoEFeedForward(8, 16, num_experts=2, top_k=1, rng=rng)
        assert not np.array_equal(
            layer.experts[0].fc1.weight.data, layer.experts[1].fc1.weight.data
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0, "hidden_dim": 4, "num_experts": 2},
            {"dim": 4, "hidden_dim": 0, "num_experts": 2},
            {"dim": 4, "hidden_dim": 4, "num_experts": 0},
            {"dim": 4, "hidden_dim": 4, "num_experts": 2, "top_k": 3},
            {"dim": 4, "hidden_dim": 4, "num_experts": 2, "top_k": 0},
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MoEFeedForward(**kwargs)

    def test_transformer_integration(self):
        rng = np.random.default_rng(5)
        model = TextClassifier(
            vocab_size=30, max_seq_len=10, num_classes=3,
            dim=16, num_layers=2, num_heads=2, rng=rng,
            moe_experts=4, moe_top_k=2,
        )
        ffn = model.encoder.layers[0].ffn
        assert isinstance(ffn, MoEFeedForward)
        tokens = rng.integers(0, 30, size=(4, 10))
        assert model(tokens).data.shape == (4, 3)


class TestLUTConvertedExperts:
    def test_expert_filter_converts_only_experts(self):
        rng = np.random.default_rng(6)
        model = TextClassifier(
            vocab_size=30, max_seq_len=10, num_classes=3,
            dim=16, num_layers=1, num_heads=2, rng=rng,
            moe_experts=2, moe_top_k=1,
        )
        tokens = rng.integers(0, 30, size=(8, 10))
        replaced = convert_to_lut_nn(
            model, [tokens], v=2, ct=4, rng=rng,
            layer_filter=lambda n, layer: ".experts." in n,
        )
        names = [n for n, _ in replaced]
        # 2 experts x (fc1, fc2); the gate stays dense.
        assert len(names) == 4
        assert all(".experts." in n for n in names)
        assert not any(".gate" in n for n in names)

    def test_exact_mode_preserves_moe_output(self):
        rng = np.random.default_rng(7)
        model = TextClassifier(
            vocab_size=30, max_seq_len=10, num_classes=3,
            dim=16, num_layers=1, num_heads=2, rng=rng,
            moe_experts=2, moe_top_k=1,
        )
        tokens = rng.integers(0, 30, size=(8, 10))
        model.eval()
        before = model(tokens).data.copy()
        convert_to_lut_nn(
            model, [tokens], v=2, ct=4, rng=rng,
            layer_filter=lambda n, layer: ".experts." in n,
        )
        set_lut_mode(model, "exact")
        model.eval()
        np.testing.assert_allclose(model(tokens).data, before, atol=1e-10)

    def test_lut_mode_runs_and_stays_close(self):
        rng = np.random.default_rng(8)
        model = TextClassifier(
            vocab_size=30, max_seq_len=10, num_classes=3,
            dim=16, num_layers=1, num_heads=2, rng=rng,
            moe_experts=2, moe_top_k=1,
        )
        tokens = rng.integers(0, 30, size=(16, 10))
        model.eval()
        before = model(tokens).data.copy()
        convert_to_lut_nn(
            model, [tokens], v=2, ct=8, rng=rng,
            layer_filter=lambda n, layer: ".experts." in n,
        )
        assert len(lut_layers(model)) == 4
        set_lut_mode(model, "lut")
        model.eval()
        after = model(tokens).data
        assert after.shape == before.shape
        assert np.isfinite(after).all()
        # Centroid quantization of two small MLPs should not blow up the
        # logits; this is a sanity bound, not an accuracy claim.
        assert np.abs(after - before).max() < 10.0


class TestEnginePricing:
    @pytest.fixture(scope="class")
    def engine(self, upmem):
        return PIMDLEngine(upmem, wimpy_host())

    def test_token_bucket(self):
        assert token_bucket(1) == 1
        assert token_bucket(2) == 2
        assert token_bucket(3) == 4
        assert token_bucket(1025) == 2048
        with pytest.raises(ValueError):
            token_bucket(0)

    def test_makespan_is_max_over_ranks(self, engine, small_bert):
        moe = MoEConfig(num_experts=16, top_k=2, routing="zipf", placement="balanced")
        cost = engine.moe_layer_cost(small_bert, moe)
        assert cost.lut_makespan_s == pytest.approx(max(cost.rank_seconds))
        assert sum(cost.rank_seconds) == pytest.approx(cost.lut_serial_s)
        assert cost.rank_seconds[cost.critical_rank] == pytest.approx(
            cost.lut_makespan_s
        )
        assert 0.0 <= cost.imbalance_index < 1.0
        assert sum(cost.expert_tokens) == small_bert.tokens * moe.top_k

    def test_phases_partition_total(self, engine, small_bert):
        moe = MoEConfig(num_experts=16, top_k=2, routing="zipf")
        cost = engine.moe_layer_cost(small_bert, moe)
        assert sum(cost.phases.values()) == pytest.approx(cost.total_s, abs=1e-12)
        assert cost.total_s == pytest.approx(
            cost.gate_s + cost.ccs_s + cost.lut_makespan_s
        )

    def test_balanced_beats_round_robin_under_zipf(self, engine, small_bert):
        # More experts than ranks (32 > 16), so round-robin is forced to
        # co-locate experts and skew gives LPT something to fix.
        kwargs = dict(num_experts=32, top_k=2, routing="zipf", zipf_s=1.2, seed=0)
        rr = engine.moe_layer_cost(small_bert, MoEConfig(placement="round-robin", **kwargs))
        bal = engine.moe_layer_cost(small_bert, MoEConfig(placement="balanced", **kwargs))
        # Same routing trace, so identical serial work; balanced is never
        # worse on the makespan by construction and strictly better under
        # this skew.
        assert bal.lut_serial_s == pytest.approx(rr.lut_serial_s)
        assert bal.lut_makespan_s <= rr.lut_makespan_s + 1e-15
        assert bal.lut_makespan_s < rr.lut_makespan_s
        assert bal.imbalance_index <= rr.imbalance_index + 1e-12

    def test_balanced_matches_round_robin_under_uniform(self, engine, small_bert):
        kwargs = dict(num_experts=16, top_k=2, routing="uniform", seed=0)
        rr = engine.moe_layer_cost(small_bert, MoEConfig(placement="round-robin", **kwargs))
        bal = engine.moe_layer_cost(small_bert, MoEConfig(placement="balanced", **kwargs))
        assert bal.lut_makespan_s <= rr.lut_makespan_s + 1e-15
        # Within noise: uniform routing leaves little for placement to fix.
        assert bal.lut_makespan_s > 0.9 * rr.lut_makespan_s

    def test_pricing_memoized(self, engine, small_bert):
        moe = MoEConfig(num_experts=16, top_k=2)
        assert engine.moe_layer_cost(small_bert, moe) is engine.moe_layer_cost(
            small_bert, moe
        )

    def test_top_ranks_descending(self, engine, small_bert):
        moe = MoEConfig(num_experts=16, top_k=2, routing="zipf")
        top = engine.moe_layer_cost(small_bert, moe).top_ranks(3)
        assert len(top) == 3
        seconds = [s for _, s in top]
        assert seconds == sorted(seconds, reverse=True)

    def test_model_graph_replaces_ffn_with_moe_op(self, small_bert):
        moe = MoEConfig(num_experts=8, top_k=2)
        ops = model_graph(small_bert, moe=moe)
        names = [op.name for op in ops]
        assert "FFN-MoE" in names
        assert "FFN1" not in names and "FFN2" not in names and "GELU" not in names
        moe_op = next(op for op in ops if op.kind == MOE)
        assert moe_op.h == small_bert.hidden_dim
        assert moe_op.f == small_bert.ffn_dim

    def test_engine_report_phases_partition(self, engine, small_bert):
        moe = MoEConfig(num_experts=16, top_k=2, routing="zipf")
        report = engine.run(small_bert, moe=moe)
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.total_s, rel=1e-9
        )
        op_names = [op.name for op in report.ops]
        assert "FFN-MoE/Gate" in op_names
        assert "FFN-MoE/CCS" in op_names
        assert "FFN-MoE/LUT" in op_names

    def test_moe_run_differs_from_dense(self, engine, small_bert):
        dense = engine.run(small_bert)
        moe = engine.run(small_bert, moe=MoEConfig(num_experts=16, top_k=2))
        assert moe.total_s != pytest.approx(dense.total_s)

    def test_decode_engine_moe_phases_partition(self, upmem, small_bert):
        engine = LUTDecodeEngine(upmem, wimpy_host())
        moe = MoEConfig(num_experts=8, top_k=2, routing="zipf")
        report = engine.run(small_bert, batch_size=4, context_len=64, moe=moe)
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.token_latency_s, rel=1e-9
        )
        dense = engine.run(small_bert, batch_size=4, context_len=64)
        assert report.linear_s != pytest.approx(dense.linear_s)


class TestMoECLI:
    def test_smoke_table(self, capsys):
        rc = cli.main([
            "moe", "--layers", "1", "--experts", "8", "--top-k", "2",
            "--routing", "zipf", "--seed", "0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "zipf" in out
        assert "balanced" in out and "round-robin" in out
        assert "balanced placement" in out  # the speedup verdict line

    def test_json_payload(self, capsys):
        rc = cli.main([
            "moe", "--layers", "1", "--experts", "8", "--top-k", "2",
            "--routing", "uniform", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        cells = payload["cells"]
        assert len(cells) == 1  # one (experts, top_k, routing) cell
        cell = cells[0]
        assert cell["experts"] == 8
        assert set(cell["placers"]) == {"round-robin", "balanced"}
        for stats in cell["placers"].values():
            assert 0.0 <= stats["rank_imbalance_index"] < 1.0
            assert stats["lut_makespan_s"] <= stats["lut_serial_s"] + 1e-15
            assert stats["layer_total_s"] == pytest.approx(
                stats["gate_s"] + stats["ccs_s"] + stats["lut_makespan_s"]
            )

    def test_attribution_reports_imbalance(self, capsys):
        rc = cli.main([
            "moe", "--layers", "1", "--experts", "8", "--routing", "zipf",
            "--attribution",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank imbalance" in out
        assert "most loaded" in out

    def test_bad_experts_rejected(self, capsys):
        assert cli.main(["moe", "--layers", "1", "--experts", "0"]) == 2

    def test_bad_routing_rejected(self, capsys):
        assert cli.main(["moe", "--layers", "1", "--routing", "pareto"]) == 2
